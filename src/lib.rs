//! # histal — Active Learning with Historical Evaluation Results
//!
//! Umbrella crate for the `histal` workspace, a Rust reproduction of
//! *"Looking Back on the Past: Active Learning with Historical Evaluation
//! Results"* (Yao, Dou, Nie, Wen — TKDE 2020 / ICDE 2023 extended
//! abstract).
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`core`] — the active-learning framework and the paper's WSHS / FHS /
//!   LHS strategies;
//! * [`models`] — the text classifier and CRF substrates;
//! * [`data`] — seeded synthetic corpora matching the paper's dataset
//!   statistics;
//! * [`text`] — tokenization and feature hashing;
//! * [`tseries`] — historical-sequence features (window sums, fluctuation,
//!   Mann–Kendall trend, LSTM/AR next-score predictors);
//! * [`ltr`] — the LambdaMART learning-to-rank stack behind LHS.
//!
//! See `examples/quickstart.rs` for a complete working loop and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.

pub use histal_core as core;
pub use histal_data as data;
pub use histal_ltr as ltr;
pub use histal_models as models;
pub use histal_text as text;
pub use histal_tseries as tseries;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use histal_core::analysis::{
        area_under_curve, deficiency, format_cost, samples_to_target, selection_stats,
    };
    pub use histal_core::driver::{ActiveLearner, PoolConfig, RunResult};
    pub use histal_core::lhs::{train_lhs, LhsFeatureConfig, LhsSelector, LhsTrainerConfig};
    pub use histal_core::stats::{compare_curves, paired_bootstrap, wilcoxon_signed_rank};
    pub use histal_core::stopping::{StopReason, StoppingRule};
    pub use histal_core::strategy::{BaseStrategy, HistoryPolicy, Strategy};
    pub use histal_core::Model;
    pub use histal_data::{NerDataset, NerSpec, TextDataset, TextSpec};
    pub use histal_models::{
        load_model, save_model, CrfConfig, CrfTagger, Document, NaiveBayes, NaiveBayesConfig,
        RankingModel, RankingModelConfig, Sentence, TextClassifier, TextClassifierConfig,
    };
    pub use histal_text::FeatureHasher;
}

//! ChaCha8-based RNG implementing this workspace's `rand_core` traits.
//!
//! The block function is the real ChaCha permutation with 8 rounds, keyed
//! by the 32-byte seed. Stream output is *not* guaranteed to match the
//! upstream `rand_chacha` crate byte-for-byte (upstream interleaves the
//! word order differently); every determinism property in this repository
//! is internal — same binary, same seed, same stream.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const BUF_WORDS: usize = 16;

/// ChaCha with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key schedule: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate() {
            self.buf[i] = w.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // counter = 0, nonce = 0
        ChaCha8Rng {
            state,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        assert_ne!(first, second);
    }
}

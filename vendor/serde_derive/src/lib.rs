//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! value-based serde, implemented directly on `proc_macro::TokenStream`
//! (no syn/quote available offline).
//!
//! Supported shapes — everything this workspace declares:
//! - structs with named fields (incl. generic type parameters)
//! - tuple structs (newtype structs serialize transparently)
//! - unit structs
//! - enums with unit / tuple / struct variants (externally tagged)
//! - the `#[serde(default)]` field attribute
//!
//! Field types never need to be parsed: generated code calls
//! `Deserialize::from_value` in a typed position and lets inference pick
//! the impl, so the parser only has to *skip* type tokens.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive produced invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive produced invalid Rust")
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    default: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Raw generics tokens including bounds, without the angle brackets,
    /// e.g. `T: Clone, U`.
    generics_raw: String,
    /// Just the parameter names, e.g. `T, U`.
    generics_params: Vec<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility, find `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                let k = id.to_string();
                i += 1;
                break k;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct/enum found in input"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    // Optional generics.
    let mut generics_raw = String::new();
    let mut generics_params = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expect_param = true;
        while depth > 0 {
            let tok = tokens
                .get(i)
                .unwrap_or_else(|| panic!("serde_derive: unclosed generics on {name}"));
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    let text = id.to_string();
                    if text == "const" {
                        panic!("serde_derive: const generics are not supported");
                    }
                    generics_params.push(text);
                    expect_param = false;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    panic!("serde_derive: lifetime parameters are not supported")
                }
                _ => {}
            }
            if depth > 0 {
                if !generics_raw.is_empty() {
                    generics_raw.push(' ');
                }
                generics_raw.push_str(&tok.to_string());
                i += 1;
            }
        }
    }

    let body = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Shape::Unit),
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                panic!("serde_derive: where clauses are not supported (type {name})")
            }
            other => panic!("serde_derive: unexpected struct body for {name}: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body for {name}: {other:?}"),
        }
    };

    Item {
        name,
        generics_raw,
        generics_params,
        body,
    }
}

/// Scan an attribute `#[...]` group for `serde(...)` contents; returns
/// `default` flag. Any serde option other than `default` is rejected.
fn serde_attr_default(group: &proc_macro::Group) -> bool {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return false;
    };
    for tok in args.stream() {
        match tok {
            TokenTree::Ident(id) if id.to_string() == "default" => return true,
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde_derive: unsupported serde attribute: {other}"),
        }
    }
    false
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        // Attributes (doc comments, serde options).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                default |= serde_attr_default(g);
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected ':' after field {name}"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    let ty_args = if item.generics_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics_params.join(", "))
    };
    let impl_generics = if item.generics_raw.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics_raw)
    };
    let where_clause = if item.generics_params.is_empty() {
        String::new()
    } else {
        let bounds: Vec<String> = item
            .generics_params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        format!(" where {}", bounds.join(", "))
    };
    format!(
        "impl{impl_generics} ::serde::{trait_name} for {}{ty_args}{where_clause}",
        item.name
    )
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Body::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::Struct(Shape::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    let ty = &item.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{ty}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{ty}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let pats: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{ty}::{vn}({p}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Seq(vec![{v}]))]),",
                                p = pats.join(", "),
                                v = vals.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let pats: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {p} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Map(vec![{e}]))]),",
                                p = pats.join(", "),
                                e = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(item, "Serialize")
    )
}

fn named_field_reads(fields: &[Field], source: &str, ctx: &str) -> String {
    let reads: Vec<String> = fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            if f.default {
                format!(
                    "{fname}: match ::serde::Value::get({source}, \"{fname}\") {{ \
                     Some(x) => ::serde::Deserialize::from_value(x)?, \
                     None => ::core::default::Default::default() }},"
                )
            } else {
                format!(
                    "{fname}: match ::serde::Value::get({source}, \"{fname}\") {{ \
                     Some(x) => ::serde::Deserialize::from_value(x)?, \
                     None => return Err(::serde::DeError::custom(\
                     \"missing field `{fname}` in {ctx}\")) }},"
                )
            }
        })
        .collect();
    reads.join(" ")
}

fn gen_deserialize(item: &Item) -> String {
    let ty = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Unit) => format!("Ok({ty})"),
        Body::Struct(Shape::Tuple(1)) => {
            format!("Ok({ty}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Struct(Shape::Tuple(n)) => {
            let reads: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected sequence for tuple struct {ty}\"))?; \
                 if items.len() != {n} {{ return Err(::serde::DeError::custom(\
                 \"wrong tuple length for {ty}\")); }} \
                 Ok({ty}({reads}))",
                reads = reads.join(", ")
            )
        }
        Body::Struct(Shape::Named(fields)) => {
            format!(
                "if v.as_map().is_none() {{ return Err(::serde::DeError::custom(\
                 \"expected map for struct {ty}\")); }} \
                 Ok({ty} {{ {reads} }})",
                reads = named_field_reads(fields, "v", &format!("struct {ty}"))
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => return Ok({ty}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            // Accept map form `{ "Variant": null }` too.
                            format!("\"{vn}\" => return Ok({ty}::{vn}),")
                        }
                        Shape::Tuple(1) => format!(
                            "\"{vn}\" => return Ok({ty}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        ),
                        Shape::Tuple(n) => {
                            let reads: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ \
                                 let items = payload.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                                 \"expected sequence for variant {ty}::{vn}\"))?; \
                                 if items.len() != {n} {{ return Err(::serde::DeError::custom(\
                                 \"wrong arity for variant {ty}::{vn}\")); }} \
                                 return Ok({ty}::{vn}({reads})); }}",
                                reads = reads.join(", ")
                            )
                        }
                        Shape::Named(fields) => format!(
                            "\"{vn}\" => {{ \
                             if payload.as_map().is_none() {{ return Err(::serde::DeError::custom(\
                             \"expected map for variant {ty}::{vn}\")); }} \
                             return Ok({ty}::{vn} {{ {reads} }}); }}",
                            reads =
                                named_field_reads(fields, "payload", &format!("variant {ty}::{vn}"))
                        ),
                    }
                })
                .collect();
            format!(
                "if let Some(tag) = v.as_str() {{ \
                 match tag {{ {units} _ => return Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{tag}}` for enum {ty}\"))) }} }} \
                 if let Some(entries) = v.as_map() {{ \
                 if entries.len() == 1 {{ \
                 let (tag, payload) = &entries[0]; let _ = payload; \
                 match tag.as_str() {{ {tagged} _ => return Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{tag}}` for enum {ty}\"))) }} }} }} \
                 Err(::serde::DeError::custom(\"expected string or single-entry map for enum {ty}\"))",
                units = unit_arms.join(" "),
                tagged = tagged_arms.join(" ")
            )
        }
    };
    format!(
        "{header} {{ fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ \
         #[allow(unused_variables)] let _ = v; {body} }} }}",
        header = impl_header(item, "Deserialize")
    )
}

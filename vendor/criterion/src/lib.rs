//! Minimal offline benchmark harness exposing the `criterion` API shape
//! this workspace's `benches/` use: `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! short warm-up followed by `sample_size` timed batches and reports the
//! median batch time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier (`BenchmarkId::new("group", param)` or
/// `BenchmarkId::from_parameter(param)`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Option<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: aim for batches of at least
        // ~1ms so Instant overhead stays negligible.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            per_iter.push(t.elapsed() / per_batch as u32);
        }
        per_iter.sort();
        self.last_median = Some(per_iter[per_iter.len() / 2]);
    }
}

/// Benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_median: None,
        };
        f(&mut bencher);
        match bencher.last_median {
            Some(median) => println!("bench {id:<50} {median:>12.2?}/iter"),
            None => println!("bench {id:<50} (no iter call)"),
        }
        self
    }

    /// Benchmark groups degrade to a handle on the same driver.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.criterion.bench_function(id, f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Minimal offline serialization framework with serde's API shape.
//!
//! Instead of serde's zero-copy visitor architecture, this vendored
//! version routes everything through an owned [`Value`] tree: `Serialize`
//! renders a value into the tree and `Deserialize` reads it back. That is
//! dramatically simpler, fully deterministic (struct fields keep
//! declaration order), and fast enough for this workspace's use
//! (persisting models and writing result files).
//!
//! The derive macros in `serde_derive` target these traits and support
//! the subset of serde attributes this workspace uses (`#[serde(default)]`).

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Maps preserve insertion order (struct field declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a struct field by name (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> DeError {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

pub mod de {
    //! Mirrors `serde::de` for the names this workspace imports.

    pub use crate::DeError as Error;

    /// In real serde this distinguishes borrowing deserializers; our
    /// `Deserialize` is already owned, so it is a blanket alias.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

/// `Value` is its own data model: (de)serialization is the identity.
/// Lets callers round-trip schema-less documents (e.g. validate a JSON
/// line without committing to a record type).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::I64(x) => *x as i128,
                    Value::U64(x) => *x as i128,
                    _ => return Err(DeError::custom(format!(
                        "expected integer, got {v:?}"
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(x) => Ok(*x as f64),
            Value::U64(x) => Ok(*x as f64),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::custom(format!("expected float, got {v:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom(format!("expected string, got {v:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {v:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {v:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

macro_rules! de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_seq().ok_or_else(|| {
                    DeError::custom(format!("expected tuple sequence, got {v:?}"))
                })?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

de_tuple! {
    (A: 0 ; 1)
    (A: 0, B: 1 ; 2)
    (A: 0, B: 1, C: 2 ; 3)
    (A: 0, B: 1, C: 2, D: 3 ; 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4 ; 5)
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {v:?}")))?;
        entries
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {v:?}")))?;
        entries
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(2.5f64).to_value(), Value::F64(2.5));
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert_eq!(u8::from_value(&Value::I64(250)).unwrap(), 250);
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn nested_vec_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let val = v.to_value();
        let back = Vec::<Vec<u32>>::from_value(&val).unwrap();
        assert_eq!(v, back);
    }
}

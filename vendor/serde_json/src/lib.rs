//! Minimal JSON serialization over the vendored `serde::Value` model.
//!
//! Provides the exact function surface this workspace calls:
//! `to_string`, `to_string_pretty`, `to_vec`, `from_str`, `from_slice`,
//! and an `Error` type implementing `std::error::Error`.
//!
//! Output conventions match upstream serde_json where observable:
//! struct fields in declaration order, floats via Rust's shortest
//! round-trip formatting, non-finite floats as `null`, 2-space pretty
//! indentation.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form
                // ("1.0", "0.25", "1e-12") — all valid JSON numbers.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parse a complete JSON document into a `Value`.
fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_at(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if text.is_empty() {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    let is_float = text.contains(['.', 'e', 'E']);
    if !is_float {
        if text.starts_with('-') {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("2.5e-3").unwrap();
        assert_eq!(back, 2.5e-3);
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quote\"\\tab\t\u{1}é";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_format_shape() {
        let v = vec![(String::from("a"), 1u32)];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("[\n  [\n    \"a\",\n    1\n  ]\n]"), "got: {s}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.0 x").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}

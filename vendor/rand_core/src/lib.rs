//! Minimal, dependency-free reimplementation of the `rand_core` API
//! surface this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! the external `rand_core` crate cannot be resolved. This crate provides
//! the same trait names and semantics (`RngCore`, `SeedableRng`) with a
//! deterministic `seed_from_u64` expansion based on SplitMix64. It makes
//! no attempt to be byte-compatible with upstream `rand_core`; all
//! determinism guarantees in this repository are *internal* (same binary,
//! same seeds, same streams).

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it into a full seed with
    /// SplitMix64 so that nearby integer seeds yield unrelated states.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = sm.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used only to expand `u64` seeds into full seed arrays.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }

    #[test]
    fn splitmix_seeds_differ() {
        let mut a = SplitMix64 { state: 1 };
        let mut b = SplitMix64 { state: 2 };
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

//! Slice sampling helpers (`shuffle`, `choose`, `choose_multiple`).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Pick one element uniformly, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Pick up to `amount` distinct elements uniformly without
    /// replacement, returned as an iterator of references.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() as usize) % (i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() as usize) % self.len();
            Some(&self[i])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector: the first `amount`
        // entries are a uniform sample without replacement.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + (rng.next_u64() as usize) % (self.len() - i);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        SliceChooseIter {
            slice: self,
            indices,
            next: 0,
        }
    }
}

/// Iterator over elements picked by [`SliceRandom::choose_multiple`].
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: Vec<usize>,
    next: usize,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let idx = *self.indices.get(self.next)?;
        self.next += 1;
        Some(&self.slice[idx])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.indices.len() - self.next;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_core::RngCore;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = Lcg(11);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct_and_bounded() {
        let v: Vec<usize> = (0..20).collect();
        let mut rng = Lcg(5);
        let picked: Vec<usize> = v.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
        let all: Vec<usize> = v.choose_multiple(&mut rng, 100).copied().collect();
        assert_eq!(all.len(), 20);
    }
}

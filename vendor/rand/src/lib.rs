//! Minimal, dependency-free reimplementation of the `rand` API surface
//! this workspace uses: the `Rng` extension trait (`gen`, `gen_range`,
//! `gen_bool`), `SliceRandom` (`shuffle`, `choose`, `choose_multiple`)
//! and the `SeedableRng`/`RngCore` re-exports.
//!
//! Not byte-compatible with upstream `rand`; determinism guarantees are
//! internal to this repository (same binary + same seed → same stream).

pub use rand_core::{RngCore, SeedableRng};

pub mod seq;

pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable over a range. The blanket [`SampleRange`]
/// impls below stay parametric in `T`, which keeps integer-literal
/// inference working (`rng.gen_range(0..4)` used as an index infers
/// `usize`, matching upstream rand).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: $t,
                end: $t,
                inclusive: bool,
            ) -> $t {
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: $t,
                end: $t,
                _inclusive: bool,
            ) -> $t {
                assert!(start < end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// Extension trait with the convenience sampling methods.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&i));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn dyn_rng_usable_through_generic_fn() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = Lcg(3);
        let _ = draw(&mut rng);
    }
}

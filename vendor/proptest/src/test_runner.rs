//! Test-runner configuration, per-case RNG and error type.

/// Mirror of `proptest::test_runner::Config` (re-exported in the prelude
/// as `ProptestConfig`). Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Error returned by `prop_assert*` inside a generated test body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case RNG (SplitMix64). Generation is a pure
/// function of the case index, so failures reproduce exactly.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(case: u64) -> TestRng {
        // Decorrelate consecutive case indices.
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

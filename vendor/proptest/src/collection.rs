//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    end: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            end: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            end: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, end: n + 1 }
    }
}

/// `vec(element, 2..8)`: a `Vec` whose length is drawn from the size
/// range and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

//! Minimal offline property-testing framework exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro, range and
//! collection strategies, `prop_oneof!`, `prop_map`, regex-subset string
//! strategies, and `prop_assert*`.
//!
//! No shrinking: a failing case reports its case index and seed, which is
//! enough to reproduce deterministically (generation is a pure function
//! of the per-case seed).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        pub use crate::collection;
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {x}")`: return a
/// `TestCaseError` from the enclosing generated test closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assume!(cond)`: skip the current case when the precondition
/// does not hold (no shrinking/retry machinery — the case just passes).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// `prop_oneof![s1, s2, ...]`: uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let boxed: ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> =
                    ::std::boxed::Box::new($strat);
                boxed
            }),+
        ])
    };
}

/// The `proptest!` block: rewrites each `fn name(pat in strategy, ...)`
/// into a `#[test]` function running `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0.0f64..1.0, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn tuples_and_oneof(
            t in (1usize..4, 0usize..4),
            s in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(t.0 >= 1 && t.0 < 4 && t.1 < 4);
            prop_assert!(s == 1 || s == 2);
        }

        #[test]
        fn regex_strings(s in "[a-d]{1,3}", t in ".{0,10}") {
            prop_assert!((1..=3).contains(&s.chars().count()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
            prop_assert!(t.chars().count() <= 10);
        }

        #[test]
        fn map_applies(n in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0.0f64..1.0, 1..9);
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}

//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A generator of values for property tests. Object-safe so `prop_oneof!`
/// can mix heterogeneous strategies with a common value type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

/// Types whose ranges act as strategies. Implemented via a blanket impl
/// over `Range<T>` so untyped integer literals keep inferring from use.
pub trait RangeValue: Sized + Copy + PartialOrd {
    fn pick(rng: &mut TestRng, start: Self, end: Self, inclusive: bool) -> Self;
}

macro_rules! range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn pick(rng: &mut TestRng, start: $t, end: $t, inclusive: bool) -> $t {
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range strategy");
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_value_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn pick(rng: &mut TestRng, start: $t, end: $t, _inclusive: bool) -> $t {
                assert!(start < end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

range_value_float!(f32, f64);

impl<T: RangeValue> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::pick(rng, self.start, self.end, false)
    }
}

impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::pick(rng, *self.start(), *self.end(), true)
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// String patterns like `"[a-z]{1,5}"` or `".{0,80}"` act as strategies,
/// mirroring proptest's regex string support. Supported syntax: literal
/// characters, `.` (printable ASCII), `[...]` classes with ranges, and
/// the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.max == atom.min {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..count {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                (0x20u8..=0x7E).map(|b| b as char).collect()
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern}");
                        set.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern}");
                i += 1; // ']'
                set
            }
            '\\' => {
                i += 1;
                let c = chars
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern}"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    )
                } else {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier in pattern {pattern}");
        assert!(
            !set.is_empty(),
            "empty character class in pattern {pattern}"
        );
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

//! Minimal offline reimplementation of the `rayon` API surface this
//! workspace uses: `par_iter().map().collect()`, `ThreadPoolBuilder`,
//! `ThreadPool::install`, and `current_num_threads`.
//!
//! # Design
//!
//! A single global pool of lazily-spawned helper threads executes
//! index-addressed task loops. Each parallel call:
//!
//! 1. claims indices from a shared atomic counter (caller thread included),
//! 2. writes each result into a pre-sized slot vector,
//! 3. blocks until every helper working on the call has finished.
//!
//! Step 3 makes it safe to lend non-`'static` closures to the pool: the
//! borrow outlives every access because the call does not return until all
//! helpers are done (the same argument scoped threads use).
//!
//! Nested parallel calls from inside a worker run serially inline —
//! results are identical (index-ordered collection is associativity-free)
//! and the pool cannot deadlock waiting on itself.
//!
//! Determinism: results are always collected in index order, so the
//! output of `par_iter().map(f).collect()` is byte-identical regardless
//! of thread count, provided `f` itself is deterministic per index.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, OnceLock};

pub mod iter;

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParIterExt, ParallelIterator};
}

// ---------------------------------------------------------------------------
// Global pool
// ---------------------------------------------------------------------------

/// A job loaned to the pool. The raw pointer refers to a `TaskShared` on
/// the submitting thread's stack; validity is guaranteed by the completion
/// latch (the submitter cannot return before `done` is signalled).
struct Job {
    run: unsafe fn(*const ()),
    ctx: *const (),
}

// SAFETY: the context pointer always refers to a Sync shared-state struct
// that outlives the job (enforced by the latch protocol in `run_indexed`).
unsafe impl Send for Job {}

struct PoolState {
    sender: Sender<Job>,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    queue: Mutex<Receiver<Job>>,
    configured_threads: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static THREAD_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = channel();
        Pool {
            state: Mutex::new(PoolState {
                sender: tx,
                spawned: 0,
            }),
            queue: Mutex::new(rx),
            configured_threads: AtomicUsize::new(0),
        }
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads parallel calls on this thread will currently use.
pub fn current_num_threads() -> usize {
    let over = THREAD_OVERRIDE.with(|c| c.get());
    if over > 0 {
        return over;
    }
    let cfg = pool().configured_threads.load(Ordering::Relaxed);
    if cfg > 0 {
        cfg
    } else {
        default_threads()
    }
}

/// Ensure at least `n` helper threads exist (never tears threads down).
fn ensure_workers(n: usize) {
    let p = pool();
    let mut state = p.state.lock().unwrap();
    while state.spawned < n {
        state.spawned += 1;
        let id = state.spawned;
        std::thread::Builder::new()
            .name(format!("histal-worker-{id}"))
            .spawn(move || {
                IN_WORKER.with(|c| c.set(true));
                loop {
                    // Hold the receiver lock only while dequeuing.
                    let job = {
                        let rx = pool().queue.lock().unwrap();
                        rx.recv()
                    };
                    match job {
                        Ok(job) => unsafe { (job.run)(job.ctx) },
                        Err(_) => break,
                    }
                }
            })
            .expect("failed to spawn pool worker");
    }
}

// ---------------------------------------------------------------------------
// Scoped indexed execution
// ---------------------------------------------------------------------------

struct Latch {
    pending: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            pending: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn arrive(&self) {
        let mut p = self.pending.lock().unwrap();
        *p -= 1;
        if *p == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut p = self.pending.lock().unwrap();
        while *p > 0 {
            p = self.cv.wait(p).unwrap();
        }
    }
}

struct TaskShared<'a> {
    work: &'a (dyn Fn() + Sync),
    latch: &'a Latch,
    panic: &'a Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

unsafe fn run_task_shared(ctx: *const ()) {
    // SAFETY: `ctx` points to a live `TaskShared` (see Job docs).
    let shared = unsafe { &*(ctx as *const TaskShared<'_>) };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(shared.work)) {
        *shared.panic.lock().unwrap() = Some(payload);
    }
    shared.latch.arrive();
}

/// Run `f(i)` for every `i in 0..n`, writing results in index order.
///
/// Parallel iff: more than one item, the effective thread count exceeds 1,
/// and we are not already inside a pool worker (nested calls run inline).
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = current_num_threads();
    let nested = IN_WORKER.with(|c| c.get());
    if n <= 1 || threads <= 1 || nested {
        return (0..n).map(f).collect();
    }

    let helpers = (threads - 1).min(n - 1);
    ensure_workers(helpers);

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots_ptr = SendPtr(slots.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let latch = Latch::new(helpers);
    let panic_store: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let work = move || {
        // Bind the whole wrapper so 2021 disjoint capture doesn't pull
        // the raw pointer field out of its Send/Sync newtype.
        let slots = slots_ptr;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let value = f(i);
            // SAFETY: each index is claimed exactly once, so each slot is
            // written by exactly one thread; the vector outlives all
            // workers because of the latch wait below.
            unsafe {
                *slots.0.add(i) = Some(value);
            }
        }
    };

    {
        let shared = TaskShared {
            work: &work,
            latch: &latch,
            panic: &panic_store,
        };
        let ctx = &shared as *const TaskShared<'_> as *const ();
        {
            let state = pool().state.lock().unwrap();
            for _ in 0..helpers {
                state
                    .sender
                    .send(Job {
                        run: run_task_shared,
                        ctx,
                    })
                    .expect("pool receiver alive");
            }
        }
        // The caller participates too, then waits for every helper.
        let caller_result = catch_unwind(AssertUnwindSafe(&work));
        latch.wait();
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
    }

    if let Some(payload) = panic_store.into_inner().unwrap() {
        resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|s| s.expect("all indices claimed"))
        .collect()
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced under the once-per-index claim
// discipline of `run_indexed`.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// ---------------------------------------------------------------------------
// ThreadPool / builder API
// ---------------------------------------------------------------------------

/// Error type for pool construction (construction cannot actually fail in
/// this implementation, but the signature mirrors rayon's).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` means "use the host's available parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Set the process-global thread count used by parallel calls.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        pool().configured_threads.store(n, Ordering::Relaxed);
        Ok(())
    }

    /// Build a handle that can `install` a thread-count override.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A lightweight handle: `install` runs a closure with this pool's thread
/// count as the effective parallelism on the current thread. Helper
/// threads are shared with the global pool (they are fungible — all
/// determinism is index-ordered, so sharing cannot change results).
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.threads));
        struct Reset(usize);
        impl Drop for Reset {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _reset = Reset(prev);
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_matches_serial() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let parallel = pool.install(|| run_indexed(100, |i| i * i));
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn nested_calls_run_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out = pool
            .install(|| run_indexed(8, |i| run_indexed(8, move |j| i * j).iter().sum::<usize>()));
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn install_is_scoped() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_num_threads();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn panics_propagate() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                run_indexed(64, |i| {
                    if i == 33 {
                        panic!("boom");
                    }
                    i
                })
            })
        }));
        assert!(result.is_err());
    }
}

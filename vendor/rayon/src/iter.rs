//! Parallel iterator adapters: `par_iter().map(f).collect()` and
//! `into_par_iter()` over ranges, all index-ordered and deterministic.

use crate::run_indexed;

/// Entry point mirroring `rayon`'s `IntoParallelRefIterator::par_iter`.
pub trait ParIterExt {
    type Item: Sync;

    fn par_iter(&self) -> ParIter<'_, Self::Item>;
}

impl<T: Sync> ParIterExt for [T] {
    type Item = T;

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

impl<T: Sync> ParIterExt for Vec<T> {
    type Item = T;

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Mirrors `rayon::iter::IntoParallelIterator` for `Range<usize>`.
pub trait IntoParallelIterator {
    type Iter;

    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// The subset of `ParallelIterator` the workspace uses.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Number of items and an indexed producer for them.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, index: usize) -> Self::Item;

    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }

    /// Collect into a `Vec`, always in index order (thread-count
    /// invariant by construction).
    fn collect<C: FromParIter<Self::Item>>(self) -> C
    where
        Self: Sync,
    {
        C::from_par_iter(self)
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParIter<T> {
    fn from_par_iter<I: ParallelIterator<Item = T> + Sync>(iter: I) -> Self;
}

impl<T: Send> FromParIter<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T> + Sync>(iter: I) -> Vec<T> {
        run_indexed(iter.len(), |i| iter.get(i))
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    fn get(&self, index: usize) -> usize {
        self.range.start + index
    }
}

pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, F, U> ParallelIterator for ParMap<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, index: usize) -> U {
        (self.f)(self.inner.get(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_ordered() {
        let v: Vec<u64> = (0..200).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 3).collect();
        let expect: Vec<u64> = v.iter().map(|&x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (5..15).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (6..16).collect::<Vec<_>>());
    }
}

//! An end-to-end "annotation campaign" pipeline: budget-aware stopping,
//! model persistence, LHS artifact reuse, and a significance check.
//!
//! 1. Train an LHS selector on an already-labeled corpus and persist its
//!    artifacts to JSON (ship it with your product).
//! 2. Start an annotation campaign on a new corpus with a stopping rule
//!    (budget + plateau detection) instead of a fixed round count.
//! 3. Persist the final classifier.
//! 4. Verify the strategy actually beat random with a Wilcoxon test.
//!
//! ```sh
//! cargo run --release --example production_pipeline
//! ```

use histal::prelude::*;
use histal_core::lhs::{train_lhs_artifacts, LhsArtifacts};
use histal_core::stats::compare_curves;
use histal_core::stopping::StoppingRule;
use histal_data::train_test_split;
use histal_models::{load_model, save_model};

fn build(
    spec: &TextSpec,
    n: usize,
    seed: u64,
) -> (Vec<Document>, Vec<usize>, Vec<Document>, Vec<usize>) {
    let mut spec = spec.clone();
    spec.n_samples = n;
    let data = TextDataset::generate(&spec);
    let hasher = FeatureHasher::new(1 << 15);
    let docs: Vec<Document> = data
        .docs
        .iter()
        .map(|t| Document::from_tokens(t, &hasher))
        .collect();
    let (tr, te) = train_test_split(docs.len(), 0.2, seed);
    (
        tr.iter().map(|&i| docs[i].clone()).collect(),
        tr.iter().map(|&i| data.labels[i]).collect(),
        te.iter().map(|&i| docs[i].clone()).collect(),
        te.iter().map(|&i| data.labels[i]).collect(),
    )
}

fn model() -> TextClassifier {
    TextClassifier::new(TextClassifierConfig {
        n_classes: 2,
        n_features: 1 << 15,
        epochs: 6,
        ..Default::default()
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let artifacts_path = std::env::temp_dir().join("histal-lhs-artifacts.json");
    let model_path = std::env::temp_dir().join("histal-campaign-model.json");

    // ---- 1. Train the selector offline and persist it. ----
    println!("[1/4] training LHS selector on the labeled source corpus…");
    let (src_pool, src_labels, src_test, src_test_labels) = build(&TextSpec::subj(), 1_000, 3);
    let artifacts = train_lhs_artifacts(
        &model(),
        &src_pool,
        &src_labels,
        &src_test,
        &src_test_labels,
        &LhsTrainerConfig {
            rounds: 5,
            candidates_per_round: 14,
            ..Default::default()
        },
        7,
    )?;
    save_model(&artifacts, &artifacts_path)?;
    println!("      artifacts saved to {}", artifacts_path.display());

    // ---- 2. Run the campaign with budget + plateau stopping. ----
    println!("[2/4] running the annotation campaign on the target corpus…");
    let (pool, labels, test, test_labels) = build(&TextSpec::mr(), 1_600, 4);
    let restored: LhsArtifacts = load_model(&artifacts_path)?;
    let rule = StoppingRule::none()
        .with_budget(400)
        .with_patience(4, 0.002);
    let mut learner = ActiveLearner::builder(model())
        .pool(pool.clone(), labels.clone())
        .test(test.clone(), test_labels.clone())
        .strategy(Strategy::new(BaseStrategy::Entropy))
        .config(PoolConfig {
            batch_size: 25,
            rounds: 30,
            init_labeled: 25,
            history_max_len: Some(5),
            record_history: false,
            ann: None,
        })
        .seed(11)
        .lhs(restored.into_selector())
        .build();
    let (campaign, reason) = learner.run_until(&rule)?;
    println!(
        "      stopped after {} labels ({reason:?}), accuracy {:.4}",
        campaign.curve.last().map(|p| p.n_labeled).unwrap_or(0),
        campaign.final_metric().unwrap_or(f64::NAN)
    );

    // ---- 3. Persist the final model. ----
    println!("[3/4] persisting the trained classifier…");
    let trained = learner.into_model();
    save_model(&trained, &model_path)?;
    let _reloaded: TextClassifier = load_model(&model_path)?;
    println!("      model round-trips through {}", model_path.display());

    // ---- 4. Did active learning beat random annotation? ----
    println!("[4/4] sanity check vs random sampling…");
    let mut random = ActiveLearner::builder(model())
        .pool(pool, labels)
        .test(test, test_labels)
        .strategy(Strategy::new(BaseStrategy::Random))
        .config(PoolConfig {
            batch_size: 25,
            rounds: campaign.curve.len().saturating_sub(1),
            init_labeled: 25,
            history_max_len: Some(5),
            record_history: false,
            ann: None,
        })
        .seed(11)
        .build();
    let random_run = random.run()?;
    let t = compare_curves(&campaign, &random_run);
    println!(
        "      mean Δaccuracy {:+.4}, Wilcoxon p = {:.4} → {}",
        t.mean_diff,
        t.p_value,
        if t.significantly_better(0.05) {
            "significantly better than random"
        } else {
            "not significant at α = 0.05 (expected on small single-seed demos)"
        }
    );

    std::fs::remove_file(&artifacts_path).ok();
    std::fs::remove_file(&model_path).ok();
    Ok(())
}

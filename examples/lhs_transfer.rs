//! LHS transfer (§4.4): learn a selection ranker on one labeled dataset
//! and deploy it on another — "train a ranker on an applicable labeled
//! dataset and apply it on other unlabeled datasets of the same task".
//!
//! Phase 1 runs Algorithm 1 on a Subj-analogue corpus: each AL iteration
//! becomes a ranking query whose documents are candidate samples,
//! features come from the historical evaluation sequences, and graded
//! labels from measured model-improvement deltas. Phase 2 deploys the
//! trained LambdaMART ranker to select samples on an MR-analogue pool.
//!
//! ```sh
//! cargo run --release --example lhs_transfer
//! ```

use histal::prelude::*;
use histal_core::lhs::{PredictorKind, RankerKind};
use histal_data::train_test_split;

fn build_task(
    spec: &TextSpec,
    n: usize,
    seed: u64,
) -> (Vec<Document>, Vec<usize>, Vec<Document>, Vec<usize>) {
    let mut spec = spec.clone();
    spec.n_samples = n;
    let data = TextDataset::generate(&spec);
    let hasher = FeatureHasher::new(1 << 15);
    let docs: Vec<Document> = data
        .docs
        .iter()
        .map(|t| Document::from_tokens(t, &hasher))
        .collect();
    let (tr, te) = train_test_split(docs.len(), 0.2, seed);
    (
        tr.iter().map(|&i| docs[i].clone()).collect(),
        tr.iter().map(|&i| data.labels[i]).collect(),
        te.iter().map(|&i| docs[i].clone()).collect(),
        te.iter().map(|&i| data.labels[i]).collect(),
    )
}

fn model() -> TextClassifier {
    TextClassifier::new(TextClassifierConfig {
        n_classes: 2,
        n_features: 1 << 15,
        epochs: 6,
        ..Default::default()
    })
}

fn main() {
    // ---- Phase 1: train the ranker on the Subj analogue. ----
    let (subj_pool, subj_labels, subj_test, subj_test_labels) =
        build_task(&TextSpec::subj(), 1_200, 5);
    println!("training LHS ranker on Subj analogue (Algorithm 1)…");
    let trainer = LhsTrainerConfig {
        base: BaseStrategy::Entropy,
        rounds: 6,
        candidates_per_round: 16,
        init_labeled: 25,
        add_per_round: 5,
        level_interval: 0.0,
        features: LhsFeatureConfig {
            window: 3,
            ..Default::default()
        },
        predictor: PredictorKind::Lstm(histal::tseries::LstmConfig::default()),
        ranker: RankerKind::LambdaMart(Default::default()),
        selector_candidate_pool: 75,
    };
    let selector = train_lhs(
        &model(),
        &subj_pool,
        &subj_labels,
        &subj_test,
        &subj_test_labels,
        &trainer,
        11,
    )
    .expect("Algorithm 1 training");
    println!(
        "ranker trained ({} features per candidate)",
        selector.feature_config().width()
    );

    // ---- Phase 2: deploy on the MR analogue. ----
    let (mr_pool, mr_labels, mr_test, mr_test_labels) = build_task(&TextSpec::mr(), 1_600, 6);
    let config = PoolConfig {
        batch_size: 25,
        rounds: 10,
        init_labeled: 25,
        history_max_len: None,
        record_history: false,
        ann: None,
    };

    let mut baseline = ActiveLearner::builder(model())
        .pool(mr_pool.clone(), mr_labels.clone())
        .test(mr_test.clone(), mr_test_labels.clone())
        .strategy(Strategy::new(BaseStrategy::Entropy))
        .config(config.clone())
        .seed(21)
        .build();
    let baseline_run = baseline.run().expect("entropy run");

    let mut lhs = ActiveLearner::builder(model())
        .pool(mr_pool, mr_labels)
        .test(mr_test, mr_test_labels)
        .strategy(Strategy::new(BaseStrategy::Entropy))
        .config(config)
        .seed(21)
        .lhs(selector)
        .build();
    let lhs_run = lhs.run().expect("LHS run");

    println!(
        "\n{:>9}  {:>10}  {:>12}",
        "#labeled", "entropy", "LHS(entropy)"
    );
    for (a, b) in baseline_run.curve.iter().zip(&lhs_run.curve) {
        println!("{:>9}  {:>10.4}  {:>12.4}", a.n_labeled, a.metric, b.metric);
    }
    println!(
        "\nfinal: entropy {:.4} vs LHS {:.4}",
        baseline_run.final_metric().unwrap_or(f64::NAN),
        lhs_run.final_metric().unwrap_or(f64::NAN)
    );
}

//! Quickstart: pool-based active learning with a history-aware strategy.
//!
//! Builds a small synthetic sentiment task, then compares plain entropy
//! sampling against the paper's WSHS(entropy) on the same pool.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use histal::prelude::*;

fn main() {
    // 1. A synthetic binary text-classification dataset (2 000 docs).
    let data = TextDataset::generate(&TextSpec::tiny(2, 2_000, 42));
    let hasher = FeatureHasher::new(1 << 14);
    let docs: Vec<Document> = data
        .docs
        .iter()
        .map(|toks| Document::from_tokens(toks, &hasher))
        .collect();

    // 2. Carve a test split.
    let (train_idx, test_idx) = histal::data::train_test_split(docs.len(), 0.25, 7);
    let pool: Vec<Document> = train_idx.iter().map(|&i| docs[i].clone()).collect();
    let pool_labels: Vec<usize> = train_idx.iter().map(|&i| data.labels[i]).collect();
    let test: Vec<Document> = test_idx.iter().map(|&i| docs[i].clone()).collect();
    let test_labels: Vec<usize> = test_idx.iter().map(|&i| data.labels[i]).collect();

    // 3. Run the AL loop once per strategy.
    let config = PoolConfig {
        batch_size: 25,
        rounds: 10,
        init_labeled: 25,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let mut results = Vec::new();
    for strategy in [
        Strategy::new(BaseStrategy::Random),
        Strategy::new(BaseStrategy::Entropy),
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 }),
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Fhs {
            l: 3,
            w_score: 0.5,
            w_fluct: 0.5,
        }),
    ] {
        let model = TextClassifier::new(TextClassifierConfig {
            n_classes: 2,
            n_features: 1 << 14,
            ..Default::default()
        });
        let mut learner = ActiveLearner::builder(model)
            .pool(pool.clone(), pool_labels.clone())
            .test(test.clone(), test_labels.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(1234)
            .build();
        let result = learner
            .run()
            .expect("entropy-family strategies always evaluable");
        println!("== {} ==", result.strategy_name);
        for p in &result.curve {
            println!("  {:>4} labeled → accuracy {:.4}", p.n_labeled, p.metric);
        }
        results.push(result);
    }

    // 4. Annotation-cost comparison (the Table 5 statistic).
    println!("\nSamples needed to reach accuracy 0.80:");
    for r in &results {
        println!(
            "  {:<16} {}",
            r.strategy_name,
            format_cost(samples_to_target(r, 0.80), 275)
        );
    }
}

//! Active learning for document ranking — the framework's third task
//! family (the paper's intro cites AL for IR ranking; here the model is
//! this workspace's own LambdaMART).
//!
//! The pool is a set of *queries*; annotating a sample means grading all
//! of that query's documents. Ranking uncertainty is the entropy of the
//! "which document ranks first" distribution, and the history wrappers
//! apply unchanged.
//!
//! ```sh
//! cargo run --release --example ranking_active_learning
//! ```

use histal::prelude::*;
use histal_data::{LtrDataset, LtrSpec};
use histal_models::{RankingModel, RankingModelConfig};

fn main() {
    let train = LtrDataset::generate(&LtrSpec {
        n_queries: 600,
        seed: 1,
        ..Default::default()
    });
    let test = LtrDataset::generate(&LtrSpec {
        n_queries: 150,
        seed: 2,
        ..Default::default()
    });
    let pool: Vec<Vec<Vec<f64>>> = train.queries.iter().map(|q| q.features.clone()).collect();
    let pool_labels: Vec<Vec<f64>> = train.queries.iter().map(|q| q.relevance.clone()).collect();
    let test_q: Vec<Vec<Vec<f64>>> = test.queries.iter().map(|q| q.features.clone()).collect();
    let test_l: Vec<Vec<f64>> = test.queries.iter().map(|q| q.relevance.clone()).collect();

    let config = PoolConfig {
        batch_size: 20,
        rounds: 8,
        init_labeled: 20,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    for strategy in [
        Strategy::new(BaseStrategy::Random),
        Strategy::new(BaseStrategy::Entropy),
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 }),
    ] {
        let mut learner = ActiveLearner::builder(RankingModel::new(RankingModelConfig::default()))
            .pool(pool.clone(), pool_labels.clone())
            .test(test_q.clone(), test_l.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(7)
            .build();
        let r = learner.run().expect("ranking model provides probabilities");
        println!("== {} ==", r.strategy_name);
        for p in r.curve.iter().step_by(2) {
            println!(
                "  {:>4} queries graded → NDCG@10 {:.4}",
                p.n_labeled, p.metric
            );
        }
        println!("  final: {:.4}\n", r.final_metric().unwrap_or(f64::NAN));
    }
}

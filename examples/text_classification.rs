//! Movie-review sentiment classification under an annotation budget —
//! the paper's Task 1, at reduced scale.
//!
//! Compares the full strategy family on an MR-analogue corpus: the base
//! entropy strategy, the HUS baseline (plain history sum, Davy & Luz
//! 2007), and the paper's WSHS and FHS wrappers, plus the EGL-word and
//! BALD SOTA strategies with history.
//!
//! ```sh
//! cargo run --release --example text_classification
//! ```

use histal::prelude::*;
use histal_data::train_test_split;

fn main() {
    // MR-analogue at 20% scale to stay snappy (~2100 documents).
    let mut spec = TextSpec::mr();
    spec.n_samples = 2_132;
    let data = TextDataset::generate(&spec);
    let stats = data.stats();
    println!(
        "dataset {}: {} docs, {} classes, |V| = {}",
        stats.name, stats.n, stats.n_classes, stats.vocab
    );

    let hasher = FeatureHasher::new(1 << 16);
    let docs: Vec<Document> = data
        .docs
        .iter()
        .map(|t| Document::from_tokens(t, &hasher))
        .collect();
    let (train_idx, test_idx) = train_test_split(docs.len(), 0.2, 99);
    let pool: Vec<Document> = train_idx.iter().map(|&i| docs[i].clone()).collect();
    let pool_labels: Vec<usize> = train_idx.iter().map(|&i| data.labels[i]).collect();
    let test: Vec<Document> = test_idx.iter().map(|&i| docs[i].clone()).collect();
    let test_labels: Vec<usize> = test_idx.iter().map(|&i| data.labels[i]).collect();

    let config = PoolConfig {
        batch_size: 25,
        rounds: 12,
        init_labeled: 25,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let strategies = vec![
        Strategy::new(BaseStrategy::Entropy),
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Hus { k: 3 }),
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 }),
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Fhs {
            l: 3,
            w_score: 0.5,
            w_fluct: 0.5,
        }),
        Strategy::new(BaseStrategy::EglWord).with_history(HistoryPolicy::Fhs {
            l: 3,
            w_score: 0.5,
            w_fluct: 0.5,
        }),
        Strategy::new(BaseStrategy::Bald).with_history(HistoryPolicy::Wshs { l: 3 }),
    ];

    let mut results = Vec::new();
    for strategy in strategies {
        let model = TextClassifier::new(TextClassifierConfig {
            n_classes: data.n_classes,
            n_features: 1 << 16,
            ..Default::default()
        });
        let mut learner = ActiveLearner::builder(model)
            .pool(pool.clone(), pool_labels.clone())
            .test(test.clone(), test_labels.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(2024)
            .build();
        results.push(learner.run().expect("all capabilities provided"));
    }

    // Print the joint learning-curve table.
    print!("{:>9}", "#labeled");
    for r in &results {
        print!("  {:>14}", r.strategy_name);
    }
    println!();
    for i in 0..results[0].curve.len() {
        print!("{:>9}", results[0].curve[i].n_labeled);
        for r in &results {
            print!("  {:>14.4}", r.curve[i].metric);
        }
        println!();
    }

    println!("\nfinal accuracies:");
    for r in &results {
        println!(
            "  {:<16} {:.4}",
            r.strategy_name,
            r.final_metric().unwrap_or(f64::NAN)
        );
    }
}

//! Representative and diversity combinators (paper §3.1.2–3.1.3).
//!
//! Demonstrates the density-weighted strategy (Eq. 7 — discounting
//! outliers by their mean similarity to the pool) and batch-mode MMR
//! diversity (Eq. 8 — penalizing near-duplicate selections within a
//! batch), both composed with the WSHS history wrapper.
//!
//! ```sh
//! cargo run --release --example diversity_batch
//! ```

use histal::prelude::*;
use histal_core::strategy::{DensityConfig, MmrConfig};
use histal_data::train_test_split;
use histal_text::SparseVec;

fn main() {
    let data = TextDataset::generate(&TextSpec::tiny(2, 1_500, 77));
    let hasher = FeatureHasher::new(1 << 14);
    let docs: Vec<Document> = data
        .docs
        .iter()
        .map(|t| Document::from_tokens(t, &hasher))
        .collect();
    let (tr, te) = train_test_split(docs.len(), 0.25, 8);
    let pool: Vec<Document> = tr.iter().map(|&i| docs[i].clone()).collect();
    let pool_labels: Vec<usize> = tr.iter().map(|&i| data.labels[i]).collect();
    let test: Vec<Document> = te.iter().map(|&i| docs[i].clone()).collect();
    let test_labels: Vec<usize> = te.iter().map(|&i| data.labels[i]).collect();
    // The combinators rank by sparse-vector cosine similarity; the
    // document features double as the representation.
    let reps: Vec<SparseVec> = pool.iter().map(|d| d.features.clone()).collect();

    let config = PoolConfig {
        batch_size: 25,
        rounds: 8,
        init_labeled: 25,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let strategies: Vec<(&str, Strategy)> = vec![
        ("entropy", Strategy::new(BaseStrategy::Entropy)),
        (
            "density-weighted entropy (Eq. 7)",
            Strategy::new(BaseStrategy::Entropy).with_density(DensityConfig::default()),
        ),
        (
            "MMR diversity λ=0.7 (Eq. 8)",
            Strategy::new(BaseStrategy::Entropy).with_mmr(MmrConfig { lambda: 0.7 }),
        ),
        (
            "WSHS + density + MMR",
            Strategy::new(BaseStrategy::Entropy)
                .with_history(HistoryPolicy::Wshs { l: 3 })
                .with_density(DensityConfig::default())
                .with_mmr(MmrConfig { lambda: 0.7 }),
        ),
    ];

    for (label, strategy) in strategies {
        let model = TextClassifier::new(TextClassifierConfig {
            n_classes: 2,
            n_features: 1 << 14,
            ..Default::default()
        });
        let mut learner = ActiveLearner::builder(model)
            .pool(pool.clone(), pool_labels.clone())
            .test(test.clone(), test_labels.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(31)
            .representations(reps.clone())
            .build();
        let r = learner.run().expect("entropy family always evaluable");
        println!(
            "{label:<34} final accuracy {:.4} (curve: {})",
            r.final_metric().unwrap_or(f64::NAN),
            r.curve
                .iter()
                .map(|p| format!("{:.3}", p.metric))
                .collect::<Vec<_>>()
                .join(" → ")
        );
    }
}

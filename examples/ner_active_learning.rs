//! Named entity recognition under an annotation budget — the paper's
//! Task 2, at reduced scale.
//!
//! Trains a linear-chain CRF on a CoNLL-2003-style synthetic corpus and
//! compares least-confidence, MNLP (length-normalized LC, Shen et al.
//! 2018), and their WSHS history wrappers by span-F1.
//!
//! ```sh
//! cargo run --release --example ner_active_learning
//! ```

use histal::prelude::*;

fn main() {
    let mut spec = NerSpec::conll2003_english();
    spec.n_train = 1_500;
    spec.n_dev = 300;
    spec.n_test = 400;
    let data = NerDataset::generate(&spec);
    for s in data.stats() {
        println!(
            "{:<6} {:>6} sentences  {:>7} tokens  {:>6} entities",
            s.split, s.n_sentences, s.n_tokens, s.n_entities
        );
    }

    let hasher = FeatureHasher::new(1 << 16);
    let featurize = |sents: &[histal_data::ner::NerSentence]| -> (Vec<Sentence>, Vec<Vec<u16>>) {
        (
            sents
                .iter()
                .map(|s| Sentence::featurize(&s.tokens, &hasher))
                .collect(),
            sents.iter().map(|s| s.tags.clone()).collect(),
        )
    };
    let (pool, pool_tags) = featurize(&data.train);
    let (test, test_tags) = featurize(&data.test);

    let config = PoolConfig {
        batch_size: 50,
        rounds: 8,
        init_labeled: 50,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let strategies = vec![
        Strategy::new(BaseStrategy::Random),
        Strategy::new(BaseStrategy::LeastConfidence),
        Strategy::new(BaseStrategy::Mnlp),
        Strategy::new(BaseStrategy::Mnlp).with_history(HistoryPolicy::Wshs { l: 3 }),
    ];

    let mut results = Vec::new();
    for strategy in strategies {
        let model = CrfTagger::new(CrfConfig {
            n_features: 1 << 16,
            epochs: 5,
            ..Default::default()
        });
        let mut learner = ActiveLearner::builder(model)
            .pool(pool.clone(), pool_tags.clone())
            .test(test.clone(), test_tags.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(777)
            .build();
        let result = learner.run().expect("CRF provides LC/MNLP");
        println!("\n== {} ==", result.strategy_name);
        for p in &result.curve {
            println!(
                "  {:>4} sentences labeled → span-F1 {:.4}",
                p.n_labeled, p.metric
            );
        }
        results.push(result);
    }

    println!("\nfinal span-F1:");
    for r in &results {
        println!(
            "  {:<12} {:.4}",
            r.strategy_name,
            r.final_metric().unwrap_or(f64::NAN)
        );
    }
}

//! Plugging a custom model into the active-learning driver.
//!
//! The driver is generic over [`histal::core::Model`], so any learner
//! that can emit class probabilities participates in every strategy the
//! crate ships — including the history-aware ones. This example wires in
//! a nearest-centroid classifier over dense 2-D points (a completely
//! different model family and sample type than the built-ins) and runs
//! FHS(entropy) against random sampling.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use histal::prelude::*;
use histal_core::eval::{EvalCaps, SampleEval};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A 2-D point sample.
type Point = [f64; 2];

/// Nearest-centroid classifier with a temperature-softmax posterior.
#[derive(Clone)]
struct CentroidModel {
    centroids: Vec<Point>,
    temperature: f64,
}

impl CentroidModel {
    fn new(n_classes: usize) -> Self {
        Self {
            centroids: vec![[0.0, 0.0]; n_classes],
            temperature: 4.0,
        }
    }

    fn probs(&self, x: &Point) -> Vec<f64> {
        let mut logits: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| {
                let d2 = (x[0] - c[0]).powi(2) + (x[1] - c[1]).powi(2);
                -self.temperature * d2
            })
            .collect();
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for l in logits.iter_mut() {
            *l = (*l - max).exp();
            sum += *l;
        }
        for l in logits.iter_mut() {
            *l /= sum;
        }
        logits
    }
}

impl Model for CentroidModel {
    type Sample = Point;
    type Label = usize;

    fn fit(&mut self, samples: &[&Point], labels: &[&usize], _rng: &mut ChaCha8Rng) {
        let k = self.centroids.len();
        let mut sums = vec![[0.0f64; 2]; k];
        let mut counts = vec![0usize; k];
        for (x, &&y) in samples.iter().zip(labels) {
            sums[y][0] += x[0];
            sums[y][1] += x[1];
            counts[y] += 1;
        }
        for (c, (s, n)) in self.centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *n > 0 {
                *c = [s[0] / *n as f64, s[1] / *n as f64];
            }
        }
    }

    fn eval_sample(&self, sample: &Point, _caps: &EvalCaps, _seed: u64) -> SampleEval {
        SampleEval::from_probs(self.probs(sample))
    }

    fn metric(&self, samples: &[&Point], labels: &[&usize]) -> f64 {
        let correct = samples
            .iter()
            .zip(labels)
            .filter(|(x, &&y)| {
                let p = self.probs(x);
                let pred = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                pred == y
            })
            .count();
        correct as f64 / samples.len().max(1) as f64
    }
}

/// Three overlapping Gaussian blobs.
fn make_blobs(n: usize, seed: u64) -> (Vec<Point>, Vec<usize>) {
    let centers: [Point; 3] = [[0.0, 0.0], [2.0, 0.5], [1.0, 2.0]];
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % 3;
        let gauss = |rng: &mut ChaCha8Rng| -> f64 {
            // Sum of uniforms ≈ normal.
            (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() - 3.0
        };
        xs.push([
            centers[c][0] + 0.55 * gauss(&mut rng),
            centers[c][1] + 0.55 * gauss(&mut rng),
        ]);
        ys.push(c);
    }
    (xs, ys)
}

fn main() {
    let (pool, pool_labels) = make_blobs(1_200, 3);
    let (test, test_labels) = make_blobs(600, 4);
    let config = PoolConfig {
        batch_size: 10,
        rounds: 12,
        init_labeled: 10,
        history_max_len: None,
        record_history: false,
        ann: None,
    };

    for strategy in [
        Strategy::new(BaseStrategy::Random),
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Fhs {
            l: 3,
            w_score: 0.5,
            w_fluct: 0.5,
        }),
    ] {
        let mut learner = ActiveLearner::builder(CentroidModel::new(3))
            .pool(pool.clone(), pool_labels.clone())
            .test(test.clone(), test_labels.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(99)
            .build();
        let r = learner
            .run()
            .expect("centroid model provides probabilities");
        println!("== {} ==", r.strategy_name);
        for p in r.curve.iter().step_by(3) {
            println!("  {:>4} labeled → accuracy {:.4}", p.n_labeled, p.metric);
        }
        println!("  final: {:.4}\n", r.final_metric().unwrap_or(f64::NAN));
    }
}

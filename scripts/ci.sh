#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   ./scripts/ci.sh
#
# Runs the same checks a pre-merge pipeline would, in order of
# increasing cost, and stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --examples (migrated call sites stay compiling)"
cargo build --workspace --examples

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> model tests under HISTAL_KERNELS=scalar (reference-kernel dispatch tier)"
HISTAL_KERNELS=scalar cargo test -p histal-models -q

echo "==> cargo bench --no-run (criterion benches compile)"
cargo bench -p histal-bench --no-run

echo "==> histal-experiments bench --check"
echo "    (harness smoke + obs/metrics gates + scalar-vs-lanes kernel"
echo "     equivalence + grid-wide perf-regression guard vs BENCH_harness.json"
echo "     + adaptive-sweep gate: >=30% cell-rounds saved, winners match"
echo "     + 10k pool-scaling smoke: ANN must beat exact per combinator"
echo "     + selector-train wall-time guard vs committed selector_train rows)"
cargo run -q --release -p histal-bench --bin histal-experiments -- \
    bench --check --scale 0.02 --repeats 1

echo "==> spec-check: every checked-in specs/*.json parses and validates"
echo "    (incl. the pool-scaling grid's ann table/bit/probe bounds)"
cargo run -q --release -p histal-bench --bin histal-experiments -- spec-check

echo "==> journal smoke: fig5 --journal, kill-free resume replays byte-identically"
# Run from a scratch cwd so the smoke never touches the tracked results/.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
REPO_DIR="$(pwd)"
BIN="$(pwd)/target/release/histal-experiments"
cargo build -q --release -p histal-bench --bin histal-experiments
(
    cd "$SMOKE_DIR"
    "$BIN" fig5 --scale 0.05 --repeats 1 --journal fig5.jsonl \
        > first.out 2> /dev/null
    grep -q '"kind":"cell"' fig5.jsonl
    # Tear the journal tail (simulated crash mid-append), then resume.
    truncate -s -50 fig5.jsonl
    "$BIN" resume fig5 --scale 0.05 --repeats 1 --journal fig5.jsonl \
        > second.out 2> /dev/null
    diff first.out second.out
)

echo "==> spec smoke: run --spec specs/fig5.json matches the fig5 golden"
(
    cd "$SMOKE_DIR"
    "$BIN" run --spec "$REPO_DIR/specs/fig5.json" --scale 0.05 --repeats 1 \
        > spec.out 2> /dev/null
    diff spec.out "$REPO_DIR/crates/bench/tests/goldens/fig5_s005_r1.stdout"
    diff results/fig5.json "$REPO_DIR/crates/bench/tests/goldens/fig5_s005_r1.json"
)

echo "==> adaptive smoke: run --spec specs/adaptive-sweep.json prunes, journals,"
echo "    and resumes byte-identically (pruning decisions included)"
(
    cd "$SMOKE_DIR"
    "$BIN" run --spec "$REPO_DIR/specs/adaptive-sweep.json" \
        --journal adaptive.jsonl > adaptive-first.out 2> adaptive-first.err
    grep -q '# adaptive: pruned' adaptive-first.err
    grep -q '"kind":"cell"' adaptive.jsonl
    # Tear the journal tail, then resume: stdout must not change.
    truncate -s -50 adaptive.jsonl
    "$BIN" resume run --spec "$REPO_DIR/specs/adaptive-sweep.json" \
        --journal adaptive.jsonl > adaptive-second.out 2> /dev/null
    diff adaptive-first.out adaptive-second.out
)

echo "==> transfer smoke: selector train -> save -> load -> apply across datasets,"
echo "    and the checked-in transfer matrix runs end-to-end"
(
    cd "$SMOKE_DIR"
    # Cross-process cross-dataset transfer: train on MR, persist the
    # HLRN1 artifact, reload it in a fresh process and deploy on SST-2.
    "$BIN" selector-train 'LAL(entropy)' mr lal-mr.hlrn --scale 0.05 \
        > /dev/null 2>&1
    test -s lal-mr.hlrn
    "$BIN" selector-apply lal-mr.hlrn sst2 --scale 0.05 \
        > apply.out 2> /dev/null
    grep -q '^ALC 0\.' apply.out
    "$BIN" run --spec "$REPO_DIR/specs/transfer-matrix.json" --scale 0.02 \
        > transfer.out 2> transfer.err
    grep -q 'Transfer ALC — LHS(entropy)' transfer.out
    grep -q 'Transfer ALC — LAL(entropy)' transfer.out
    grep -q '# selector train: ' transfer.err
    test -s results/transfer-matrix.json
)

echo "==> serve smoke: histal-serve end-to-end (external + simulated oracle,"
echo "    duplicate absorption, per-tenant /metrics, clean shutdown)"
cargo build -q --release -p histal-serve --bin histal-serve
SERVE_BIN="$(pwd)/target/release/histal-serve"
SERVE_ADDR="127.0.0.1:18437"
(
    cd "$SMOKE_DIR"
    "$SERVE_BIN" serve --addr "$SERVE_ADDR" --state-dir serve-state --threads 4 \
        > serve.log 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 50); do
        if curl -fsS "http://$SERVE_ADDR/healthz" > /dev/null 2>&1; then break; fi
        sleep 0.1
    done
    "$SERVE_BIN" smoke --addr "$SERVE_ADDR"
    curl -fsS -X POST "http://$SERVE_ADDR/shutdown" > /dev/null
    wait "$SERVE_PID"
)

echo "==> serve load: 1000 concurrent simulated sessions (acceptance bar)"
HISTAL_SERVE_SESSIONS=1000 cargo test -q --release -p histal-serve \
    --test serve_http concurrent_simulated_sessions_complete_with_tenant_metrics

echo "CI green."

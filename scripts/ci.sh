#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   ./scripts/ci.sh
#
# Runs the same checks a pre-merge pipeline would, in order of
# increasing cost, and stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cargo bench --no-run (criterion benches compile)"
cargo bench -p histal-bench --no-run

echo "==> histal-experiments bench --check (harness smoke, tiny grid)"
cargo run -q --release -p histal-bench --bin histal-experiments -- \
    bench --check --scale 0.02 --repeats 1

echo "CI green."

#!/bin/bash
# Regenerates every table/figure. Text experiments at paper scale; NER at
# half scale (documented in EXPERIMENTS.md).
set -x
BIN=target/release/histal-experiments
$BIN table3 > logs/table3.log 2>&1
$BIN table4 > logs/table4.log 2>&1
$BIN table2 --full > logs/table2.log 2>&1
$BIN fig5 --full > logs/fig5.log 2>&1
$BIN fig3-text --full > logs/fig3_text.log 2>&1
$BIN table5 --full --repeats 5 > logs/table5.log 2>&1
$BIN table6 --full > logs/table6.log 2>&1
$BIN table7 --full > logs/table7.log 2>&1
$BIN table7 --full --variant ar > logs/table7_ar.log 2>&1
$BIN table7 --full --variant linear > logs/table7_linear.log 2>&1
$BIN fig3-ner --scale 0.5 --repeats 2 > logs/fig3_ner.log 2>&1
$BIN fig4 --scale 0.5 --repeats 2 > logs/fig4.log 2>&1
echo ALL_EXPERIMENTS_DONE

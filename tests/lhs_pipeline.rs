//! End-to-end LHS (Algorithm 1): train the ranker on one labeled dataset
//! (the Subj role) and deploy it for selection on another (the MR role),
//! exactly as §4.4 prescribes.

mod common;

use common::tiny_text_task;
use histal::prelude::*;
use histal_core::lhs::{PredictorKind, RankerKind};
use histal_ltr::LambdaMartConfig;

fn quick_trainer_config() -> LhsTrainerConfig {
    LhsTrainerConfig {
        base: BaseStrategy::Entropy,
        rounds: 4,
        candidates_per_round: 10,
        init_labeled: 15,
        add_per_round: 4,
        level_interval: 0.0,
        features: LhsFeatureConfig {
            window: 3,
            ..Default::default()
        },
        predictor: PredictorKind::Ar { order: 2 },
        ranker: RankerKind::LambdaMart(LambdaMartConfig {
            n_trees: 20,
            ..Default::default()
        }),
        selector_candidate_pool: 40,
    }
}

fn trainer_model(n_classes: usize) -> TextClassifier {
    TextClassifier::new(TextClassifierConfig {
        n_classes,
        n_features: 1 << 14,
        epochs: 4,
        ..Default::default()
    })
}

#[test]
fn train_lhs_and_select_on_fresh_dataset() {
    // "Subj" role: ranker training source.
    let subj = tiny_text_task(2, 300, 41);
    let selector = train_lhs(
        &trainer_model(2),
        &subj.pool_docs,
        &subj.pool_labels,
        &subj.test_docs,
        &subj.test_labels,
        &quick_trainer_config(),
        7,
    )
    .expect("LHS training succeeds");

    // "MR" role: deployment target.
    let mr = tiny_text_task(2, 400, 42);
    let mut learner = ActiveLearner::builder(trainer_model(2))
        .pool(mr.pool_docs.clone(), mr.pool_labels.clone())
        .test(mr.test_docs.clone(), mr.test_labels.clone())
        .strategy(Strategy::new(BaseStrategy::Entropy))
        .config(PoolConfig {
            batch_size: 15,
            rounds: 6,
            init_labeled: 15,
            history_max_len: None,
            record_history: false,
            ann: None,
        })
        .seed(3)
        .lhs(selector)
        .build();
    let result = learner.run().expect("LHS run succeeds");
    assert_eq!(result.strategy_name, "LHS(entropy)");
    assert_eq!(result.curve.len(), 7);
    assert!(
        result.final_metric().unwrap() > 0.6,
        "LHS final accuracy {}",
        result.final_metric().unwrap()
    );
    // Every round selected a full batch from the candidate set.
    for r in &result.rounds {
        assert_eq!(r.selected.len(), 15);
    }
}

#[test]
fn lhs_with_lstm_predictor_and_linear_ranker() {
    let subj = tiny_text_task(2, 250, 43);
    let mut cfg = quick_trainer_config();
    cfg.predictor = PredictorKind::Lstm(histal_tseries::LstmConfig {
        hidden: 4,
        window: 3,
        epochs: 5,
        ..Default::default()
    });
    cfg.ranker = RankerKind::Linear(Default::default());
    let selector = train_lhs(
        &trainer_model(2),
        &subj.pool_docs,
        &subj.pool_labels,
        &subj.test_docs,
        &subj.test_labels,
        &cfg,
        11,
    )
    .expect("LHS trains with LSTM + linear ranker");
    assert_eq!(selector.feature_config().window, 3);
}

#[test]
fn lhs_training_is_deterministic() {
    let subj = tiny_text_task(2, 200, 44);
    let run = |seed| {
        let selector = train_lhs(
            &trainer_model(2),
            &subj.pool_docs,
            &subj.pool_labels,
            &subj.test_docs,
            &subj.test_labels,
            &quick_trainer_config(),
            seed,
        )
        .unwrap();
        let mr = tiny_text_task(2, 250, 45);
        let mut learner = ActiveLearner::builder(trainer_model(2))
            .pool(mr.pool_docs.clone(), mr.pool_labels.clone())
            .test(mr.test_docs.clone(), mr.test_labels.clone())
            .strategy(Strategy::new(BaseStrategy::Entropy))
            .config(PoolConfig {
                batch_size: 10,
                rounds: 3,
                init_labeled: 10,
                history_max_len: None,
                record_history: false,
                ann: None,
            })
            .seed(5)
            .lhs(selector)
            .build();
        learner.run().unwrap()
    };
    let a = run(21);
    let b = run(21);
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.selected, rb.selected);
    }
}

#[test]
fn artifacts_round_trip_through_json() {
    use histal_core::lhs::{train_lhs_artifacts, LhsArtifacts};

    let subj = tiny_text_task(2, 200, 47);
    let artifacts = train_lhs_artifacts(
        &trainer_model(2),
        &subj.pool_docs,
        &subj.pool_labels,
        &subj.test_docs,
        &subj.test_labels,
        &quick_trainer_config(),
        17,
    )
    .expect("training succeeds");

    let json = serde_json::to_string(&artifacts).expect("artifacts serialize");
    let restored: LhsArtifacts = serde_json::from_str(&json).expect("artifacts deserialize");

    // Deploying the original and the round-tripped selector must produce
    // identical selections.
    let mr = tiny_text_task(2, 250, 48);
    let run = |selector| {
        let mut learner = ActiveLearner::builder(trainer_model(2))
            .pool(mr.pool_docs.clone(), mr.pool_labels.clone())
            .test(mr.test_docs.clone(), mr.test_labels.clone())
            .strategy(Strategy::new(BaseStrategy::Entropy))
            .config(PoolConfig {
                batch_size: 10,
                rounds: 3,
                init_labeled: 10,
                history_max_len: None,
                record_history: false,
                ann: None,
            })
            .seed(5)
            .lhs(selector)
            .build();
        learner.run().unwrap()
    };
    let a = run(artifacts.clone().into_selector());
    let b = run(restored.into_selector());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.selected, rb.selected);
    }
}

#[test]
fn ablated_feature_configs_train() {
    let subj = tiny_text_task(2, 200, 46);
    for (name, features) in [
        (
            "-history",
            LhsFeatureConfig {
                use_history: false,
                window: 3,
                ..Default::default()
            },
        ),
        (
            "-fluct",
            LhsFeatureConfig {
                use_fluctuation: false,
                window: 3,
                ..Default::default()
            },
        ),
        (
            "-trend",
            LhsFeatureConfig {
                use_trend: false,
                window: 3,
                ..Default::default()
            },
        ),
        (
            "-pred",
            LhsFeatureConfig {
                use_prediction: false,
                window: 3,
                ..Default::default()
            },
        ),
        (
            "-probs",
            LhsFeatureConfig {
                use_probs: false,
                window: 3,
                ..Default::default()
            },
        ),
    ] {
        let mut cfg = quick_trainer_config();
        cfg.rounds = 3;
        cfg.features = features;
        let r = train_lhs(
            &trainer_model(2),
            &subj.pool_docs,
            &subj.pool_labels,
            &subj.test_docs,
            &subj.test_labels,
            &cfg,
            13,
        );
        assert!(r.is_ok(), "ablation {name} failed to train");
    }
}

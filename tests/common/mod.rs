#![allow(dead_code)]
//! Shared glue for the integration tests: featurize synthetic datasets
//! and run active-learning loops with little boilerplate.

use histal::prelude::*;
use histal_core::driver::RunResult;
use histal_data::train_test_split;

/// Featurized text-classification task: pool + test split.
pub struct TextTask {
    pub pool_docs: Vec<Document>,
    pub pool_labels: Vec<usize>,
    pub test_docs: Vec<Document>,
    pub test_labels: Vec<usize>,
    pub n_classes: usize,
}

/// Generate a tiny text task and featurize it.
pub fn tiny_text_task(n_classes: usize, n: usize, seed: u64) -> TextTask {
    let data = TextDataset::generate(&TextSpec::tiny(n_classes, n, seed));
    let hasher = FeatureHasher::new(1 << 14);
    let docs: Vec<Document> = data
        .docs
        .iter()
        .map(|toks| Document::from_tokens(toks, &hasher))
        .collect();
    let (train_idx, test_idx) = train_test_split(n, 0.3, seed ^ 0xBEEF);
    TextTask {
        pool_docs: train_idx.iter().map(|&i| docs[i].clone()).collect(),
        pool_labels: train_idx.iter().map(|&i| data.labels[i]).collect(),
        test_docs: test_idx.iter().map(|&i| docs[i].clone()).collect(),
        test_labels: test_idx.iter().map(|&i| data.labels[i]).collect(),
        n_classes,
    }
}

/// Run one AL loop on a text task with the given strategy.
pub fn run_text(task: &TextTask, strategy: Strategy, config: PoolConfig, seed: u64) -> RunResult {
    let model = TextClassifier::new(TextClassifierConfig {
        n_classes: task.n_classes,
        n_features: 1 << 14,
        epochs: 6,
        mc_passes: 8,
        ..Default::default()
    });
    let mut learner = ActiveLearner::builder(model)
        .pool(task.pool_docs.clone(), task.pool_labels.clone())
        .test(task.test_docs.clone(), task.test_labels.clone())
        .strategy(strategy)
        .config(config)
        .seed(seed)
        .build();
    learner.run().expect("strategy capabilities satisfied")
}

/// Mean metric over the back half of the curve — a stabler comparison
/// statistic than the single final point.
pub fn late_curve_mean(result: &RunResult) -> f64 {
    let half = result.curve.len() / 2;
    let tail = &result.curve[half..];
    tail.iter().map(|p| p.metric).sum::<f64>() / tail.len() as f64
}

//! Driver-level tests of the density/MMR combinators and structural
//! invariants of the active-learning loop (via a deterministic mock
//! model, so they are fast and substrate-independent).

mod common;

use common::tiny_text_task;
use histal::prelude::*;
use histal_core::eval::{EvalCaps, SampleEval};
use histal_core::strategy::{DensityConfig, MmrConfig};
use histal_text::SparseVec;
use rand_chacha::ChaCha8Rng;

/// A mock classifier whose posterior for sample `i` is fixed by the
/// sample itself: `probs = [x[0], 1 - x[0]]`. fit() is a no-op, so the
/// driver's structure can be tested in isolation.
#[derive(Clone)]
struct FixedModel;

impl Model for FixedModel {
    type Sample = f64;
    type Label = usize;

    fn fit(&mut self, _: &[&f64], _: &[&usize], _: &mut ChaCha8Rng) {}

    fn eval_sample(&self, sample: &f64, _: &EvalCaps, _: u64) -> SampleEval {
        SampleEval::from_probs(vec![*sample, 1.0 - *sample])
    }

    fn metric(&self, samples: &[&f64], labels: &[&usize]) -> f64 {
        let correct = samples
            .iter()
            .zip(labels)
            .filter(|(&&x, &&y)| usize::from(x >= 0.5) == y)
            .count();
        correct as f64 / samples.len().max(1) as f64
    }
}

fn run_fixed(n: usize, strategy: Strategy, batch: usize, rounds: usize) -> histal_core::RunResult {
    // Sample i has "certainty" i/n: the most uncertain samples are near
    // x = 0.5.
    let pool: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
    let labels: Vec<usize> = pool.iter().map(|&x| usize::from(x >= 0.5)).collect();
    let mut learner = ActiveLearner::builder(FixedModel)
        .pool(pool, labels.clone())
        .test(vec![0.2, 0.8], vec![0, 1])
        .strategy(strategy)
        .config(PoolConfig {
            batch_size: batch,
            rounds,
            init_labeled: batch,
            history_max_len: None,
            record_history: false,
            ann: None,
        })
        .seed(9)
        .build();
    learner.run().expect("mock model provides probabilities")
}

#[test]
fn no_sample_selected_twice_and_batches_full() {
    let r = run_fixed(200, Strategy::new(BaseStrategy::Entropy), 10, 8);
    let mut seen = std::collections::HashSet::new();
    for round in &r.rounds {
        assert_eq!(round.selected.len(), 10);
        for &id in &round.selected {
            assert!(seen.insert(id), "sample {id} selected twice");
        }
    }
}

#[test]
fn entropy_selects_most_uncertain_first() {
    let r = run_fixed(100, Strategy::new(BaseStrategy::Entropy), 10, 1);
    // The first batch must be the samples closest to x = 0.5.
    for &id in &r.rounds[0].selected {
        let x = id as f64 / 100.0;
        assert!(
            (x - 0.5).abs() <= 0.11,
            "selected sample {id} (x = {x}) is not near the boundary"
        );
    }
}

#[test]
fn curve_n_labeled_increments_by_batch() {
    let r = run_fixed(300, Strategy::new(BaseStrategy::LeastConfidence), 20, 5);
    for w in r.curve.windows(2) {
        assert_eq!(w[1].n_labeled - w[0].n_labeled, 20);
    }
}

#[test]
fn density_changes_selection_with_representations() {
    let task = tiny_text_task(2, 400, 61);
    let reps: Vec<SparseVec> = task.pool_docs.iter().map(|d| d.features.clone()).collect();
    let config = PoolConfig {
        batch_size: 15,
        rounds: 4,
        init_labeled: 15,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let mk_learner = |strategy: Strategy| {
        ActiveLearner::builder(TextClassifier::new(TextClassifierConfig {
            n_classes: 2,
            n_features: 1 << 14,
            epochs: 4,
            ..Default::default()
        }))
        .pool(task.pool_docs.clone(), task.pool_labels.clone())
        .test(task.test_docs.clone(), task.test_labels.clone())
        .strategy(strategy)
        .config(config.clone())
        .seed(13)
        .representations(reps.clone())
        .build()
    };
    let plain = mk_learner(Strategy::new(BaseStrategy::Entropy))
        .run()
        .unwrap();
    let dense = mk_learner(
        Strategy::new(BaseStrategy::Entropy).with_density(DensityConfig {
            sample_size: 64,
            beta: 1.0,
        }),
    )
    .run()
    .unwrap();
    assert!(
        plain
            .rounds
            .iter()
            .zip(&dense.rounds)
            .any(|(a, b)| a.selected != b.selected),
        "density weighting never changed a selection"
    );
    assert!(dense.final_metric().unwrap() > 0.5);
}

#[test]
fn mmr_diversifies_batches() {
    let task = tiny_text_task(2, 400, 62);
    let reps: Vec<SparseVec> = task.pool_docs.iter().map(|d| d.features.clone()).collect();
    let config = PoolConfig {
        batch_size: 20,
        rounds: 3,
        init_labeled: 20,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let run = |mmr: Option<MmrConfig>| {
        let mut strategy = Strategy::new(BaseStrategy::Entropy);
        if let Some(m) = mmr {
            strategy = strategy.with_mmr(m);
        }
        let mut learner = ActiveLearner::builder(TextClassifier::new(TextClassifierConfig {
            n_classes: 2,
            n_features: 1 << 14,
            epochs: 4,
            ..Default::default()
        }))
        .pool(task.pool_docs.clone(), task.pool_labels.clone())
        .test(task.test_docs.clone(), task.test_labels.clone())
        .strategy(strategy)
        .config(config.clone())
        .seed(17)
        .representations(reps.clone())
        .build();
        learner.run().unwrap()
    };
    let plain = run(None);
    let mmr = run(Some(MmrConfig { lambda: 0.3 }));
    // Mean pairwise similarity within each MMR batch must be lower.
    let mean_sim = |r: &histal_core::RunResult| {
        let mut acc = 0.0;
        let mut n = 0usize;
        for round in &r.rounds {
            for (i, &a) in round.selected.iter().enumerate() {
                for &b in &round.selected[i + 1..] {
                    acc += reps[a].cosine(&reps[b]);
                    n += 1;
                }
            }
        }
        acc / n.max(1) as f64
    };
    let plain_sim = mean_sim(&plain);
    let mmr_sim = mean_sim(&mmr);
    assert!(
        mmr_sim < plain_sim + 1e-9,
        "MMR batches not more diverse: {mmr_sim:.4} vs {plain_sim:.4}"
    );
}

#[test]
fn kcenter_batches_are_more_diverse_than_topk() {
    let task = tiny_text_task(2, 400, 63);
    let reps: Vec<SparseVec> = task.pool_docs.iter().map(|d| d.features.clone()).collect();
    let config = PoolConfig {
        batch_size: 20,
        rounds: 3,
        init_labeled: 20,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let run = |kcenter: bool| {
        let mut strategy = Strategy::new(BaseStrategy::Entropy);
        if kcenter {
            strategy = strategy.with_kcenter();
        }
        let mut learner = ActiveLearner::builder(TextClassifier::new(TextClassifierConfig {
            n_classes: 2,
            n_features: 1 << 14,
            epochs: 4,
            ..Default::default()
        }))
        .pool(task.pool_docs.clone(), task.pool_labels.clone())
        .test(task.test_docs.clone(), task.test_labels.clone())
        .strategy(strategy)
        .config(config.clone())
        .seed(19)
        .representations(reps.clone())
        .build();
        learner.run().unwrap()
    };
    let plain = run(false);
    let kc = run(true);
    let mean_sim = |r: &histal_core::RunResult| {
        let mut acc = 0.0;
        let mut n = 0usize;
        for round in &r.rounds {
            for (i, &a) in round.selected.iter().enumerate() {
                for &b in &round.selected[i + 1..] {
                    acc += reps[a].cosine(&reps[b]);
                    n += 1;
                }
            }
        }
        acc / n.max(1) as f64
    };
    assert!(
        mean_sim(&kc) < mean_sim(&plain),
        "k-center batches must be geometrically more diverse"
    );
}

#[test]
fn run_until_stops_on_budget_and_target() {
    use histal_core::stopping::{StopReason, StoppingRule};

    let pool: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
    let labels: Vec<usize> = pool.iter().map(|&x| usize::from(x >= 0.5)).collect();
    let mk = || {
        ActiveLearner::builder(FixedModel)
            .pool(pool.clone(), labels.clone())
            .test(vec![0.2, 0.8], vec![0, 1])
            .strategy(Strategy::new(BaseStrategy::Entropy))
            .config(PoolConfig {
                batch_size: 10,
                rounds: 15,
                init_labeled: 10,
                history_max_len: None,
                record_history: false,
                ann: None,
            })
            .seed(4)
            .build()
    };
    // Budget: stop at 40 labels → 4 curve points (10, 20, 30, 40).
    let (r, reason) = mk()
        .run_until(&StoppingRule::none().with_budget(40))
        .unwrap();
    assert_eq!(reason, StopReason::BudgetReached);
    assert_eq!(r.curve.last().unwrap().n_labeled, 40);

    // Target: the fixed model's metric is 1.0 from the start.
    let (r, reason) = mk()
        .run_until(&StoppingRule::none().with_target(0.9))
        .unwrap();
    assert_eq!(reason, StopReason::TargetReached);
    assert_eq!(r.curve.len(), 1);

    // No rule: all rounds.
    let (r, reason) = mk().run_until(&StoppingRule::none()).unwrap();
    assert_eq!(reason, StopReason::RoundsExhausted);
    assert_eq!(r.curve.len(), 16);
}

#[test]
fn run_until_plateau_fires_on_flat_metric() {
    use histal_core::stopping::{StopReason, StoppingRule};

    let pool: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
    let labels: Vec<usize> = pool.iter().map(|&x| usize::from(x >= 0.5)).collect();
    // Metric is constant → plateau after `patience` rounds.
    let mut learner = ActiveLearner::builder(FixedModel)
        .pool(pool, labels)
        .test(vec![0.2, 0.8], vec![0, 1])
        .strategy(Strategy::new(BaseStrategy::Entropy))
        .config(PoolConfig {
            batch_size: 10,
            rounds: 15,
            init_labeled: 10,
            history_max_len: None,
            record_history: false,
            ann: None,
        })
        .seed(4)
        .build();
    let (r, reason) = learner
        .run_until(&StoppingRule::none().with_patience(3, 1e-6))
        .unwrap();
    assert_eq!(reason, StopReason::Plateau);
    assert!(r.curve.len() <= 5);
}

#[test]
fn init_larger_than_pool_is_clamped() {
    let r = run_fixed(30, Strategy::new(BaseStrategy::Entropy), 50, 3);
    assert_eq!(r.curve[0].n_labeled, 30);
    // Pool exhausted immediately: nothing further to select.
    assert!(r.rounds.is_empty() || r.rounds.iter().all(|x| x.selected.is_empty()));
}

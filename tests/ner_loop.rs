//! End-to-end NER active learning: CRF tagger × synthetic CoNLL-style
//! data × LC/MNLP/BALD strategies and the history wrappers.

use histal::prelude::*;
use histal_text::FeatureHasher;

struct NerTask {
    pool: Vec<Sentence>,
    pool_tags: Vec<Vec<u16>>,
    test: Vec<Sentence>,
    test_tags: Vec<Vec<u16>>,
}

fn tiny_ner_task(n: usize, seed: u64) -> NerTask {
    let data = NerDataset::generate(&NerSpec::tiny(n, seed));
    let hasher = FeatureHasher::new(1 << 12);
    let feats = |sents: &[histal_data::ner::NerSentence]| -> (Vec<Sentence>, Vec<Vec<u16>>) {
        (
            sents
                .iter()
                .map(|s| Sentence::featurize(&s.tokens, &hasher))
                .collect(),
            sents.iter().map(|s| s.tags.clone()).collect(),
        )
    };
    let (pool, pool_tags) = feats(&data.train);
    let (test, test_tags) = feats(&data.test);
    NerTask {
        pool,
        pool_tags,
        test,
        test_tags,
    }
}

fn crf() -> CrfTagger {
    CrfTagger::new(CrfConfig {
        n_features: 1 << 12,
        epochs: 4,
        mc_passes: 4,
        ..Default::default()
    })
}

fn run_ner(task: &NerTask, strategy: Strategy, rounds: usize, seed: u64) -> histal_core::RunResult {
    let mut learner = ActiveLearner::builder(crf())
        .pool(task.pool.clone(), task.pool_tags.clone())
        .test(task.test.clone(), task.test_tags.clone())
        .strategy(strategy)
        .config(PoolConfig {
            batch_size: 20,
            rounds,
            init_labeled: 20,
            history_max_len: None,
            record_history: false,
            ann: None,
        })
        .seed(seed)
        .build();
    learner.run().expect("strategy capabilities satisfied")
}

#[test]
fn crf_learns_under_active_learning() {
    let task = tiny_ner_task(300, 31);
    let r = run_ner(&task, Strategy::new(BaseStrategy::LeastConfidence), 5, 1);
    assert_eq!(r.curve.len(), 6);
    assert!(
        r.final_metric().unwrap() > 0.5,
        "span F1 after 120 labeled sentences: {}",
        r.final_metric().unwrap()
    );
    assert!(r.final_metric().unwrap() > r.curve[0].metric);
}

#[test]
fn mnlp_and_bald_strategies_run() {
    let task = tiny_ner_task(200, 32);
    for base in [
        BaseStrategy::Mnlp,
        BaseStrategy::Bald,
        BaseStrategy::Entropy,
    ] {
        let r = run_ner(&task, Strategy::new(base), 3, 2);
        assert_eq!(r.curve.len(), 4, "strategy {base:?}");
        assert!(r.final_metric().unwrap() > 0.0, "strategy {base:?}");
    }
}

#[test]
fn egl_fails_cleanly_on_crf() {
    let task = tiny_ner_task(100, 33);
    let mut learner = ActiveLearner::builder(crf())
        .pool(task.pool.clone(), task.pool_tags.clone())
        .test(task.test.clone(), task.test_tags.clone())
        .strategy(Strategy::new(BaseStrategy::Egl))
        .config(PoolConfig {
            batch_size: 10,
            rounds: 2,
            init_labeled: 10,
            history_max_len: None,
            record_history: false,
            ann: None,
        })
        .seed(3)
        .build();
    let err = learner.run().unwrap_err();
    assert!(err.to_string().contains("egl"));
}

#[test]
fn wshs_wrapper_works_on_ner() {
    let task = tiny_ner_task(250, 34);
    let r = run_ner(
        &task,
        Strategy::new(BaseStrategy::LeastConfidence).with_history(HistoryPolicy::Wshs { l: 3 }),
        4,
        5,
    );
    assert_eq!(r.strategy_name, "WSHS(LC)");
    assert!(
        r.final_metric().unwrap() > 0.3,
        "F1 {}",
        r.final_metric().unwrap()
    );
}

#[test]
fn margin_strategy_runs_on_ner() {
    // Top-2 Viterbi margin: a genuinely sequence-level margin strategy.
    let task = tiny_ner_task(150, 36);
    let r = run_ner(&task, Strategy::new(BaseStrategy::Margin), 3, 4);
    assert_eq!(r.curve.len(), 4);
    assert!(r.final_metric().unwrap() > 0.0);
}

#[test]
fn qbc_committee_runs_on_ner() {
    let task = tiny_ner_task(120, 37);
    let model = CrfTagger::new(CrfConfig {
        n_features: 1 << 12,
        epochs: 3,
        committee: 3,
        committee_epochs: 2,
        ..Default::default()
    });
    let mut learner = ActiveLearner::builder(model)
        .pool(task.pool.clone(), task.pool_tags.clone())
        .test(task.test.clone(), task.test_tags.clone())
        .strategy(Strategy::new(BaseStrategy::QbcKl))
        .config(PoolConfig {
            batch_size: 15,
            rounds: 3,
            init_labeled: 15,
            history_max_len: None,
            record_history: false,
            ann: None,
        })
        .seed(6)
        .build();
    let r = learner.run().expect("committee provides qbc_kl");
    assert_eq!(r.curve.len(), 4);
}

#[test]
fn ner_runs_deterministic() {
    let task = tiny_ner_task(150, 35);
    let a = run_ner(&task, Strategy::new(BaseStrategy::Mnlp), 3, 9);
    let b = run_ner(&task, Strategy::new(BaseStrategy::Mnlp), 3, 9);
    for (pa, pb) in a.curve.iter().zip(&b.curve) {
        assert_eq!(pa.metric, pb.metric);
    }
}

//! End-to-end active learning on the ranking task (third task family):
//! query-level pool, LambdaMART model, NDCG metric.

use histal::prelude::*;
use histal_data::{LtrDataset, LtrSpec};
use histal_models::{RankingModel, RankingModelConfig};

struct RankTask {
    pool: Vec<Vec<Vec<f64>>>,
    pool_labels: Vec<Vec<f64>>,
    test: Vec<Vec<Vec<f64>>>,
    test_labels: Vec<Vec<f64>>,
}

fn task(n: usize, seed: u64) -> RankTask {
    let train = LtrDataset::generate(&LtrSpec {
        n_queries: n,
        seed,
        ..Default::default()
    });
    let test = LtrDataset::generate(&LtrSpec {
        n_queries: n / 3,
        seed: seed ^ 0xFF,
        ..Default::default()
    });
    RankTask {
        pool: train.queries.iter().map(|q| q.features.clone()).collect(),
        pool_labels: train.queries.iter().map(|q| q.relevance.clone()).collect(),
        test: test.queries.iter().map(|q| q.features.clone()).collect(),
        test_labels: test.queries.iter().map(|q| q.relevance.clone()).collect(),
    }
}

fn run(t: &RankTask, strategy: Strategy, seed: u64) -> histal_core::RunResult {
    let mut learner = ActiveLearner::builder(RankingModel::new(RankingModelConfig::default()))
        .pool(t.pool.clone(), t.pool_labels.clone())
        .test(t.test.clone(), t.test_labels.clone())
        .strategy(strategy)
        .config(PoolConfig {
            batch_size: 15,
            rounds: 5,
            init_labeled: 15,
            history_max_len: None,
            record_history: false,
            ann: None,
        })
        .seed(seed)
        .build();
    learner.run().expect("ranking model provides probabilities")
}

#[test]
fn ranking_al_learns() {
    let t = task(240, 51);
    let r = run(&t, Strategy::new(BaseStrategy::Entropy), 1);
    assert_eq!(r.curve.len(), 6);
    assert!(
        r.final_metric().unwrap() > 0.75,
        "NDCG {}",
        r.final_metric().unwrap()
    );
    assert!(r.final_metric().unwrap() > r.curve[0].metric - 0.05);
}

#[test]
fn history_wrappers_work_on_ranking() {
    let t = task(200, 52);
    for strategy in [
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 }),
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Fhs {
            l: 3,
            w_score: 0.5,
            w_fluct: 0.5,
        }),
        Strategy::new(BaseStrategy::LeastConfidence),
        Strategy::new(BaseStrategy::Margin),
    ] {
        let name = strategy.name();
        let r = run(&t, strategy, 2);
        assert!(
            r.final_metric().unwrap() > 0.6,
            "{name}: NDCG {}",
            r.final_metric().unwrap()
        );
    }
}

#[test]
fn ranking_runs_deterministic() {
    let t = task(150, 53);
    let a = run(&t, Strategy::new(BaseStrategy::Entropy), 9);
    let b = run(&t, Strategy::new(BaseStrategy::Entropy), 9);
    for (pa, pb) in a.curve.iter().zip(&b.curve) {
        assert_eq!(pa.metric, pb.metric);
    }
}

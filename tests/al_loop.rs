//! End-to-end integration tests of the active-learning loop on the text
//! classification task: driver × strategies × classifier × synthetic data.

mod common;

use common::{late_curve_mean, run_text, tiny_text_task};
use histal::prelude::*;

fn quick_config() -> PoolConfig {
    PoolConfig {
        batch_size: 20,
        rounds: 8,
        init_labeled: 20,
        history_max_len: None,
        record_history: false,
        ann: None,
    }
}

#[test]
fn curve_has_expected_shape() {
    let task = tiny_text_task(2, 600, 11);
    let result = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy),
        quick_config(),
        1,
    );
    // rounds + 1 points, labeled counts increasing by batch size.
    assert_eq!(result.curve.len(), 9);
    assert_eq!(result.curve[0].n_labeled, 20);
    assert_eq!(result.curve[8].n_labeled, 20 + 8 * 20);
    // Learning happened: final metric far above chance.
    assert!(
        result.final_metric().unwrap() > 0.65,
        "final {}",
        result.final_metric().unwrap()
    );
    // Early metric below late metric (learning curve rises overall).
    assert!(result.curve[0].metric < result.final_metric().unwrap());
}

#[test]
fn runs_are_deterministic_under_seed() {
    let task = tiny_text_task(2, 400, 12);
    let a = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy),
        quick_config(),
        7,
    );
    let b = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy),
        quick_config(),
        7,
    );
    for (pa, pb) in a.curve.iter().zip(&b.curve) {
        assert_eq!(pa.metric, pb.metric);
    }
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.selected, rb.selected);
    }
    // And a different seed changes the run.
    let c = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy),
        quick_config(),
        8,
    );
    assert!(a.rounds[0].selected != c.rounds[0].selected);
}

#[test]
fn entropy_beats_random_on_average() {
    // Average eight seeds to damp run-to-run noise: with only three
    // seeds the comparison flips sign depending on the RNG stream, so
    // the margin was a seed lottery rather than a property of the
    // strategy. On this tiny task entropy and random are statistically
    // close; the property worth pinning is "entropy does not lose
    // clearly", measured on per-seed means.
    let task = tiny_text_task(2, 800, 13);
    let seeds: Vec<u64> = (1..=8).collect();
    let mut ent = 0.0;
    let mut rnd = 0.0;
    for &seed in &seeds {
        ent += late_curve_mean(&run_text(
            &task,
            Strategy::new(BaseStrategy::Entropy),
            quick_config(),
            seed,
        ));
        rnd += late_curve_mean(&run_text(
            &task,
            Strategy::new(BaseStrategy::Random),
            quick_config(),
            seed,
        ));
    }
    let (ent, rnd) = (ent / seeds.len() as f64, rnd / seeds.len() as f64);
    assert!(
        ent > rnd - 0.01,
        "entropy (mean {ent:.4}) should not lose clearly to random (mean {rnd:.4})"
    );
}

#[test]
fn all_basic_strategies_run_to_completion() {
    let task = tiny_text_task(2, 300, 14);
    let cfg = PoolConfig {
        batch_size: 15,
        rounds: 4,
        init_labeled: 15,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    for base in [
        BaseStrategy::Random,
        BaseStrategy::Entropy,
        BaseStrategy::LeastConfidence,
        BaseStrategy::Margin,
        BaseStrategy::Egl,
        BaseStrategy::EglWord,
        BaseStrategy::Bald,
    ] {
        let r = run_text(&task, Strategy::new(base), cfg.clone(), 5);
        assert_eq!(r.curve.len(), 5, "strategy {:?}", base);
        assert!(
            r.final_metric().unwrap() > 0.5,
            "strategy {:?} metric {}",
            base,
            r.final_metric().unwrap()
        );
    }
}

#[test]
fn qbc_requires_committee_model() {
    // Default classifier has no committee → QBC must fail cleanly.
    let task = tiny_text_task(2, 200, 15);
    let model = TextClassifier::new(TextClassifierConfig {
        n_classes: 2,
        n_features: 1 << 12,
        epochs: 3,
        ..Default::default()
    });
    let mut learner = ActiveLearner::builder(model)
        .pool(task.pool_docs.clone(), task.pool_labels.clone())
        .test(task.test_docs.clone(), task.test_labels.clone())
        .strategy(Strategy::new(BaseStrategy::QbcKl))
        .config(PoolConfig {
            batch_size: 10,
            rounds: 2,
            init_labeled: 10,
            history_max_len: None,
            record_history: false,
            ann: None,
        })
        .seed(3)
        .build();
    let err = learner.run().unwrap_err();
    assert!(err.to_string().contains("qbc_kl"));
}

#[test]
fn qbc_with_committee_succeeds() {
    let task = tiny_text_task(2, 250, 16);
    let model = TextClassifier::new(TextClassifierConfig {
        n_classes: 2,
        n_features: 1 << 12,
        epochs: 3,
        committee: 3,
        committee_epochs: 2,
        ..Default::default()
    });
    let mut learner = ActiveLearner::builder(model)
        .pool(task.pool_docs.clone(), task.pool_labels.clone())
        .test(task.test_docs.clone(), task.test_labels.clone())
        .strategy(Strategy::new(BaseStrategy::QbcKl))
        .config(PoolConfig {
            batch_size: 10,
            rounds: 3,
            init_labeled: 10,
            history_max_len: None,
            record_history: false,
            ann: None,
        })
        .seed(3)
        .build();
    let r = learner.run().expect("committee provides qbc_kl");
    assert_eq!(r.curve.len(), 4);
}

#[test]
fn history_policies_change_selection() {
    let task = tiny_text_task(2, 500, 17);
    let cfg = quick_config();
    let base = run_text(&task, Strategy::new(BaseStrategy::Entropy), cfg.clone(), 9);
    let wshs = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 }),
        cfg.clone(),
        9,
    );
    let fhs = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Fhs {
            l: 3,
            w_score: 0.5,
            w_fluct: 0.5,
        }),
        cfg,
        9,
    );
    // Identical seeds: round 0 has no history difference (selection by a
    // single score), but later rounds must diverge for FHS.
    assert_eq!(base.rounds[0].selected, wshs.rounds[0].selected);
    let diverged = base
        .rounds
        .iter()
        .zip(&fhs.rounds)
        .skip(1)
        .any(|(a, b)| a.selected != b.selected);
    assert!(diverged, "FHS never diverged from the base strategy");
    assert_eq!(wshs.strategy_name, "WSHS(entropy)");
    assert_eq!(fhs.strategy_name, "FHS(entropy)");
}

#[test]
fn wshs_l1_selects_like_base() {
    let task = tiny_text_task(2, 300, 18);
    let cfg = PoolConfig {
        batch_size: 10,
        rounds: 4,
        init_labeled: 10,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let base = run_text(&task, Strategy::new(BaseStrategy::Entropy), cfg.clone(), 21);
    let wshs1 = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 1 }),
        cfg,
        21,
    );
    for (a, b) in base.rounds.iter().zip(&wshs1.rounds) {
        assert_eq!(
            a.selected, b.selected,
            "WSHS(l=1) must equal the base strategy"
        );
    }
}

#[test]
fn history_cap_bounds_memory_without_changing_small_windows() {
    let task = tiny_text_task(2, 300, 19);
    let mut cfg = quick_config();
    cfg.history_max_len = Some(3);
    let capped = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 }),
        cfg,
        4,
    );
    let full = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 }),
        quick_config(),
        4,
    );
    // A window-3 strategy reads only the last 3 scores, so capping
    // retention at 3 must not change any selection.
    for (a, b) in capped.rounds.iter().zip(&full.rounds) {
        assert_eq!(a.selected, b.selected);
    }
}

#[test]
fn record_history_exposes_score_matrix() {
    let task = tiny_text_task(2, 200, 26);
    let mut cfg = PoolConfig {
        batch_size: 10,
        rounds: 5,
        init_labeled: 10,
        history_max_len: None,
        record_history: true,
        ann: None,
    };
    let r = run_text(&task, Strategy::new(BaseStrategy::Entropy), cfg.clone(), 8);
    let n_pool = task.pool_docs.len();
    assert_eq!(r.history.len(), n_pool);
    // Samples in the initial labeled set were never evaluated; samples
    // never selected have one score per round.
    let max_len = r.history.iter().map(Vec::len).max().unwrap();
    assert_eq!(max_len, 5);
    assert!(r.history.iter().any(|s| s.is_empty()));
    // Entropy scores are valid (≤ ln 2 for binary).
    for seq in &r.history {
        for &v in seq {
            assert!((0.0..=(2f64).ln() + 1e-9).contains(&v));
        }
    }
    // Off by default.
    cfg.record_history = false;
    let r2 = run_text(&task, Strategy::new(BaseStrategy::Entropy), cfg, 8);
    assert!(r2.history.is_empty());
}

#[test]
fn hkld_baseline_runs_and_diverges_from_entropy() {
    let task = tiny_text_task(2, 400, 23);
    let cfg = quick_config();
    let ent = run_text(&task, Strategy::new(BaseStrategy::Entropy), cfg.clone(), 6);
    let hkld = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy).with_hkld(3),
        cfg,
        6,
    );
    assert_eq!(hkld.strategy_name, "HKLD(k=3)");
    assert!(hkld.final_metric().unwrap() > 0.5);
    // From round 2 onward HKLD scores by posterior-history KL, so the
    // selections must eventually differ from plain entropy.
    let diverged = ent
        .rounds
        .iter()
        .zip(&hkld.rounds)
        .skip(1)
        .any(|(a, b)| a.selected != b.selected);
    assert!(diverged);
}

#[test]
fn round_timings_are_recorded() {
    let task = tiny_text_task(2, 300, 24);
    let r = run_text(
        &task,
        Strategy::new(BaseStrategy::Entropy),
        quick_config(),
        2,
    );
    for round in &r.rounds {
        assert!(round.fit_ms >= 0.0 && round.eval_ms >= 0.0 && round.select_ms >= 0.0);
        assert!(round.fit_ms.is_finite());
    }
    // Something was actually measured.
    assert!(r.rounds.iter().any(|x| x.fit_ms > 0.0));
}

#[test]
fn pool_exhaustion_stops_cleanly() {
    let task = tiny_text_task(2, 60, 20);
    let cfg = PoolConfig {
        batch_size: 25,
        rounds: 10,
        init_labeled: 10,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let r = run_text(&task, Strategy::new(BaseStrategy::Entropy), cfg, 2);
    // 60 * 0.7 = 42 pool samples; init 10 + 25 + 7 → exhausted in 2 rounds.
    let last = r.curve.last().unwrap();
    assert!(last.n_labeled <= 42);
    assert!(r.curve.len() <= 11);
}

//! Property-based tests: the generated NER corpora survive a CoNLL
//! write/parse round trip, and the LTR generator keeps its invariants
//! under arbitrary specs.

use proptest::prelude::*;

use histal_data::{parse_conll, write_conll, LtrDataset, LtrSpec, NerDataset, NerSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated NER sentences round-trip through the CoNLL text format:
    /// tokens and tag sequences survive exactly (BIOES → BIO → BIOES is
    /// lossless for well-formed sequences).
    #[test]
    fn ner_conll_round_trip(n in 3usize..25, seed in 0u64..200) {
        let d = NerDataset::generate(&NerSpec::tiny(n, seed));
        let mut buf = Vec::new();
        write_conll(&mut buf, &d.train, &d.scheme).unwrap();
        let back = parse_conll(buf.as_slice(), &d.scheme).unwrap();
        prop_assert_eq!(back.len(), d.train.len());
        for (a, b) in back.iter().zip(&d.train) {
            prop_assert_eq!(&a.tokens, &b.tokens);
            prop_assert_eq!(&a.tags, &b.tags);
        }
    }

    /// LTR generation invariants hold across the spec space.
    #[test]
    fn ltr_spec_space(
        n_queries in 1usize..40,
        docs in 3usize..12,
        n_grades in 2usize..6,
        seed in 0u64..200,
    ) {
        let spec = LtrSpec {
            n_queries,
            docs_per_query: docs,
            n_grades,
            seed,
            ..Default::default()
        };
        let d = LtrDataset::generate(&spec);
        prop_assert_eq!(d.len(), n_queries);
        for q in &d.queries {
            prop_assert!(q.features.len() >= 2);
            let max = q.relevance.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(max < n_grades as f64);
            prop_assert!(q.relevance.iter().all(|&r| r >= 0.0));
        }
    }
}

//! Property-based tests for the dataset generators and splitters.

use proptest::prelude::*;

use histal_data::{cv_folds, train_test_split, NerDataset, NerSpec, TextDataset, TextSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated text datasets respect their spec invariants for
    /// arbitrary sizes, class counts and seeds.
    #[test]
    fn text_dataset_invariants(n_classes in 2usize..6, n in 10usize..120, seed in 0u64..1000) {
        let spec = TextSpec::tiny(n_classes, n, seed);
        let d = TextDataset::generate(&spec);
        prop_assert_eq!(d.len(), n);
        prop_assert_eq!(d.docs.len(), d.labels.len());
        for (doc, &label) in d.docs.iter().zip(&d.labels) {
            prop_assert!(label < n_classes);
            prop_assert!(doc.len() >= 3 && doc.len() <= spec.max_len);
        }
        // Class balance within one sample of perfect.
        for c in 0..n_classes {
            let count = d.labels.iter().filter(|&&l| l == c).count();
            prop_assert!((count as i64 - (n / n_classes) as i64).abs() <= 1);
        }
    }

    /// NER datasets: tags align, are valid ids, and decoded spans can be
    /// re-encoded to the identical tag sequence.
    #[test]
    fn ner_dataset_invariants(n in 5usize..40, seed in 0u64..500) {
        let d = NerDataset::generate(&NerSpec::tiny(n, seed));
        let n_labels = d.scheme.n_labels() as u16;
        for s in d.train.iter().chain(&d.dev).chain(&d.test) {
            prop_assert_eq!(s.tokens.len(), s.tags.len());
            prop_assert!(s.tags.iter().all(|&t| t < n_labels));
            let spans = d.scheme.decode_spans(&s.tags);
            let mut rebuilt = vec![0u16; s.tags.len()];
            for (start, end, ty) in spans {
                for (off, t) in d.scheme.encode_span(end - start + 1, ty).into_iter().enumerate() {
                    rebuilt[start + off] = t;
                }
            }
            prop_assert_eq!(&rebuilt, &s.tags);
        }
    }

    /// train_test_split partitions 0..n exactly.
    #[test]
    fn split_partitions(n in 2usize..200, frac in 0.05f64..0.9, seed in 0u64..100) {
        let (train, test) = train_test_split(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert!(!train.is_empty() && !test.is_empty());
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// cv_folds: test folds are disjoint and exhaustive; every train set
    /// is the complement of its test fold.
    #[test]
    fn folds_partition(n in 10usize..100, k in 2usize..8, seed in 0u64..100) {
        prop_assume!(n >= k);
        let folds = cv_folds(n, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![false; n];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), n);
            for &i in test {
                prop_assert!(!seen[i], "index {i} in two test folds");
                seen[i] = true;
                prop_assert!(!train.contains(&i));
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Generation with the same seed is identical; different seeds
    /// differ (with overwhelming probability for n ≥ 10 docs).
    #[test]
    fn seed_determinism(seed in 0u64..500) {
        let a = TextDataset::generate(&TextSpec::tiny(2, 30, seed));
        let b = TextDataset::generate(&TextSpec::tiny(2, 30, seed));
        prop_assert_eq!(&a.docs, &b.docs);
        let c = TextDataset::generate(&TextSpec::tiny(2, 30, seed.wrapping_add(1)));
        prop_assert_ne!(&a.docs, &c.docs);
    }
}

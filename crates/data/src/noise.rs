//! Label-noise injection for robustness studies.
//!
//! Annotators are imperfect; an AL strategy that over-trusts single
//! evaluations amplifies annotation mistakes. These helpers corrupt a
//! fraction of oracle labels so the harness can study how the
//! history-aware strategies degrade (the robustness extension experiment,
//! `histal-experiments noise`).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Flip each classification label to a uniformly random *other* class
/// with probability `rate`. Returns the indices that were corrupted.
///
/// # Panics
/// Panics if `rate` is outside `[0, 1]` or `n_classes < 2`.
pub fn corrupt_labels(labels: &mut [usize], n_classes: usize, rate: f64, seed: u64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&rate), "noise rate must be in [0, 1]");
    assert!(n_classes >= 2, "need at least two classes to corrupt");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut corrupted = Vec::new();
    for (i, label) in labels.iter_mut().enumerate() {
        if rng.gen::<f64>() < rate {
            let mut new = rng.gen_range(0..n_classes - 1);
            if new >= *label {
                new += 1;
            }
            *label = new;
            corrupted.push(i);
        }
    }
    corrupted
}

/// Flip each NER token tag to `O` with probability `rate` (annotators
/// most often *miss* entities rather than invent them). Returns the
/// number of corrupted tokens.
pub fn drop_entity_tags(tag_seqs: &mut [Vec<u16>], rate: f64, seed: u64) -> usize {
    assert!((0.0..=1.0).contains(&rate), "noise rate must be in [0, 1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut corrupted = 0;
    for seq in tag_seqs.iter_mut() {
        for tag in seq.iter_mut() {
            if *tag != 0 && rng.gen::<f64>() < rate {
                *tag = 0;
                corrupted += 1;
            }
        }
    }
    corrupted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_noop() {
        let mut labels = vec![0, 1, 0, 1];
        let flipped = corrupt_labels(&mut labels, 2, 0.0, 1);
        assert!(flipped.is_empty());
        assert_eq!(labels, vec![0, 1, 0, 1]);
    }

    #[test]
    fn full_rate_flips_everything_to_other_classes() {
        let mut labels = vec![0usize; 100];
        let flipped = corrupt_labels(&mut labels, 3, 1.0, 2);
        assert_eq!(flipped.len(), 100);
        assert!(labels.iter().all(|&l| l == 1 || l == 2));
    }

    #[test]
    fn rate_is_approximately_respected() {
        let mut labels = vec![0usize; 10_000];
        let flipped = corrupt_labels(&mut labels, 2, 0.2, 3);
        let rate = flipped.len() as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn corruption_is_deterministic() {
        let mut a = vec![0, 1, 2, 0, 1, 2];
        let mut b = a.clone();
        corrupt_labels(&mut a, 3, 0.5, 9);
        corrupt_labels(&mut b, 3, 0.5, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn entity_drop_only_touches_entities() {
        let mut seqs = vec![vec![0u16, 3, 0, 5], vec![0, 0]];
        let n = drop_entity_tags(&mut seqs, 1.0, 4);
        assert_eq!(n, 2);
        assert!(seqs.iter().flatten().all(|&t| t == 0));
    }

    #[test]
    #[should_panic(expected = "noise rate")]
    fn bad_rate_panics() {
        let mut labels = vec![0, 1];
        let _ = corrupt_labels(&mut labels, 2, 1.5, 0);
    }
}

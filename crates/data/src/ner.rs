//! Synthetic NER corpora (Table 4 stand-ins).
//!
//! Sentences interleave Zipf background tokens with entity mentions drawn
//! from per-type synthetic gazetteers (capitalized pseudo-words built
//! from per-type syllable inventories, so character n-gram features carry
//! type signal, as they do in real data). Entity mentions are introduced
//! by type-specific context triggers with imperfect reliability;
//! per-language knobs control gazetteer ambiguity and trigger reliability
//! so the English > Spanish > Dutch difficulty ordering of the paper's F1
//! curves is preserved.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_core::tags::TagScheme;

use crate::zipf::Zipf;

/// One annotated sentence: tokens and their BIOES tag ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NerSentence {
    pub tokens: Vec<String>,
    pub tags: Vec<u16>,
}

/// Generation parameters for one synthetic NER dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NerSpec {
    /// Dataset display name.
    pub name: String,
    /// Sentences in the train split.
    pub n_train: usize,
    /// Sentences in the dev split.
    pub n_dev: usize,
    /// Sentences in the test split.
    pub n_test: usize,
    /// Mean tokens per sentence.
    pub mean_len: f64,
    /// Maximum tokens per sentence.
    pub max_len: usize,
    /// Background vocabulary size.
    pub background_vocab: usize,
    /// Gazetteer size per entity type.
    pub gazetteer_size: usize,
    /// Probability of starting an entity at an eligible position.
    pub entity_prob: f64,
    /// Probability an entity token is drawn from an *ambiguous* pool
    /// shared by all types (harder type disambiguation).
    pub gazetteer_ambiguity: f64,
    /// Probability the type-specific context trigger precedes a mention.
    pub trigger_reliability: f64,
    /// Probability an entity token is emitted lowercase (shape noise).
    pub case_noise: f64,
    /// Probability a background position emits a capitalized entity-like
    /// *distractor* token tagged `O` — the main confusion source in real
    /// newswire (sentence-initial caps, capitalized common nouns).
    pub distractor_prob: f64,
    /// Generation seed.
    pub seed: u64,
}

impl NerSpec {
    /// CoNLL-2003 English analogue: 14 987 / 3 466 / 3 684 sentences,
    /// ~13.6 tokens/sentence. Easiest setting.
    pub fn conll2003_english() -> Self {
        Self {
            name: "CoNLL-2003 English".into(),
            n_train: 14_987,
            n_dev: 3_466,
            n_test: 3_684,
            mean_len: 13.6,
            max_len: 60,
            background_vocab: 18_000,
            gazetteer_size: 900,
            entity_prob: 0.13,
            gazetteer_ambiguity: 0.15,
            trigger_reliability: 0.60,
            case_noise: 0.05,
            distractor_prob: 0.05,
            seed: 0xE203,
        }
    }

    /// CoNLL-2002 Spanish analogue: 8 322 / 1 914 / 1 516 sentences,
    /// ~31.8 tokens/sentence. Intermediate difficulty.
    pub fn conll2002_spanish() -> Self {
        Self {
            name: "CoNLL-2002 Spanish".into(),
            n_train: 8_322,
            n_dev: 1_914,
            n_test: 1_516,
            mean_len: 31.8,
            max_len: 100,
            background_vocab: 22_000,
            gazetteer_size: 900,
            entity_prob: 0.06,
            gazetteer_ambiguity: 0.30,
            trigger_reliability: 0.45,
            case_noise: 0.12,
            distractor_prob: 0.08,
            seed: 0xE502,
        }
    }

    /// CoNLL-2002 Dutch analogue: 15 806 / 2 895 / 5 195 sentences,
    /// ~12.8 tokens/sentence. Hardest setting (lowest F1 in Fig. 3).
    pub fn conll2002_dutch() -> Self {
        Self {
            name: "CoNLL-2002 Dutch".into(),
            n_train: 15_806,
            n_dev: 2_895,
            n_test: 5_195,
            mean_len: 12.8,
            max_len: 60,
            background_vocab: 20_000,
            gazetteer_size: 900,
            entity_prob: 0.11,
            gazetteer_ambiguity: 0.45,
            trigger_reliability: 0.30,
            case_noise: 0.20,
            distractor_prob: 0.11,
            seed: 0xD102,
        }
    }

    /// Registry lookup: the named builder above, or `None` for an
    /// unrecognized name. Matched case-insensitively, with short
    /// language aliases (`conll-en`, `conll-es`, `conll-nl`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "conll2003-en" | "conll-en" => Some(Self::conll2003_english()),
            "conll2002-es" | "conll-es" => Some(Self::conll2002_spanish()),
            "conll2002-nl" | "conll-nl" => Some(Self::conll2002_dutch()),
            _ => None,
        }
    }

    /// Canonical names [`Self::by_name`] accepts (for error messages).
    pub const NAMES: &'static [&'static str] = &["conll2003-en", "conll2002-es", "conll2002-nl"];

    /// Scaled-down variant for tests/examples.
    pub fn tiny(n_train: usize, seed: u64) -> Self {
        Self {
            name: "tiny-ner".into(),
            n_train,
            n_dev: n_train / 5,
            n_test: n_train / 5,
            mean_len: 9.0,
            max_len: 20,
            background_vocab: 400,
            gazetteer_size: 60,
            entity_prob: 0.18,
            gazetteer_ambiguity: 0.1,
            trigger_reliability: 0.7,
            case_noise: 0.03,
            distractor_prob: 0.03,
            seed,
        }
    }
}

/// Statistics in the shape of Table 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NerSplitStats {
    pub split: String,
    pub n_sentences: usize,
    pub n_tokens: usize,
    pub n_entities: usize,
}

/// A generated NER dataset with train/dev/test splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NerDataset {
    /// Display name.
    pub name: String,
    /// The BIOES tag inventory (PER/ORG/LOC/MISC).
    pub scheme: TagScheme,
    pub train: Vec<NerSentence>,
    pub dev: Vec<NerSentence>,
    pub test: Vec<NerSentence>,
}

/// Per-type syllable inventories so character n-grams carry type signal.
const SYLLABLES: [&[&str]; 4] = [
    // PER
    &["an", "be", "ka", "mi", "ro", "so", "ta", "vi", "lo", "ne"],
    // ORG
    &[
        "corp", "tek", "dyn", "glo", "sys", "net", "fab", "ix", "tron", "max",
    ],
    // LOC
    &[
        "berg", "ville", "ton", "shire", "field", "ford", "dale", "port", "land", "holm",
    ],
    // MISC
    &[
        "ism", "ian", "fest", "gate", "eco", "uni", "pan", "neo", "ult", "era",
    ],
];

/// Type-specific context triggers ("Mr." before PER, "in" before LOC, …).
const TRIGGERS: [&str; 4] = ["mr", "at-company", "located-in", "the-event"];

impl NerDataset {
    /// Generate the dataset described by `spec` (deterministic).
    pub fn generate(spec: &NerSpec) -> Self {
        let scheme = TagScheme::conll();
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let background = Zipf::new(spec.background_vocab, 1.05);
        let gaz_sampler = Zipf::new(spec.gazetteer_size, 0.8);
        // Pre-generate gazetteers: per-type plus the shared ambiguous pool.
        let gazetteers: Vec<Vec<String>> = (0..4)
            .map(|ty| {
                (0..spec.gazetteer_size)
                    .map(|i| make_name(SYLLABLES[ty], i, &mut rng))
                    .collect()
            })
            .collect();
        let ambiguous: Vec<String> = (0..spec.gazetteer_size)
            .map(|i| {
                // Ambiguous names mix syllables from two random types.
                let a = rng.gen_range(0..4);
                let b = (a + 1 + rng.gen_range(0..3)) % 4;
                let s1 = SYLLABLES[a][i % SYLLABLES[a].len()];
                let s2 = SYLLABLES[b][(i / 7) % SYLLABLES[b].len()];
                capitalize(&format!("{s1}{s2}"))
            })
            .collect();

        let gen_split = |n: usize, rng: &mut ChaCha8Rng| -> Vec<NerSentence> {
            (0..n)
                .map(|_| {
                    generate_sentence(
                        spec,
                        &scheme,
                        &background,
                        &gaz_sampler,
                        &gazetteers,
                        &ambiguous,
                        rng,
                    )
                })
                .collect()
        };
        let train = gen_split(spec.n_train, &mut rng);
        let dev = gen_split(spec.n_dev, &mut rng);
        let test = gen_split(spec.n_test, &mut rng);
        Self {
            name: spec.name.clone(),
            scheme,
            train,
            dev,
            test,
        }
    }

    /// Table 4 statistics for all three splits.
    pub fn stats(&self) -> Vec<NerSplitStats> {
        [
            ("Train", &self.train),
            ("Dev", &self.dev),
            ("Test", &self.test),
        ]
        .into_iter()
        .map(|(split, sents)| NerSplitStats {
            split: split.to_string(),
            n_sentences: sents.len(),
            n_tokens: sents.iter().map(|s| s.tokens.len()).sum(),
            n_entities: sents
                .iter()
                .map(|s| self.scheme.decode_spans(&s.tags).len())
                .sum(),
        })
        .collect()
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

fn make_name(syllables: &[&str], salt: usize, rng: &mut ChaCha8Rng) -> String {
    let n_syl = 2 + rng.gen_range(0..2);
    let mut name = String::new();
    for k in 0..n_syl {
        name.push_str(
            syllables[(salt * 3 + k * 5 + rng.gen_range(0..syllables.len())) % syllables.len()],
        );
    }
    capitalize(&name)
}

#[allow(clippy::too_many_arguments)]
fn generate_sentence(
    spec: &NerSpec,
    scheme: &TagScheme,
    background: &Zipf,
    gaz_sampler: &Zipf,
    gazetteers: &[Vec<String>],
    ambiguous: &[String],
    rng: &mut ChaCha8Rng,
) -> NerSentence {
    let target_len = {
        let u = rng.gen::<f64>() + rng.gen::<f64>();
        ((spec.mean_len * u).round() as usize).clamp(2, spec.max_len)
    };
    let mut tokens = Vec::with_capacity(target_len + 2);
    let mut tags: Vec<u16> = Vec::with_capacity(target_len + 2);
    while tokens.len() < target_len {
        if rng.gen::<f64>() < spec.entity_prob {
            let ty = rng.gen_range(0..4usize);
            // Optional context trigger before the mention.
            if rng.gen::<f64>() < spec.trigger_reliability {
                tokens.push(TRIGGERS[ty].to_string());
                tags.push(scheme.outside());
            }
            let span_len =
                1 + usize::from(rng.gen::<f64>() < 0.35) + usize::from(rng.gen::<f64>() < 0.1);
            for t in scheme.encode_span(span_len, ty) {
                let idx = gaz_sampler.sample(rng);
                let mut word = if rng.gen::<f64>() < spec.gazetteer_ambiguity {
                    ambiguous[idx].clone()
                } else {
                    gazetteers[ty][idx].clone()
                };
                if rng.gen::<f64>() < spec.case_noise {
                    word = word.to_lowercase();
                }
                tokens.push(word);
                tags.push(t);
            }
        } else if rng.gen::<f64>() < spec.distractor_prob {
            // Capitalized entity-lookalike tagged O.
            let ty = rng.gen_range(0..4usize);
            let idx = gaz_sampler.sample(rng);
            tokens.push(if rng.gen::<f64>() < 0.5 {
                ambiguous[idx].clone()
            } else {
                gazetteers[ty][idx].clone()
            });
            tags.push(scheme.outside());
        } else {
            tokens.push(format!("w{}", background.sample(rng)));
            tags.push(scheme.outside());
        }
    }
    NerSentence { tokens, tags }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = NerSpec::tiny(30, 5);
        let a = NerDataset::generate(&spec);
        let b = NerDataset::generate(&spec);
        assert_eq!(a.train[0].tokens, b.train[0].tokens);
        assert_eq!(a.train[0].tags, b.train[0].tags);
    }

    #[test]
    fn tags_align_with_tokens_and_are_valid() {
        let d = NerDataset::generate(&NerSpec::tiny(50, 6));
        let n_labels = d.scheme.n_labels() as u16;
        for s in d.train.iter().chain(&d.dev).chain(&d.test) {
            assert_eq!(s.tokens.len(), s.tags.len());
            assert!(!s.tokens.is_empty());
            for &t in &s.tags {
                assert!(t < n_labels);
            }
        }
    }

    #[test]
    fn spans_are_well_formed() {
        let d = NerDataset::generate(&NerSpec::tiny(50, 7));
        for s in &d.train {
            // Re-encoding the decoded spans must reproduce the tags.
            let spans = d.scheme.decode_spans(&s.tags);
            let mut rebuilt = vec![0u16; s.tags.len()];
            for (start, end, ty) in spans {
                for (off, t) in d
                    .scheme
                    .encode_span(end - start + 1, ty)
                    .into_iter()
                    .enumerate()
                {
                    rebuilt[start + off] = t;
                }
            }
            assert_eq!(rebuilt, s.tags, "tags not round-trippable: {:?}", s.tokens);
        }
    }

    #[test]
    fn entities_exist_in_each_split() {
        let d = NerDataset::generate(&NerSpec::tiny(60, 8));
        for stats in d.stats() {
            assert!(
                stats.n_entities > 0,
                "{} split has no entities",
                stats.split
            );
            assert!(stats.n_tokens >= stats.n_sentences * 2);
        }
    }

    #[test]
    fn preset_sizes_match_table4() {
        let spec = NerSpec::conll2003_english();
        assert_eq!(spec.n_train, 14_987);
        assert_eq!(spec.n_dev, 3_466);
        assert_eq!(spec.n_test, 3_684);
        let es = NerSpec::conll2002_spanish();
        assert_eq!((es.n_train, es.n_dev, es.n_test), (8_322, 1_914, 1_516));
        let nl = NerSpec::conll2002_dutch();
        assert_eq!((nl.n_train, nl.n_dev, nl.n_test), (15_806, 2_895, 5_195));
    }

    #[test]
    fn difficulty_knobs_ordered() {
        // Dutch must be configured harder than Spanish, Spanish harder
        // than English (more ambiguity, less reliable triggers).
        let en = NerSpec::conll2003_english();
        let es = NerSpec::conll2002_spanish();
        let nl = NerSpec::conll2002_dutch();
        assert!(en.gazetteer_ambiguity < es.gazetteer_ambiguity);
        assert!(es.gazetteer_ambiguity < nl.gazetteer_ambiguity);
        assert!(en.trigger_reliability > es.trigger_reliability);
        assert!(es.trigger_reliability > nl.trigger_reliability);
        assert!(en.distractor_prob < es.distractor_prob);
        assert!(es.distractor_prob < nl.distractor_prob);
    }

    #[test]
    fn entity_tokens_are_capitalized_mostly() {
        let d = NerDataset::generate(&NerSpec::tiny(80, 9));
        let mut cap = 0usize;
        let mut total = 0usize;
        for s in &d.train {
            for (tok, &tag) in s.tokens.iter().zip(&s.tags) {
                if tag != 0 {
                    total += 1;
                    if tok.chars().next().is_some_and(|c| c.is_uppercase()) {
                        cap += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(cap as f64 / total as f64 > 0.8, "{cap}/{total} capitalized");
    }
}

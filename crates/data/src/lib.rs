//! # histal-data — synthetic experiment corpora
//!
//! The paper evaluates on MR, SST-2, Subj, TREC (text classification,
//! Table 3) and CoNLL-2003 English / CoNLL-2002 Spanish & Dutch (NER,
//! Table 4). Those corpora cannot ship with this reproduction, so this
//! crate generates *seeded synthetic equivalents*:
//!
//! * the same sizes, class counts, split shapes, and sentence-length
//!   scales as the published statistics tables;
//! * a latent topic/gazetteer process that plants class- and
//!   entity-indicative tokens with controllable noise and ambiguity, so
//!   uncertainty-based query strategies have real signal to exploit and
//!   strategy quality differences are expressible;
//! * per-dataset difficulty knobs calibrated so the model-performance
//!   ordering of the paper (e.g. CoNLL-EN F1 > Spanish > Dutch under a
//!   small label budget) is preserved.
//!
//! Everything is deterministic given the dataset seed.

pub mod conll;
pub mod ltrgen;
pub mod ner;
pub mod noise;
pub mod oocpool;
pub mod splits;
pub mod textclf;
pub mod zipf;

pub use conll::{parse_conll, read_conll, write_conll, ConllError};
pub use ltrgen::{LtrDataset, LtrQuery, LtrSpec};
pub use ner::{NerDataset, NerSpec};
pub use noise::{corrupt_labels, drop_entity_tags};
pub use oocpool::{synth_pool, synth_row, write_synth_pool, MappedPool, PoolWriter};
pub use splits::{cv_folds, stratified_split, train_test_split};
pub use textclf::{TextDataset, TextSpec};
pub use zipf::Zipf;

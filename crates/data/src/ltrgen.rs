//! Synthetic learning-to-rank corpora.
//!
//! The paper's introduction lists document ranking in information
//! retrieval among active learning's applications (citing Silva et al.
//! 2016, Li & de Rijke 2017, Long et al. 2015). This generator produces
//! query groups whose graded relevance is a noisy monotone function of a
//! few informative features buried among distractors — enough structure
//! for a ranker to learn and for ranking-uncertainty AL to beat random
//! query annotation.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Generation parameters for a synthetic ranking dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LtrSpec {
    /// Number of queries.
    pub n_queries: usize,
    /// Documents per query (uniform in `docs_per_query ± 2`, min 2).
    pub docs_per_query: usize,
    /// Total feature width.
    pub n_features: usize,
    /// How many leading features carry relevance signal.
    pub n_informative: usize,
    /// Standard deviation of the noise added to the latent relevance.
    pub noise: f64,
    /// Number of relevance grades (labels are `0..n_grades`).
    pub n_grades: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for LtrSpec {
    fn default() -> Self {
        Self {
            n_queries: 400,
            docs_per_query: 10,
            n_features: 12,
            n_informative: 4,
            noise: 0.25,
            n_grades: 4,
            seed: 0x17B,
        }
    }
}

/// One query: documents (feature rows) and their graded relevance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LtrQuery {
    /// One feature vector per document.
    pub features: Vec<Vec<f64>>,
    /// Graded relevance per document (`0..n_grades`).
    pub relevance: Vec<f64>,
}

/// A generated ranking dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LtrDataset {
    pub queries: Vec<LtrQuery>,
    /// The latent feature weights relevance was derived from (ground
    /// truth for diagnostics).
    pub latent_weights: Vec<f64>,
}

impl LtrDataset {
    /// Generate deterministically from `spec`.
    ///
    /// # Panics
    /// Panics on degenerate specs (no queries, no informative features,
    /// fewer than two grades).
    pub fn generate(spec: &LtrSpec) -> Self {
        assert!(spec.n_queries > 0, "need at least one query");
        assert!(spec.n_informative > 0 && spec.n_informative <= spec.n_features);
        assert!(spec.n_grades >= 2, "need at least two relevance grades");
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        // Fixed latent weights on the informative prefix.
        let latent_weights: Vec<f64> = (0..spec.n_features)
            .map(|i| {
                if i < spec.n_informative {
                    rng.gen_range(0.5..1.5)
                } else {
                    0.0
                }
            })
            .collect();
        let queries = (0..spec.n_queries)
            .map(|_| {
                let n_docs =
                    (spec.docs_per_query as i64 + rng.gen_range(-2i64..=2)).max(2) as usize;
                let mut features = Vec::with_capacity(n_docs);
                let mut latent = Vec::with_capacity(n_docs);
                for _ in 0..n_docs {
                    let row: Vec<f64> = (0..spec.n_features).map(|_| rng.gen::<f64>()).collect();
                    let mut score: f64 = row.iter().zip(&latent_weights).map(|(x, w)| x * w).sum();
                    // Approximately normal noise via sum of uniforms.
                    let gauss: f64 = (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() - 3.0;
                    score += spec.noise * gauss;
                    features.push(row);
                    latent.push(score);
                }
                // Grade by within-query quantile of the latent score, so
                // every query has a spread of grades.
                let mut order: Vec<usize> = (0..n_docs).collect();
                order.sort_by(|&a, &b| {
                    latent[a]
                        .partial_cmp(&latent[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut relevance = vec![0.0; n_docs];
                for (rank, &doc) in order.iter().enumerate() {
                    relevance[doc] = ((rank * spec.n_grades) / n_docs) as f64;
                }
                LtrQuery {
                    features,
                    relevance,
                }
            })
            .collect();
        Self {
            queries,
            latent_weights,
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shapes() {
        let spec = LtrSpec {
            n_queries: 50,
            ..Default::default()
        };
        let d = LtrDataset::generate(&spec);
        assert_eq!(d.len(), 50);
        for q in &d.queries {
            assert_eq!(q.features.len(), q.relevance.len());
            assert!(q.features.len() >= 2);
            for row in &q.features {
                assert_eq!(row.len(), spec.n_features);
            }
            for &r in &q.relevance {
                assert!(r >= 0.0 && r < spec.n_grades as f64);
            }
        }
    }

    #[test]
    fn deterministic() {
        let spec = LtrSpec {
            n_queries: 20,
            ..Default::default()
        };
        let a = LtrDataset::generate(&spec);
        let b = LtrDataset::generate(&spec);
        assert_eq!(a.queries[0].relevance, b.queries[0].relevance);
    }

    #[test]
    fn every_query_has_grade_spread() {
        let d = LtrDataset::generate(&LtrSpec {
            n_queries: 30,
            ..Default::default()
        });
        for q in &d.queries {
            let max = q
                .relevance
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            let min = q.relevance.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(max > min, "degenerate query grades: {:?}", q.relevance);
        }
    }

    #[test]
    fn informative_features_drive_relevance() {
        // Correlation between feature 0 and relevance must be positive
        // and much larger than for a distractor feature.
        let d = LtrDataset::generate(&LtrSpec {
            n_queries: 200,
            noise: 0.1,
            ..Default::default()
        });
        let corr = |fi: usize| -> f64 {
            let (mut xs, mut ys) = (Vec::new(), Vec::new());
            for q in &d.queries {
                for (row, &r) in q.features.iter().zip(&q.relevance) {
                    xs.push(row[fi]);
                    ys.push(r);
                }
            }
            let n = xs.len() as f64;
            let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let sx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>().sqrt();
            let sy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum::<f64>().sqrt();
            cov / (sx * sy)
        };
        assert!(corr(0) > 0.15, "informative corr {}", corr(0));
        assert!(corr(0) > corr(11).abs() * 3.0);
    }

    #[test]
    #[should_panic(expected = "two relevance grades")]
    fn one_grade_panics() {
        let _ = LtrDataset::generate(&LtrSpec {
            n_grades: 1,
            ..Default::default()
        });
    }
}

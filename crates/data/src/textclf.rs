//! Synthetic text-classification corpora (Table 3 stand-ins).
//!
//! Documents are token sequences from a three-part vocabulary:
//!
//! * a Zipf-distributed **background** vocabulary (no class signal),
//! * per-class **indicative** inventories (the signal uncertainty
//!   sampling must find),
//! * a shared **ambiguous** inventory drawn by every class (the source of
//!   genuinely hard samples that sit near the decision boundary).
//!
//! Per-token noise flips some indicative draws to a *wrong* class's
//! inventory, so no document is trivially separable. The `signal_prob` /
//! `noise_prob` / `ambiguity` knobs calibrate task difficulty per dataset
//! so learning curves land in the paper's accuracy ranges.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::zipf::Zipf;

/// Generation parameters for one synthetic text-classification dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextSpec {
    /// Dataset display name.
    pub name: String,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of documents.
    pub n_samples: usize,
    /// Maximum sentence length (Table 3 `maxlen`).
    pub max_len: usize,
    /// Mean sentence length.
    pub mean_len: f64,
    /// Background (neutral) vocabulary size.
    pub background_vocab: usize,
    /// Indicative token inventory size per class.
    pub indicative_per_class: usize,
    /// Shared ambiguous inventory size.
    pub ambiguous_vocab: usize,
    /// Per-token probability of drawing from an indicative inventory.
    pub signal_prob: f64,
    /// Probability an indicative draw comes from a *wrong* class.
    pub noise_prob: f64,
    /// Probability an indicative draw comes from the ambiguous pool.
    pub ambiguity: f64,
    /// Optional class priors (must sum to ~1 and have `n_classes`
    /// entries); `None` means balanced round-robin assignment.
    pub class_priors: Option<Vec<f64>>,
    /// Generation seed.
    pub seed: u64,
}

impl TextSpec {
    /// Set explicit class priors (imbalanced generation).
    ///
    /// # Panics
    /// Panics if the priors don't match `n_classes` or don't sum to ≈ 1.
    pub fn with_class_priors(mut self, priors: Vec<f64>) -> Self {
        assert_eq!(priors.len(), self.n_classes, "one prior per class");
        let sum: f64 = priors.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "priors must sum to 1, got {sum}");
        assert!(
            priors.iter().all(|&p| p >= 0.0),
            "priors must be non-negative"
        );
        self.class_priors = Some(priors);
        self
    }
}

impl TextSpec {
    /// MR analogue: 2 classes, 10 662 docs, maxlen 56 (Pang & Lee 2005).
    pub fn mr() -> Self {
        Self {
            name: "MR".into(),
            n_classes: 2,
            n_samples: 10_662,
            max_len: 56,
            mean_len: 21.0,
            background_vocab: 24_000,
            indicative_per_class: 400,
            ambiguous_vocab: 300,
            signal_prob: 0.32,
            noise_prob: 0.18,
            ambiguity: 0.28,
            class_priors: None,
            seed: 0x4d52,
        }
    }

    /// SST-2 analogue: 2 classes, 9 613 docs, maxlen 53 (Socher et al. 2013).
    pub fn sst2() -> Self {
        Self {
            name: "SST-2".into(),
            n_classes: 2,
            n_samples: 9_613,
            max_len: 53,
            mean_len: 19.0,
            background_vocab: 20_000,
            indicative_per_class: 400,
            ambiguous_vocab: 250,
            signal_prob: 0.34,
            noise_prob: 0.14,
            ambiguity: 0.22,
            class_priors: None,
            seed: 0x5354,
        }
    }

    /// Subj analogue: 2 classes, 10 000 docs, maxlen 23 (Pang & Lee 2004).
    /// Used to train the LHS ranker.
    pub fn subj() -> Self {
        Self {
            name: "Subj".into(),
            n_classes: 2,
            n_samples: 10_000,
            max_len: 23,
            mean_len: 12.0,
            background_vocab: 27_000,
            indicative_per_class: 350,
            ambiguous_vocab: 250,
            signal_prob: 0.34,
            noise_prob: 0.16,
            ambiguity: 0.24,
            class_priors: None,
            seed: 0x5542,
        }
    }

    /// TREC analogue: 6 classes, 5 952 docs, maxlen 37 (Li & Roth 2002).
    pub fn trec() -> Self {
        Self {
            name: "TREC".into(),
            n_classes: 6,
            n_samples: 5_952,
            max_len: 37,
            mean_len: 10.0,
            background_vocab: 11_000,
            indicative_per_class: 180,
            ambiguous_vocab: 200,
            signal_prob: 0.48,
            noise_prob: 0.07,
            ambiguity: 0.14,
            class_priors: None,
            seed: 0x5452,
        }
    }

    /// Registry lookup: the named builder above, or `None` for an
    /// unrecognized name. Names are matched case-insensitively and cover
    /// the common aliases (`sst-2` for `sst2`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "mr" => Some(Self::mr()),
            "sst2" | "sst-2" => Some(Self::sst2()),
            "subj" => Some(Self::subj()),
            "trec" => Some(Self::trec()),
            _ => None,
        }
    }

    /// Canonical names [`Self::by_name`] accepts (for error messages).
    pub const NAMES: &'static [&'static str] = &["mr", "sst2", "subj", "trec"];

    /// Scaled-down variant for fast tests and examples: same process,
    /// `n` documents, small vocabulary.
    pub fn tiny(n_classes: usize, n: usize, seed: u64) -> Self {
        Self {
            name: format!("tiny-{n_classes}c"),
            n_classes,
            n_samples: n,
            max_len: 20,
            mean_len: 9.0,
            background_vocab: 500,
            indicative_per_class: 40,
            ambiguous_vocab: 30,
            signal_prob: 0.4,
            noise_prob: 0.12,
            ambiguity: 0.2,
            class_priors: None,
            seed,
        }
    }
}

/// Statistics in the shape of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextStats {
    pub name: String,
    pub n_classes: usize,
    pub max_len: usize,
    pub n: usize,
    /// Distinct token types observed.
    pub vocab: usize,
    /// Types observed at least twice — the analogue of "words with a
    /// pre-trained embedding" (rare words lack embeddings in practice).
    pub vocab_pre: usize,
}

/// A generated text-classification dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextDataset {
    /// Display name.
    pub name: String,
    /// Number of classes.
    pub n_classes: usize,
    /// Tokenized documents.
    pub docs: Vec<Vec<String>>,
    /// Gold class per document.
    pub labels: Vec<usize>,
}

impl TextDataset {
    /// Generate the dataset described by `spec` (deterministic).
    pub fn generate(spec: &TextSpec) -> Self {
        assert!(spec.n_classes >= 2, "need at least two classes");
        assert!(spec.n_samples > 0, "need at least one document");
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let background = Zipf::new(spec.background_vocab, 1.07);
        let indicative = Zipf::new(spec.indicative_per_class, 0.9);
        let ambiguous = Zipf::new(spec.ambiguous_vocab, 0.9);
        let mut docs = Vec::with_capacity(spec.n_samples);
        let mut labels = Vec::with_capacity(spec.n_samples);
        // Cumulative priors for imbalanced sampling.
        let cum_priors: Option<Vec<f64>> = spec.class_priors.as_ref().map(|p| {
            let mut acc = 0.0;
            p.iter()
                .map(|&x| {
                    acc += x;
                    acc
                })
                .collect()
        });
        for i in 0..spec.n_samples {
            let class = match &cum_priors {
                None => i % spec.n_classes, // balanced classes
                Some(cum) => {
                    let u: f64 = rng.gen();
                    cum.partition_point(|&c| c < u).min(spec.n_classes - 1)
                }
            };
            let len = sample_len(&mut rng, spec.mean_len, spec.max_len);
            let mut tokens = Vec::with_capacity(len);
            for _ in 0..len {
                let u: f64 = rng.gen();
                if u < spec.signal_prob {
                    let v: f64 = rng.gen();
                    if v < spec.ambiguity {
                        tokens.push(format!("amb{}", ambiguous.sample(&mut rng)));
                    } else {
                        let src_class = if v < spec.ambiguity + spec.noise_prob {
                            // Wrong-class noise.
                            let mut c = rng.gen_range(0..spec.n_classes);
                            if c == class {
                                c = (c + 1) % spec.n_classes;
                            }
                            c
                        } else {
                            class
                        };
                        tokens.push(format!("c{src_class}_{}", indicative.sample(&mut rng)));
                    }
                } else {
                    tokens.push(format!("w{}", background.sample(&mut rng)));
                }
            }
            docs.push(tokens);
            labels.push(class);
        }
        Self {
            name: spec.name.clone(),
            n_classes: spec.n_classes,
            docs,
            labels,
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Compute the Table 3 statistics row of this dataset.
    pub fn stats(&self) -> TextStats {
        let mut counts: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        let mut max_len = 0;
        for doc in &self.docs {
            max_len = max_len.max(doc.len());
            for t in doc {
                *counts.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let vocab = counts.len();
        let vocab_pre = counts.values().filter(|&&c| c >= 2).count();
        TextStats {
            name: self.name.clone(),
            n_classes: self.n_classes,
            max_len,
            n: self.docs.len(),
            vocab,
            vocab_pre,
        }
    }
}

fn sample_len<R: Rng + ?Sized>(rng: &mut R, mean: f64, max_len: usize) -> usize {
    let max_len = max_len.max(3);
    // Mostly triangular around the mean, with a small uniform long tail so
    // the observed maximum approaches the configured maxlen (real review
    // corpora are similarly long-tailed).
    let len = if rng.gen::<f64>() < 0.02 {
        rng.gen_range(mean.min(max_len as f64) as usize..=max_len)
    } else {
        let u = rng.gen::<f64>() + rng.gen::<f64>(); // mean 1.0
        (mean * u).round() as usize
    };
    len.clamp(3, max_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = TextSpec::tiny(2, 50, 9);
        let a = TextDataset::generate(&spec);
        let b = TextDataset::generate(&spec);
        assert_eq!(a.docs, b.docs);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn classes_are_balanced() {
        let d = TextDataset::generate(&TextSpec::tiny(3, 300, 1));
        for c in 0..3 {
            assert_eq!(d.labels.iter().filter(|&&l| l == c).count(), 100);
        }
    }

    #[test]
    fn lengths_respect_bounds() {
        let spec = TextSpec::tiny(2, 200, 2);
        let d = TextDataset::generate(&spec);
        for doc in &d.docs {
            assert!(doc.len() >= 3 && doc.len() <= spec.max_len);
        }
    }

    #[test]
    fn indicative_tokens_correlate_with_class() {
        let d = TextDataset::generate(&TextSpec::tiny(2, 400, 3));
        // Count "c0_*" tokens in each class's documents.
        let mut c0_in_class0 = 0usize;
        let mut c0_in_class1 = 0usize;
        for (doc, &label) in d.docs.iter().zip(&d.labels) {
            let n = doc.iter().filter(|t| t.starts_with("c0_")).count();
            if label == 0 {
                c0_in_class0 += n;
            } else {
                c0_in_class1 += n;
            }
        }
        assert!(
            c0_in_class0 > 2 * c0_in_class1,
            "class-0 tokens must concentrate in class 0: {c0_in_class0} vs {c0_in_class1}"
        );
    }

    #[test]
    fn stats_match_spec_shape() {
        let spec = TextSpec::trec();
        let d = TextDataset::generate(&spec);
        let s = d.stats();
        assert_eq!(s.n, 5_952);
        assert_eq!(s.n_classes, 6);
        assert!(s.max_len <= spec.max_len);
        assert!(s.vocab > 1_000, "vocab too small: {}", s.vocab);
        assert!(s.vocab_pre <= s.vocab);
    }

    #[test]
    fn presets_have_table3_sizes() {
        assert_eq!(TextDataset::generate(&TextSpec::mr()).len(), 10_662);
        assert_eq!(TextDataset::generate(&TextSpec::sst2()).len(), 9_613);
        assert_eq!(TextDataset::generate(&TextSpec::subj()).len(), 10_000);
    }

    #[test]
    fn class_priors_skew_distribution() {
        let spec = TextSpec::tiny(2, 2_000, 5).with_class_priors(vec![0.9, 0.1]);
        let d = TextDataset::generate(&spec);
        let c0 = d.labels.iter().filter(|&&l| l == 0).count() as f64 / 2_000.0;
        assert!((c0 - 0.9).abs() < 0.03, "class-0 share {c0}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_priors_panic() {
        let _ = TextSpec::tiny(2, 10, 0).with_class_priors(vec![0.9, 0.3]);
    }

    #[test]
    #[should_panic(expected = "one prior per class")]
    fn wrong_prior_count_panics() {
        let _ = TextSpec::tiny(3, 10, 0).with_class_priors(vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn one_class_panics() {
        let mut spec = TextSpec::tiny(2, 10, 0);
        spec.n_classes = 1;
        let _ = TextDataset::generate(&spec);
    }
}

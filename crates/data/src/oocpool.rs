//! Out-of-core pool representations: stream a million-sample sparse pool
//! to disk once, then memory-map it and serve rows zero-copy.
//!
//! The resident [`PoolGeometry`](histal_text::PoolGeometry) holds the
//! whole CSR arena in RAM — fine at the paper's ≤10k pools, hostile at
//! 1M+ rows × hundreds of nnz. [`PoolWriter`] streams rows to a flat
//! file in one pass (offsets and norms are backfilled on
//! [`PoolWriter::finish`], so nothing is buffered beyond one row), and
//! [`MappedPool`] maps the file read-only and implements
//! [`Geometry`], so the similarity combinators and the LSH index run
//! unchanged over disk-backed rows with the OS paging in only the
//! buckets actually touched.
//!
//! # File layout (`HPOOL1`, little-endian)
//!
//! ```text
//! [ 0..8 )   magic  b"HPOOL1\0\0"
//! [ 8..16)   n      u64   row count
//! [16..24)   dim    u64   one past the largest stored index
//! [24..32)   nnz    u64   total stored entries
//! [32..32 + 8(n+1))        row entry-offsets, u64 each (offsets[0] = 0)
//! [.. + 8n)                row norms, f64 each
//! [.. + 8·nnz)             row payloads, per row: [u32 indices][f32 values]
//! ```
//!
//! Each row's payload is `8 · count` bytes (`count` u32 indices then
//! `count` f32 values), so every section — and every row start — stays
//! 4-byte aligned without padding bytes, which is what lets the mapped
//! slices be reinterpreted in place.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use histal_text::{Geometry, SparseVec};

const MAGIC: [u8; 8] = *b"HPOOL1\0\0";
const HEADER_LEN: u64 = 32;

/// Streaming writer for the `HPOOL1` format.
///
/// Rows are appended with [`Self::push`] (or [`Self::push_pairs`]) and
/// written straight through a buffered file handle; the offset and norm
/// tables accumulate in memory (16 bytes per row — the only resident
/// state) and are backfilled by [`Self::finish`].
pub struct PoolWriter {
    file: BufWriter<File>,
    offsets: Vec<u64>,
    norms: Vec<f64>,
    dim: u64,
    nnz: u64,
    expected_rows: usize,
}

impl PoolWriter {
    /// Create `path`, reserving header space for `expected_rows` rows.
    pub fn create(path: &Path, expected_rows: usize) -> io::Result<Self> {
        let mut file = BufWriter::new(File::create(path)?);
        // Seek past the header + offset/norm tables; payload streams
        // from here and the tables are backfilled in `finish`.
        let payload_start = HEADER_LEN + 8 * (expected_rows as u64 + 1) + 8 * expected_rows as u64;
        file.seek(SeekFrom::Start(payload_start))?;
        let mut offsets = Vec::with_capacity(expected_rows + 1);
        offsets.push(0);
        Ok(Self {
            file,
            offsets,
            norms: Vec::with_capacity(expected_rows),
            dim: 0,
            nnz: 0,
            expected_rows,
        })
    }

    /// Append one row. `indices` must be strictly ascending; `norm` is
    /// the row's Euclidean norm exactly as [`SparseVec::norm`] computes
    /// it (the bit-identity contract rides on the caller not improvising
    /// here — use [`Self::push_pairs`] to get it right automatically).
    pub fn push(&mut self, indices: &[u32], values: &[f32], norm: f64) -> io::Result<()> {
        assert_eq!(indices.len(), values.len(), "row slices misaligned");
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "unsorted row");
        for &i in indices {
            self.file.write_all(&i.to_le_bytes())?;
            self.dim = self.dim.max(i as u64 + 1);
        }
        for &v in values {
            self.file.write_all(&v.to_le_bytes())?;
        }
        self.nnz += indices.len() as u64;
        self.offsets.push(self.nnz);
        self.norms.push(norm);
        Ok(())
    }

    /// Append one row from a [`SparseVec`], taking the cached norm.
    pub fn push_vec(&mut self, rep: &SparseVec) -> io::Result<()> {
        self.push(rep.indices(), rep.values(), rep.norm())
    }

    /// Backfill the header and tables and flush. Returns the row count.
    pub fn finish(mut self) -> io::Result<usize> {
        let n = self.norms.len();
        assert_eq!(
            n, self.expected_rows,
            "PoolWriter::create reserved space for {} rows, got {n}",
            self.expected_rows
        );
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&MAGIC)?;
        self.file.write_all(&(n as u64).to_le_bytes())?;
        self.file.write_all(&self.dim.to_le_bytes())?;
        self.file.write_all(&self.nnz.to_le_bytes())?;
        for &o in &self.offsets {
            self.file.write_all(&o.to_le_bytes())?;
        }
        for &m in &self.norms {
            self.file.write_all(&m.to_le_bytes())?;
        }
        self.file.flush()?;
        Ok(n)
    }
}

/// Read-only pool backed by a mapped (or, on non-unix hosts, heap-read)
/// `HPOOL1` file. Implements [`Geometry`], so everything downstream of
/// the trait — combinators, LSH build, scatter sweeps — is oblivious to
/// the rows living on disk.
pub struct MappedPool {
    map: Mapping,
    n: usize,
    dim: usize,
    nnz: usize,
}

enum Mapping {
    #[cfg(unix)]
    Mmap {
        ptr: *const u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

// The mapping is read-only for its whole lifetime.
unsafe impl Send for MappedPool {}
unsafe impl Sync for MappedPool {}

#[cfg(unix)]
mod sys {
    //! Minimal raw `mmap` binding — the workspace vendors no libc crate,
    //! and these two calls are all the out-of-core pool needs.
    use std::os::unix::io::RawFd;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: RawFd,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

impl Drop for MappedPool {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Mapping::Mmap { ptr, len } = self.map {
            // Mapped by us in `open`, never handed out by-value.
            unsafe {
                sys::munmap(ptr as *mut core::ffi::c_void, len);
            }
        }
    }
}

impl MappedPool {
    /// Map `path` read-only. Falls back to reading the file onto the
    /// heap when `mmap` is unavailable or fails, so callers never branch.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        let map = match Self::map_file(&file, len) {
            Some(m) => m,
            None => {
                let mut buf = Vec::with_capacity(len);
                file.read_to_end(&mut buf)?;
                Mapping::Heap(buf)
            }
        };
        let pool = Self {
            map,
            n: 0,
            dim: 0,
            nnz: 0,
        };
        pool.validate(len)
    }

    #[cfg(unix)]
    fn map_file(file: &File, len: usize) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            None
        } else {
            Some(Mapping::Mmap {
                ptr: ptr as *const u8,
                len,
            })
        }
    }

    #[cfg(not(unix))]
    fn map_file(_file: &File, _len: usize) -> Option<Mapping> {
        None
    }

    fn validate(mut self, file_len: usize) -> io::Result<Self> {
        let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let bytes = self.bytes();
        if bytes.len() != file_len || file_len < HEADER_LEN as usize {
            return Err(err("pool file truncated"));
        }
        if bytes[..8] != MAGIC {
            return Err(err("not an HPOOL1 file"));
        }
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap()) as usize;
        let (n, dim, nnz) = (u64_at(8), u64_at(16), u64_at(24));
        let expected = HEADER_LEN as usize + 8 * (n + 1) + 8 * n + 8 * nnz;
        if file_len != expected {
            return Err(err("pool file length disagrees with its header"));
        }
        self.n = n;
        self.dim = dim;
        self.nnz = nnz;
        // Offsets must be monotone and end at nnz, or row slicing would
        // read out of bounds.
        let offs = self.offsets();
        if offs[0] != 0 || offs[n] as usize != nnz || offs.windows(2).any(|w| w[0] > w[1]) {
            return Err(err("pool file offset table is corrupt"));
        }
        Ok(self)
    }

    fn bytes(&self) -> &[u8] {
        match &self.map {
            #[cfg(unix)]
            Mapping::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Mapping::Heap(v) => v.as_slice(),
        }
    }

    fn offsets(&self) -> &[u64] {
        let start = HEADER_LEN as usize;
        let bytes = &self.bytes()[start..start + 8 * (self.n + 1)];
        // Section start is 8-aligned by construction; u64 requires 8.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, self.n + 1) }
    }

    fn norms_slice(&self) -> &[f64] {
        let start = HEADER_LEN as usize + 8 * (self.n + 1);
        let bytes = &self.bytes()[start..start + 8 * self.n];
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, self.n) }
    }

    fn payload_start(&self) -> usize {
        HEADER_LEN as usize + 8 * (self.n + 1) + 8 * self.n
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }
}

impl Geometry for MappedPool {
    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn norm(&self, i: usize) -> f64 {
        self.norms_slice()[i]
    }

    fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let offs = self.offsets();
        let (lo, hi) = (offs[i] as usize, offs[i + 1] as usize);
        let count = hi - lo;
        // Row payload: `count` u32 indices then `count` f32 values,
        // starting 8·lo bytes into the payload section (4-aligned).
        let base = self.payload_start() + 8 * lo;
        let bytes = self.bytes();
        let idx = &bytes[base..base + 4 * count];
        let val = &bytes[base + 4 * count..base + 8 * count];
        unsafe {
            (
                std::slice::from_raw_parts(idx.as_ptr() as *const u32, count),
                std::slice::from_raw_parts(val.as_ptr() as *const f32, count),
            )
        }
    }
}

/// Deterministic clustered sparse row for synthetic scaling pools: row
/// `i` of a `clusters`-cluster pool with ~`nnz_per_row` entries drawn
/// from its cluster's feature band plus a few global features.
///
/// Row generation is independent per row (its own
/// [`mix_seed`](histal_core::driver::mix_seed)-style stream), so the
/// resident and streamed builders below produce identical rows without
/// sharing RNG state — and a 1M-row pool can be written without holding
/// any of it in memory.
pub fn synth_row(seed: u64, i: usize, clusters: usize, nnz_per_row: usize) -> SparseVec {
    let mut h = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    let mut rng = ChaCha8Rng::seed_from_u64(h);
    let cluster = i % clusters.max(1);
    // Each cluster owns a 4096-feature band; 1/4 of the row mass comes
    // from a shared global band so clusters overlap a little.
    let band = 4096u32;
    let cluster_base = 1 + cluster as u32 * band;
    let global_base = 1 + clusters as u32 * band;
    let mut pairs: Vec<(u32, f32)> = Vec::with_capacity(nnz_per_row);
    for k in 0..nnz_per_row {
        let (base, width) = if k % 4 == 3 {
            (global_base, band)
        } else {
            (cluster_base, band)
        };
        let feat = base + rng.gen_range(0..width);
        let weight = 0.25 + rng.gen::<f32>();
        pairs.push((feat, weight));
    }
    SparseVec::from_pairs(pairs)
}

/// Build a resident synthetic pool: `n` rows of [`synth_row`].
pub fn synth_pool(seed: u64, n: usize, clusters: usize, nnz_per_row: usize) -> Vec<SparseVec> {
    (0..n)
        .map(|i| synth_row(seed, i, clusters, nnz_per_row))
        .collect()
}

/// Stream the same synthetic pool to `path` in `HPOOL1` format without
/// materializing it; [`MappedPool::open`] then serves rows identical to
/// the resident [`synth_pool`] build.
pub fn write_synth_pool(
    path: &Path,
    seed: u64,
    n: usize,
    clusters: usize,
    nnz_per_row: usize,
) -> io::Result<usize> {
    let mut w = PoolWriter::create(path, n)?;
    for i in 0..n {
        w.push_vec(&synth_row(seed, i, clusters, nnz_per_row))?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_text::PoolGeometry;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("histal-oocpool-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn mapped_pool_round_trips_rows_and_norms() {
        let path = tmp("roundtrip");
        let reps = synth_pool(7, 200, 4, 24);
        let mut w = PoolWriter::create(&path, reps.len()).unwrap();
        for r in &reps {
            w.push_vec(r).unwrap();
        }
        assert_eq!(w.finish().unwrap(), reps.len());
        let pool = MappedPool::open(&path).unwrap();
        let geom = PoolGeometry::build(&reps);
        assert_eq!(Geometry::len(&pool), geom.len());
        assert_eq!(Geometry::dim(&pool), geom.dim());
        for i in 0..geom.len() {
            assert_eq!(pool.row(i), geom.row(i), "row {i}");
            assert_eq!(
                Geometry::norm(&pool, i).to_bits(),
                geom.norm(i).to_bits(),
                "norm {i}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_cosines_match_resident_bitwise() {
        let path = tmp("cosine");
        let reps = synth_pool(3, 64, 2, 16);
        write_synth_pool(&path, 3, 64, 2, 16).unwrap();
        let pool = MappedPool::open(&path).unwrap();
        let geom = PoolGeometry::build(&reps);
        let mut dense = Vec::new();
        for a in 0..8 {
            Geometry::scatter(&pool, a, &mut dense);
            for b in 0..geom.len() {
                assert_eq!(
                    Geometry::cosine(&pool, a, b).to_bits(),
                    geom.cosine(a, b).to_bits(),
                    "cosine {a},{b}"
                );
                assert_eq!(
                    Geometry::cosine_scattered(&pool, &dense, a, b).to_bits(),
                    geom.cosine_scattered(&dense, a, b).to_bits(),
                    "scattered {a},{b}"
                );
            }
            Geometry::unscatter(&pool, a, &mut dense);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_corrupt_files() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"definitely not a pool file").unwrap();
        assert!(MappedPool::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_asserts_row_count() {
        let path = tmp("count");
        let w = PoolWriter::create(&path, 3).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w.finish()));
        assert!(result.is_err(), "finish with 0 of 3 rows must panic");
        let _ = std::fs::remove_file(&path);
    }
}

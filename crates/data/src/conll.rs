//! CoNLL column-format I/O.
//!
//! The synthetic corpora drive the reproduction, but a downstream user
//! with real CoNLL-2002/2003 files should be able to plug them straight
//! in. This module parses and writes the standard format: one token per
//! line (`token<sep>…<sep>tag`, whitespace-separated columns, last
//! column is the tag), blank lines separating sentences, optional
//! `-DOCSTART-` document markers.

use std::io::{BufRead, Write};

use histal_core::tags::TagScheme;

use crate::ner::NerSentence;

/// Errors from CoNLL parsing.
#[derive(Debug)]
pub enum ConllError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A non-blank line had no columns.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ConllError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "CoNLL I/O error: {e}"),
            Self::MalformedLine { line } => write!(f, "malformed CoNLL line {line}"),
        }
    }
}

impl std::error::Error for ConllError {}

impl From<std::io::Error> for ConllError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parse CoNLL-format text into sentences. BIO tags in the last column
/// are converted to `scheme`'s BIOES ids (unknown entity types map to
/// `O`). `-DOCSTART-` lines and empty sentences are skipped.
pub fn parse_conll<R: BufRead>(
    reader: R,
    scheme: &TagScheme,
) -> Result<Vec<NerSentence>, ConllError> {
    let mut sentences = Vec::new();
    let mut tokens: Vec<String> = Vec::new();
    let mut bio: Vec<String> = Vec::new();
    let flush = |tokens: &mut Vec<String>, bio: &mut Vec<String>, out: &mut Vec<NerSentence>| {
        if !tokens.is_empty() {
            let bio_refs: Vec<&str> = bio.iter().map(String::as_str).collect();
            out.push(NerSentence {
                tokens: std::mem::take(tokens),
                tags: scheme.bio_to_bioes(&bio_refs),
            });
            bio.clear();
        }
    };
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            flush(&mut tokens, &mut bio, &mut sentences);
            continue;
        }
        let mut cols = trimmed.split_whitespace();
        let token = cols
            .next()
            .ok_or(ConllError::MalformedLine { line: i + 1 })?;
        if token == "-DOCSTART-" {
            flush(&mut tokens, &mut bio, &mut sentences);
            continue;
        }
        let tag = cols.last().unwrap_or("O");
        // Single-column lines carry no tag; treat the token as O.
        let tag = if tag == token { "O" } else { tag };
        tokens.push(token.to_string());
        bio.push(tag.to_string());
    }
    flush(&mut tokens, &mut bio, &mut sentences);
    Ok(sentences)
}

/// Read a CoNLL file from disk.
pub fn read_conll(
    path: &std::path::Path,
    scheme: &TagScheme,
) -> Result<Vec<NerSentence>, ConllError> {
    let f = std::fs::File::open(path)?;
    parse_conll(std::io::BufReader::new(f), scheme)
}

/// Write sentences in two-column CoNLL format with BIO tags.
pub fn write_conll<W: Write>(
    writer: &mut W,
    sentences: &[NerSentence],
    scheme: &TagScheme,
) -> Result<(), ConllError> {
    for s in sentences {
        let bio = scheme.bioes_to_bio(&s.tags);
        for (tok, tag) in s.tokens.iter().zip(&bio) {
            writeln!(writer, "{tok} {tag}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_core::tags::Position;

    fn scheme() -> TagScheme {
        TagScheme::conll()
    }

    const SAMPLE: &str = "\
-DOCSTART- -X- O O

EU NNP B-ORG
rejects VBZ O
German JJ B-MISC
call NN O

Peter NNP B-PER
Blackburn NNP I-PER
";

    #[test]
    fn parses_conll2003_style() {
        let s = scheme();
        let sents = parse_conll(SAMPLE.as_bytes(), &s).unwrap();
        assert_eq!(sents.len(), 2);
        assert_eq!(sents[0].tokens, vec!["EU", "rejects", "German", "call"]);
        assert_eq!(sents[0].tags[0], s.tag(Position::S, 1)); // S-ORG
        assert_eq!(sents[0].tags[1], 0);
        assert_eq!(sents[0].tags[2], s.tag(Position::S, 3)); // S-MISC
        assert_eq!(
            sents[1].tags,
            vec![s.tag(Position::B, 0), s.tag(Position::E, 0)] // Peter Blackburn = PER
        );
    }

    #[test]
    fn round_trips_through_write() {
        let s = scheme();
        let sents = parse_conll(SAMPLE.as_bytes(), &s).unwrap();
        let mut buf = Vec::new();
        write_conll(&mut buf, &sents, &s).unwrap();
        let reparsed = parse_conll(buf.as_slice(), &s).unwrap();
        assert_eq!(reparsed.len(), sents.len());
        for (a, b) in reparsed.iter().zip(&sents) {
            assert_eq!(a.tokens, b.tokens);
            assert_eq!(a.tags, b.tags);
        }
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse_conll("".as_bytes(), &scheme()).unwrap().is_empty());
        assert!(parse_conll("\n\n\n".as_bytes(), &scheme())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn single_column_lines_are_untagged_tokens() {
        let sents = parse_conll("hello\nworld\n".as_bytes(), &scheme()).unwrap();
        assert_eq!(sents.len(), 1);
        assert_eq!(sents[0].tags, vec![0, 0]);
    }

    #[test]
    fn file_round_trip() {
        let s = scheme();
        let sents = parse_conll(SAMPLE.as_bytes(), &s).unwrap();
        let path = std::env::temp_dir().join(format!("histal-conll-{}.txt", std::process::id()));
        {
            let mut f = std::fs::File::create(&path).unwrap();
            write_conll(&mut f, &sents, &s).unwrap();
        }
        let back = read_conll(&path, &s).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].tokens, vec!["Peter", "Blackburn"]);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err =
            read_conll(std::path::Path::new("/nonexistent/histal.conll"), &scheme()).unwrap_err();
        assert!(matches!(err, ConllError::Io(_)));
    }
}

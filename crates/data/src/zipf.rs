//! Zipf-distributed sampling for natural-looking token frequencies.

use rand::Rng;

/// A sampler over ranks `0..n` with `P(rank) ∝ 1/(rank+1)^s`.
///
/// Real corpora have heavy-tailed vocabularies; using a Zipf background
/// keeps the generated vocabulary statistics (|V|, tokens with frequency
/// ≥ 2) in the same regime as Table 3.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top-10 ranks of a 1000-rank Zipf(1.2) hold ~58% of the mass.
        assert!(head as f64 / n as f64 > 0.4, "head mass {head}/{n}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}

//! Dataset splitting: shuffled train/test splits and k-fold CV.
//!
//! The paper 10-fold cross-validates MR and Subj and uses the original
//! splits for SST-2, TREC, and CoNLL.

use rand::prelude::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Shuffle `0..n` and split into `(train, test)` index sets with
/// `test_fraction` of the data in the test set (at least one sample in
/// each side when `n ≥ 2`).
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction must be in [0, 1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    let mut n_test = (n as f64 * test_fraction).round() as usize;
    if n >= 2 {
        n_test = n_test.clamp(1, n - 1);
    }
    let test = idx.split_off(n - n_test);
    (idx, test)
}

/// K-fold cross validation: returns `k` `(train, test)` index pairs with
/// disjoint, exhaustive test folds.
pub fn cv_folds(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least two folds");
    assert!(n >= k, "need at least one sample per fold");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test: Vec<usize> = idx[start..start + size].to_vec();
        let train: Vec<usize> = idx[..start]
            .iter()
            .chain(&idx[start + size..])
            .copied()
            .collect();
        folds.push((train, test));
        start += size;
    }
    folds
}

/// Stratified train/test split: preserves the class proportions of
/// `labels` in both sides (up to rounding). Returns `(train, test)`
/// index sets.
///
/// # Panics
/// Panics if `test_fraction` is outside `[0, 1)`.
pub fn stratified_split(
    labels: &[usize],
    test_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction must be in [0, 1)"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Group indices by class.
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, &y) in labels.iter().enumerate() {
        by_class.entry(y).or_default().push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (_, mut idx) in by_class {
        idx.shuffle(&mut rng);
        let n_test = ((idx.len() as f64 * test_fraction).round() as usize).min(idx.len());
        test.extend_from_slice(&idx[..n_test]);
        train.extend_from_slice(&idx[n_test..]);
    }
    // Shuffle so downstream init-set sampling isn't class-ordered.
    train.shuffle(&mut rng);
    test.shuffle(&mut rng);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_sizes_and_disjointness() {
        let (train, test) = train_test_split(100, 0.2, 7);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
        let t: HashSet<_> = train.iter().collect();
        assert!(test.iter().all(|i| !t.contains(i)));
    }

    #[test]
    fn split_always_nonempty_sides() {
        let (train, test) = train_test_split(2, 0.01, 7);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn split_deterministic() {
        assert_eq!(train_test_split(50, 0.3, 9), train_test_split(50, 0.3, 9));
        assert_ne!(
            train_test_split(50, 0.3, 9).1,
            train_test_split(50, 0.3, 10).1
        );
    }

    #[test]
    fn folds_partition_everything() {
        let folds = cv_folds(103, 10, 5);
        assert_eq!(folds.len(), 10);
        let mut seen = HashSet::new();
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &i in test {
                assert!(seen.insert(i), "test folds overlap at {i}");
            }
        }
        assert_eq!(seen.len(), 103);
    }

    #[test]
    fn fold_sizes_balanced() {
        let folds = cv_folds(103, 10, 5);
        for (_, test) in &folds {
            assert!(test.len() == 10 || test.len() == 11);
        }
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn one_fold_panics() {
        let _ = cv_folds(10, 1, 0);
    }

    #[test]
    fn stratified_preserves_class_ratios() {
        // 300 of class 0, 100 of class 1.
        let labels: Vec<usize> = (0..400).map(|i| usize::from(i % 4 == 0)).collect();
        let (train, test) = stratified_split(&labels, 0.25, 3);
        assert_eq!(train.len() + test.len(), 400);
        let share = |idx: &[usize]| {
            idx.iter().filter(|&&i| labels[i] == 1).count() as f64 / idx.len() as f64
        };
        assert!(
            (share(&train) - 0.25).abs() < 0.01,
            "train share {}",
            share(&train)
        );
        assert!(
            (share(&test) - 0.25).abs() < 0.01,
            "test share {}",
            share(&test)
        );
    }

    #[test]
    fn stratified_partitions_everything() {
        let labels = vec![0, 1, 0, 1, 2, 2, 0];
        let (train, test) = stratified_split(&labels, 0.3, 1);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn stratified_deterministic() {
        let labels: Vec<usize> = (0..50).map(|i| i % 3).collect();
        assert_eq!(
            stratified_split(&labels, 0.2, 9),
            stratified_split(&labels, 0.2, 9)
        );
    }
}

//! Serde-round-trippable experiment specifications.
//!
//! An [`ExperimentSpec`] is the declarative description of one
//! experiment grid: which datasets, which strategy groups, which seeds,
//! how to report. The JSON files under `specs/` at the repo root are
//! serialized `ExperimentSpec`s; the figure/table commands of
//! `histal-experiments` load embedded copies of those files and hand
//! them to the [`GridExecutor`](crate::executor::GridExecutor), and
//! `run --spec FILE` does the same for arbitrary user-written grids.
//!
//! Round-tripping is part of the contract (property-tested):
//! `spec → JSON → spec → JSON` is idempotent, so a spec file rewritten
//! by tooling never drifts.

use serde::{DeError, Deserialize, Serialize, Value};

use histal_core::error::Error;

use crate::registry;

/// Declarative description of one experiment grid.
///
/// String-typed references (`datasets`, strategy tokens, `metrics`,
/// `model`) are resolved through the registries in
/// [`crate::registry`]; [`Self::validate`] resolves all of them eagerly
/// so a typo fails before any cell runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Spec name; also the `results/<name>.json` output stem.
    pub name: String,
    /// Experiment id used in seed derivation and journal cell keys
    /// (empty → `name`). Kept separate from `name` so renaming an
    /// output file never invalidates old journals.
    #[serde(default)]
    pub experiment: String,
    /// Train/test split seed for text datasets (NER corpora carry their
    /// split sizes in the generator spec and ignore this).
    #[serde(default)]
    pub split_seed: u64,
    /// Model reference: `"logreg"` (default) or `"nb"` for text,
    /// `"crf"` (default) for NER.
    #[serde(default)]
    pub model: Option<String>,
    /// Dataset references (see [`registry::parse_dataset`]); all must
    /// resolve to the same task kind.
    pub datasets: Vec<DatasetEntry>,
    /// Strategy groups; each (dataset × group) pair is one report block.
    pub groups: Vec<GroupSpec>,
    /// Report title template; `{dataset}` and `{label}` are substituted
    /// per block.
    #[serde(default)]
    pub title: String,
    /// JSON grouping key template (same placeholders as `title`). When
    /// set, `results/<name>.json` is a list of `(key, results)` groups,
    /// one per block; when absent it is one flat result list.
    #[serde(default)]
    pub json_key: Option<String>,
    /// Scale overrides; set fields win over the command-line scale.
    #[serde(default)]
    pub scale: Option<ScaleSpec>,
    /// Pool-configuration overrides on top of the per-kind defaults.
    #[serde(default)]
    pub pool: Option<PoolSpec>,
    /// CRF score-beam width `δ` for NER cells
    /// ([`histal_models::CrfConfig::score_beam`]): scoring-only
    /// forward–backward passes prune lattice source states more than
    /// `δ` below each row's maximum. `None` (default, and the setting
    /// of every figure spec) keeps scoring exact. Fit and Viterbi are
    /// exact regardless. Text datasets ignore it.
    #[serde(default)]
    pub ner_beam: Option<f64>,
    /// Approximate-neighbor settings for the similarity combinators
    /// ([`histal_text::LshIndex`]). `None` (default, and the setting of
    /// every figure spec) keeps the exact exhaustive sweeps and the
    /// pre-ANN journal hashes; `Some` routes density/MMR/k-center
    /// neighbor queries through a seeded LSH index and joins the cell
    /// hash, mirroring `ner_beam`. Requires `pool.representations`.
    #[serde(default)]
    pub ann: Option<AnnSpec>,
    /// Annotation-cost model: a per-label cost and a total budget
    /// ceiling. When set, each cell's selection rounds are lowered to
    /// the largest count the budget affords (`init + k·batch` labels at
    /// `cost_per_label` each staying within `max_cost`); a shortened run
    /// is an exact RNG prefix of the full one. Joins the cell hash only
    /// when set, so budget-less specs keep their pre-existing journal
    /// hashes.
    #[serde(default)]
    pub budget: Option<BudgetSpec>,
    /// Successive-halving pruning policy for the adaptive scheduler.
    /// When set, cells run round-streamed and dominated cells stop
    /// early at checkpoints (see `DESIGN.md` §5.10 for the determinism
    /// rules). Joins the cell hash only when set — prune-less specs and
    /// their journals stay byte-identical to the classic executor.
    #[serde(default)]
    pub prune: Option<PruneSpec>,
    /// Paired-significance rendering for [`ReportKind::Metrics`]: every
    /// non-baseline cell is compared against `baseline` with a paired
    /// bootstrap or permutation test over the per-repeat curve points.
    /// Render-only — never part of seeds or cell hashes.
    #[serde(default)]
    pub significance: Option<SignificanceSpec>,
    /// Metric columns for [`ReportKind::Metrics`] (see
    /// [`registry::parse_metric`]).
    #[serde(default)]
    pub metrics: Vec<String>,
    /// Header of the dataset label column in metric tables (default
    /// `"Dataset"`).
    #[serde(default)]
    pub dataset_column: Option<String>,
    /// How to render the grid outcome.
    #[serde(default)]
    pub report: ReportKind,
}

/// One dataset reference, optionally display-renamed. Serialized as a
/// bare string when there is no rename.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetEntry {
    /// Dataset token (see [`registry::parse_dataset`]).
    pub dataset: String,
    /// Display-name override for titles and label columns. Seeds and
    /// journal keys always use the generated corpus name, so renames
    /// never invalidate journals.
    pub rename: Option<String>,
}

impl DatasetEntry {
    /// A plain, un-renamed reference.
    pub fn new(dataset: impl Into<String>) -> Self {
        Self {
            dataset: dataset.into(),
            rename: None,
        }
    }
}

/// One strategy cell within a group. Serialized as a bare string when
/// only the token is set.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyEntry {
    /// Strategy token (see [`registry::parse_strategy`]).
    pub strategy: String,
    /// Display-name override for reports (seeds and journal keys always
    /// use the resolved strategy's canonical name).
    pub rename: Option<String>,
    /// Per-entry experiment-id override (seeds + journal keys), for
    /// grids whose historical seed pairing splits one group across
    /// experiment ids (e.g. fig3's `fig3` / `fig3-lhs`).
    pub experiment: Option<String>,
}

impl StrategyEntry {
    /// A plain entry with no overrides.
    pub fn new(strategy: impl Into<String>) -> Self {
        Self {
            strategy: strategy.into(),
            rename: None,
            experiment: None,
        }
    }
}

/// A named group of strategies; each (dataset × group) is one printed
/// block / JSON group.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Group label for `{label}` template substitution.
    #[serde(default)]
    pub label: String,
    /// The strategies of the group, in report order.
    pub strategies: Vec<StrategyEntry>,
}

/// Scale overrides; unset fields inherit the command-line scale.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScaleSpec {
    /// Pool/budget multiplier.
    #[serde(default)]
    pub factor: Option<f64>,
    /// Independent repetitions to average.
    #[serde(default)]
    pub repeats: Option<usize>,
}

/// Pool-configuration overrides on top of the per-kind defaults
/// (batch 25/100 for binary/multiclass text, 100 for NER; rounds scaled
/// from the paper's 19).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Samples selected per round.
    #[serde(default)]
    pub batch_size: Option<usize>,
    /// Selection rounds after the seed batch.
    #[serde(default)]
    pub rounds: Option<usize>,
    /// Randomly labeled seed-set size.
    #[serde(default)]
    pub init_labeled: Option<usize>,
    /// Record full per-sample history sequences (forced on for
    /// [`ReportKind::TrendCensus`]).
    #[serde(default)]
    pub record_history: bool,
    /// Attach sparse document features as representations (enables the
    /// `+density` / `+mmr` / `+kcenter` strategy modifiers).
    #[serde(default)]
    pub representations: bool,
}

/// Approximate-neighbor overrides; unset fields inherit the
/// [`histal_text::AnnConfig`] defaults (8 tables, auto bits, 2 probes).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnnSpec {
    /// Independent LSH hash tables (1..=64).
    #[serde(default)]
    pub tables: Option<usize>,
    /// Signature width in bits; 0 or unset = auto from pool size
    /// (explicit widths are capped at 20).
    #[serde(default)]
    pub bits: Option<usize>,
    /// One-bit-flip probes per table per query.
    #[serde(default)]
    pub probes: Option<usize>,
}

impl AnnSpec {
    /// Lower the spec overrides onto the crate defaults.
    pub fn to_config(&self) -> histal_text::AnnConfig {
        let d = histal_text::AnnConfig::default();
        histal_text::AnnConfig {
            tables: self.tables.unwrap_or(d.tables),
            bits: self.bits.unwrap_or(d.bits),
            probes: self.probes.unwrap_or(d.probes),
        }
    }
}

/// Annotation-cost/budget model. Unset fields take the defaults noted
/// per field; `max_cost` itself is required (validated) — a budget with
/// no ceiling caps nothing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BudgetSpec {
    /// Cost of one annotated sample (default 1.0, i.e. the budget is a
    /// label count).
    #[serde(default)]
    pub cost_per_label: Option<f64>,
    /// Total annotation budget; rounds stop before the first batch that
    /// would exceed it.
    #[serde(default)]
    pub max_cost: Option<f64>,
}

impl BudgetSpec {
    /// The largest selection-round count the budget affords on top of
    /// the seed set: `init + k·batch` labels at `cost_per_label` each
    /// must stay within `max_cost`.
    pub fn affordable_rounds(&self, init_labeled: usize, batch_size: usize) -> usize {
        let cost = self.cost_per_label.unwrap_or(1.0);
        let max = match self.max_cost {
            Some(m) => m,
            None => return usize::MAX,
        };
        let labels = (max / cost).floor();
        let after_init = labels - init_labeled as f64;
        if after_init <= 0.0 {
            0
        } else {
            (after_init / batch_size.max(1) as f64).floor() as usize
        }
    }
}

/// Successive-halving pruning policy for the adaptive grid scheduler.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PruneSpec {
    /// Rounds between pruning decisions (default 2): interim curves are
    /// compared each time every live cell has completed another
    /// `checkpoint` selection rounds.
    #[serde(default)]
    pub checkpoint: Option<usize>,
    /// Domination margin (default 0.0): a cell is pruned only when some
    /// single competitor beats it by at least this much on *every*
    /// paired repeat (and strictly on at least one).
    #[serde(default)]
    pub margin: Option<f64>,
}

impl PruneSpec {
    /// Rounds between pruning decisions.
    pub fn checkpoint_rounds(&self) -> usize {
        self.checkpoint.unwrap_or(2).max(1)
    }

    /// Domination margin.
    pub fn margin_value(&self) -> f64 {
        self.margin.unwrap_or(0.0)
    }
}

/// Paired-significance rendering settings for metric reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SignificanceSpec {
    /// Display name of the baseline strategy every other cell is
    /// compared against (an entry's `rename`, or its resolved display
    /// name).
    pub baseline: String,
    /// `"bootstrap"` (default) or `"permutation"`.
    #[serde(default)]
    pub method: Option<String>,
    /// Resampling iterations (default 2000).
    #[serde(default)]
    pub iters: Option<usize>,
    /// Two-sided significance level (default 0.05).
    #[serde(default)]
    pub alpha: Option<f64>,
    /// Resampling RNG seed (default 0x51). Render-only: never part of
    /// cell seeds or hashes.
    #[serde(default)]
    pub seed: Option<u64>,
}

/// How a grid outcome is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportKind {
    /// Learning-curve tables per block + curves JSON.
    #[default]
    Curves,
    /// One row per cell with the spec's metric columns.
    Metrics,
    /// Mean WSHS / fluctuation scores of the selected samples.
    SelectionStats,
    /// Mean per-round phase timings (train / eval / fold / select).
    Timing,
    /// Mann–Kendall census of the recorded history sequences.
    TrendCensus,
    /// Metric at evenly spaced label-budget checkpoints.
    Checkpoints,
}

impl ReportKind {
    const NAMES: &'static [(&'static str, ReportKind)] = &[
        ("curves", ReportKind::Curves),
        ("metrics", ReportKind::Metrics),
        ("selection-stats", ReportKind::SelectionStats),
        ("timing", ReportKind::Timing),
        ("trend-census", ReportKind::TrendCensus),
        ("checkpoints", ReportKind::Checkpoints),
    ];

    fn as_str(self) -> &'static str {
        Self::NAMES
            .iter()
            .find(|(_, k)| *k == self)
            .map(|(n, _)| *n)
            .expect("every ReportKind has a name")
    }
}

impl Serialize for ReportKind {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for ReportKind {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom("report kind must be a string"))?;
        Self::NAMES
            .iter()
            .find(|(n, _)| *n == s)
            .map(|(_, k)| *k)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::NAMES.iter().map(|(n, _)| *n).collect();
                DeError::custom(format!(
                    "unknown report kind `{s}` (valid: {})",
                    names.join(", ")
                ))
            })
    }
}

// String-or-map entries keep the spec files compact: `"entropy"` and
// `{"strategy": "entropy"}` are the same entry, and serialization picks
// the bare string whenever no override is set so round-trips are
// idempotent.
impl Serialize for StrategyEntry {
    fn to_value(&self) -> Value {
        if self.rename.is_none() && self.experiment.is_none() {
            return Value::Str(self.strategy.clone());
        }
        let mut map = vec![("strategy".to_string(), Value::Str(self.strategy.clone()))];
        if let Some(r) = &self.rename {
            map.push(("rename".to_string(), Value::Str(r.clone())));
        }
        if let Some(e) = &self.experiment {
            map.push(("experiment".to_string(), Value::Str(e.clone())));
        }
        Value::Map(map)
    }
}

impl Deserialize for StrategyEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(StrategyEntry::new(s.clone())),
            Value::Map(entries) => {
                let mut out = StrategyEntry::new(String::new());
                let mut saw_strategy = false;
                for (k, val) in entries {
                    let s = val
                        .as_str()
                        .ok_or_else(|| {
                            DeError::custom(format!("strategy entry field `{k}` must be a string"))
                        })?
                        .to_string();
                    match k.as_str() {
                        "strategy" => {
                            out.strategy = s;
                            saw_strategy = true;
                        }
                        "rename" => out.rename = Some(s),
                        "experiment" => out.experiment = Some(s),
                        _ => {
                            return Err(DeError::custom(format!(
                                "unknown strategy entry field `{k}` (valid: strategy, rename, experiment)"
                            )))
                        }
                    }
                }
                if !saw_strategy {
                    return Err(DeError::custom("strategy entry is missing `strategy`"));
                }
                Ok(out)
            }
            _ => Err(DeError::custom(
                "strategy entry must be a string or an object",
            )),
        }
    }
}

impl Serialize for DatasetEntry {
    fn to_value(&self) -> Value {
        match &self.rename {
            None => Value::Str(self.dataset.clone()),
            Some(r) => Value::Map(vec![
                ("dataset".to_string(), Value::Str(self.dataset.clone())),
                ("rename".to_string(), Value::Str(r.clone())),
            ]),
        }
    }
}

impl Deserialize for DatasetEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(DatasetEntry::new(s.clone())),
            Value::Map(entries) => {
                let mut out = DatasetEntry::new(String::new());
                let mut saw_dataset = false;
                for (k, val) in entries {
                    let s = val
                        .as_str()
                        .ok_or_else(|| {
                            DeError::custom(format!("dataset entry field `{k}` must be a string"))
                        })?
                        .to_string();
                    match k.as_str() {
                        "dataset" => {
                            out.dataset = s;
                            saw_dataset = true;
                        }
                        "rename" => out.rename = Some(s),
                        _ => {
                            return Err(DeError::custom(format!(
                                "unknown dataset entry field `{k}` (valid: dataset, rename)"
                            )))
                        }
                    }
                }
                if !saw_dataset {
                    return Err(DeError::custom("dataset entry is missing `dataset`"));
                }
                Ok(out)
            }
            _ => Err(DeError::custom(
                "dataset entry must be a string or an object",
            )),
        }
    }
}

impl ExperimentSpec {
    /// Parse a spec from its JSON text.
    pub fn from_json(json: &str) -> Result<ExperimentSpec, Error> {
        serde_json::from_str(json).map_err(|e| Error::spec(format!("cannot parse spec: {e}")))
    }

    /// Serialize to pretty JSON (the `specs/` file format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }

    /// The experiment id used for seeds and journal keys.
    pub fn experiment_id(&self) -> &str {
        if self.experiment.is_empty() {
            &self.name
        } else {
            &self.experiment
        }
    }

    /// Resolve every registry reference eagerly, so a broken spec fails
    /// with one actionable error before any cell runs.
    pub fn validate(&self) -> Result<(), Error> {
        if self.name.is_empty() {
            return Err(Error::spec("spec `name` must not be empty"));
        }
        if self.datasets.is_empty() {
            return Err(Error::spec("spec lists no datasets"));
        }
        if self.groups.iter().all(|g| g.strategies.is_empty()) {
            return Err(Error::spec("spec lists no strategies"));
        }
        let mut kind = None;
        for d in &self.datasets {
            let def = registry::parse_dataset(&d.dataset)?;
            match kind {
                None => kind = Some(def.kind()),
                Some(k) if k != def.kind() => {
                    return Err(Error::spec(format!(
                        "dataset `{}` mixes task kinds within one spec — split text and NER \
                         datasets into separate specs",
                        d.dataset
                    )))
                }
                _ => {}
            }
        }
        let kind = kind.expect("datasets checked non-empty");
        for g in &self.groups {
            for e in &g.strategies {
                let resolved = registry::parse_strategy(&e.strategy)?;
                if resolved.lhs.is_some() && kind == registry::TaskKind::Ner {
                    return Err(Error::spec(format!(
                        "strategy `{}`: LHS selectors are only supported on text datasets",
                        e.strategy
                    )));
                }
            }
        }
        for m in &self.metrics {
            registry::parse_metric(m)?;
        }
        match (self.model.as_deref(), kind) {
            (None, _)
            | (Some("logreg"), registry::TaskKind::Text)
            | (Some("nb"), registry::TaskKind::Text) => {}
            (Some("crf"), registry::TaskKind::Ner) => {}
            (Some(other), registry::TaskKind::Text) => {
                return Err(Error::unknown_name("text model", other, ["logreg", "nb"]))
            }
            (Some(other), registry::TaskKind::Ner) => {
                return Err(Error::unknown_name("NER model", other, ["crf"]))
            }
        }
        if self.report == ReportKind::Metrics && self.metrics.is_empty() {
            return Err(Error::spec("a `metrics` report needs at least one metric"));
        }
        if let Some(beam) = self.ner_beam {
            if !(beam.is_finite() && beam > 0.0) {
                return Err(Error::spec(format!(
                    "`ner_beam` must be a positive finite width, got {beam}"
                )));
            }
            if kind != registry::TaskKind::Ner {
                return Err(Error::spec(
                    "`ner_beam` only applies to NER datasets — remove it from text specs",
                ));
            }
        }
        if let Some(ann) = &self.ann {
            if kind != registry::TaskKind::Text {
                return Err(Error::spec(
                    "`ann` only applies to text datasets — NER cells have no pool geometry",
                ));
            }
            if !self.pool.as_ref().is_some_and(|p| p.representations) {
                return Err(Error::spec(
                    "`ann` requires `pool.representations`: without representations \
                     no geometry is built and the index would never be consulted",
                ));
            }
            if let Some(t) = ann.tables {
                if !(1..=64).contains(&t) {
                    return Err(Error::spec(format!(
                        "`ann.tables` must be in 1..=64, got {t}"
                    )));
                }
            }
            if let Some(b) = ann.bits {
                if b > 20 {
                    return Err(Error::spec(format!(
                        "`ann.bits` must be 0 (auto) or at most 20, got {b}"
                    )));
                }
            }
            if let Some(q) = ann.probes {
                if q > 20 {
                    return Err(Error::spec(format!(
                        "`ann.probes` must be at most 20, got {q}"
                    )));
                }
            }
        }
        if let Some(b) = &self.budget {
            let cost = b.cost_per_label.unwrap_or(1.0);
            if !(cost.is_finite() && cost > 0.0) {
                return Err(Error::invariant(format!(
                    "`budget.cost_per_label` must be a positive finite cost, got {cost}"
                )));
            }
            match b.max_cost {
                None => {
                    return Err(Error::invariant(
                        "`budget.max_cost` must be set — a budget with no ceiling caps nothing",
                    ))
                }
                Some(m) if !(m.is_finite() && m > 0.0) => {
                    return Err(Error::invariant(format!(
                        "`budget.max_cost` must be a positive finite budget, got {m}"
                    )))
                }
                Some(_) => {}
            }
        }
        if let Some(p) = &self.prune {
            if p.checkpoint == Some(0) {
                return Err(Error::invariant(
                    "`prune.checkpoint` must be at least 1 round between decisions",
                ));
            }
            if let Some(m) = p.margin {
                if !(m.is_finite() && m >= 0.0) {
                    return Err(Error::invariant(format!(
                        "`prune.margin` must be a finite non-negative margin, got {m}"
                    )));
                }
            }
        }
        if let Some(s) = &self.significance {
            match s.method.as_deref() {
                None | Some("bootstrap") | Some("permutation") => {}
                Some(other) => {
                    return Err(Error::unknown_name(
                        "significance method",
                        other,
                        ["bootstrap", "permutation"],
                    ))
                }
            }
            if s.iters == Some(0) {
                return Err(Error::invariant(
                    "`significance.iters` must be at least 1 resampling iteration",
                ));
            }
            if let Some(a) = s.alpha {
                if !(a > 0.0 && a < 1.0) {
                    return Err(Error::invariant(format!(
                        "`significance.alpha` must lie strictly between 0 and 1, got {a}"
                    )));
                }
            }
            if self.report != ReportKind::Metrics {
                return Err(Error::invariant(
                    "`significance` renders into metric tables — set `report: \"metrics\"`",
                ));
            }
            let mut displays = Vec::new();
            for g in &self.groups {
                for e in &g.strategies {
                    displays.push(match &e.rename {
                        Some(r) => r.clone(),
                        None => registry::parse_strategy(&e.strategy)?.display_name(),
                    });
                }
            }
            if !displays.contains(&s.baseline) {
                return Err(Error::unknown_name(
                    "significance baseline",
                    &s.baseline,
                    displays,
                ));
            }
        }
        Ok(())
    }

    /// The task kind of the (validated) spec's datasets.
    pub fn task_kind(&self) -> Result<registry::TaskKind, Error> {
        let first = self
            .datasets
            .first()
            .ok_or_else(|| Error::spec("spec lists no datasets"))?;
        Ok(registry::parse_dataset(&first.dataset)?.kind())
    }
}

/// Substitute `{dataset}` / `{label}` placeholders in a title or
/// json-key template.
pub fn render_template(template: &str, dataset: &str, label: &str) -> String {
    template
        .replace("{dataset}", dataset)
        .replace("{label}", label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentSpec {
        ExperimentSpec {
            name: "demo".into(),
            experiment: "demo-x".into(),
            split_seed: 7,
            model: None,
            datasets: vec![DatasetEntry::new("mr")],
            groups: vec![GroupSpec {
                label: "entropy".into(),
                strategies: vec![
                    StrategyEntry::new("entropy"),
                    StrategyEntry {
                        strategy: "WSHS{l=6}(entropy)".into(),
                        rename: Some("WSHS l=6".into()),
                        experiment: None,
                    },
                ],
            }],
            title: "Demo — {dataset} / {label}".into(),
            json_key: Some("{dataset}".into()),
            scale: Some(ScaleSpec {
                factor: None,
                repeats: Some(2),
            }),
            pool: None,
            metrics: vec!["final".into(), "alc".into()],
            dataset_column: None,
            report: ReportKind::Curves,
            ner_beam: None,
            ann: None,
            budget: None,
            prune: None,
            significance: None,
        }
    }

    #[test]
    fn round_trip_is_idempotent() {
        let spec = sample();
        let json = spec.to_json_pretty();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn bare_string_entries_stay_bare() {
        let json = sample().to_json_pretty();
        // The un-renamed entry serializes as a bare string.
        assert!(json.contains("\"entropy\""));
        assert!(json.contains("\"rename\": \"WSHS l=6\""));
    }

    #[test]
    fn validate_catches_bad_references() {
        let mut spec = sample();
        spec.datasets = vec![DatasetEntry::new("imdb")];
        assert!(spec.validate().unwrap_err().to_string().contains("imdb"));
        let mut spec = sample();
        spec.groups[0]
            .strategies
            .push(StrategyEntry::new("WSHS(entrpy)"));
        assert!(spec.validate().unwrap_err().to_string().contains("entrpy"));
        let mut spec = sample();
        spec.metrics = vec!["auc".into()];
        assert!(spec.validate().is_err());
        let mut spec = sample();
        spec.datasets.push(DatasetEntry::new("conll2003-en"));
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("task kinds"));
        let mut spec = sample();
        spec.model = Some("transformer".into());
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("transformer"));
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn experiment_id_defaults_to_name() {
        let mut spec = sample();
        assert_eq!(spec.experiment_id(), "demo-x");
        spec.experiment.clear();
        assert_eq!(spec.experiment_id(), "demo");
    }

    fn adaptive_sample() -> ExperimentSpec {
        let mut spec = sample();
        spec.budget = Some(BudgetSpec {
            cost_per_label: Some(2.0),
            max_cost: Some(500.0),
        });
        spec.prune = Some(PruneSpec {
            checkpoint: Some(2),
            margin: Some(0.01),
        });
        spec.significance = Some(SignificanceSpec {
            baseline: "entropy".into(),
            method: Some("permutation".into()),
            iters: Some(1000),
            alpha: Some(0.05),
            seed: Some(7),
        });
        spec.report = ReportKind::Metrics;
        spec
    }

    #[test]
    fn adaptive_fields_round_trip() {
        let spec = adaptive_sample();
        let json = spec.to_json_pretty();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json_pretty(), json);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_adaptive_fields() {
        let mut spec = adaptive_sample();
        spec.budget = Some(BudgetSpec {
            cost_per_label: Some(1.0),
            max_cost: None,
        });
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("max_cost"));
        let mut spec = adaptive_sample();
        spec.prune = Some(PruneSpec {
            checkpoint: Some(0),
            margin: None,
        });
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("checkpoint"));
        let mut spec = adaptive_sample();
        spec.significance.as_mut().unwrap().method = Some("wilcoxon".into());
        let msg = spec.validate().unwrap_err().to_string();
        assert!(
            msg.contains("wilcoxon") && msg.contains("permutation"),
            "{msg}"
        );
        let mut spec = adaptive_sample();
        spec.significance.as_mut().unwrap().baseline = "margin".into();
        let msg = spec.validate().unwrap_err().to_string();
        assert!(msg.contains("margin") && msg.contains("WSHS l=6"), "{msg}");
        let mut spec = adaptive_sample();
        spec.report = ReportKind::Curves;
        assert!(spec.validate().unwrap_err().to_string().contains("metrics"));
    }

    #[test]
    fn budget_affordable_rounds() {
        let budget = |cost: Option<f64>, max: Option<f64>| BudgetSpec {
            cost_per_label: cost,
            max_cost: max,
        };
        // 500 labels at cost 1: init 25 + 19 batches of 25 fits exactly.
        assert_eq!(budget(None, Some(500.0)).affordable_rounds(25, 25), 19);
        // One label short of the last batch drops a round.
        assert_eq!(budget(None, Some(499.0)).affordable_rounds(25, 25), 18);
        // Cost 2 halves the label count.
        assert_eq!(budget(Some(2.0), Some(500.0)).affordable_rounds(25, 25), 9);
        // Budget below the seed set affords no selection rounds.
        assert_eq!(budget(None, Some(10.0)).affordable_rounds(25, 25), 0);
        // No ceiling → unconstrained (validate() rejects this spec).
        assert_eq!(budget(None, None).affordable_rounds(25, 25), usize::MAX);
    }

    #[test]
    fn report_kind_round_trips() {
        for (name, kind) in ReportKind::NAMES {
            let v = kind.to_value();
            assert_eq!(v.as_str(), Some(*name));
            assert_eq!(ReportKind::from_value(&v).unwrap(), *kind);
        }
        assert!(ReportKind::from_value(&Value::Str("plots".into())).is_err());
    }
}

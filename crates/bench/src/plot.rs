//! Terminal line plots for learning curves.
//!
//! The paper's figures are line charts; `--plot` renders an ASCII
//! approximation directly in the terminal so the curve *shapes* (who
//! dominates, where crossovers fall) are visible without leaving the
//! shell. One glyph per strategy; later series overwrite earlier ones on
//! collisions.

use histal_core::driver::RunResult;

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render a family of curves into a `height`-row ASCII chart (plus axis
/// labels and a legend). Returns the rendered string.
pub fn render_curves(results: &[RunResult], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let points: Vec<(&str, &[histal_core::driver::CurvePoint])> = results
        .iter()
        .filter(|r| !r.curve.is_empty())
        .map(|r| (r.strategy_name.as_str(), r.curve.as_slice()))
        .collect();
    if points.is_empty() {
        return String::from("(no curves)\n");
    }
    let x_min = points
        .iter()
        .flat_map(|(_, c)| c.iter())
        .map(|p| p.n_labeled)
        .min()
        .unwrap() as f64;
    let x_max = points
        .iter()
        .flat_map(|(_, c)| c.iter())
        .map(|p| p.n_labeled)
        .max()
        .unwrap() as f64;
    let y_min = points
        .iter()
        .flat_map(|(_, c)| c.iter())
        .map(|p| p.metric)
        .fold(f64::INFINITY, f64::min);
    let y_max = points
        .iter()
        .flat_map(|(_, c)| c.iter())
        .map(|p| p.metric)
        .fold(f64::NEG_INFINITY, f64::max);
    let x_span = (x_max - x_min).max(1.0);
    let y_span = (y_max - y_min).max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, curve)) in points.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Draw with linear interpolation between consecutive points so the
        // lines read as lines, not dots.
        for w in curve.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let steps = width.max(2);
            for s in 0..=steps {
                let t = s as f64 / steps as f64;
                let x = a.n_labeled as f64 + t * (b.n_labeled as f64 - a.n_labeled as f64);
                let y = a.metric + t * (b.metric - a.metric);
                let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
                let row = (((y_max - y) / y_span) * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][col.min(width - 1)] = glyph;
            }
        }
        if curve.len() == 1 {
            let p = &curve[0];
            let col =
                (((p.n_labeled as f64 - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y_max - p.metric) / y_span) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:6.3} ")
        } else if i == height - 1 {
            format!("{y_min:6.3} ")
        } else {
            "       ".to_string()
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "        {:<10}{:>width$}\n",
        x_min as usize,
        x_max as usize,
        width = width.saturating_sub(10)
    ));
    for (si, (name, _)) in points.iter().enumerate() {
        out.push_str(&format!("        {} {}\n", GLYPHS[si % GLYPHS.len()], name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_core::driver::CurvePoint;

    fn run(name: &str, points: &[(usize, f64)]) -> RunResult {
        RunResult {
            strategy_name: name.into(),
            curve: points
                .iter()
                .map(|&(n, m)| CurvePoint {
                    n_labeled: n,
                    metric: m,
                })
                .collect(),
            rounds: vec![],
            history: vec![],
        }
    }

    #[test]
    fn renders_legend_and_axes() {
        let out = render_curves(
            &[
                run("a", &[(10, 0.5), (20, 0.7)]),
                run("b", &[(10, 0.4), (20, 0.6)]),
            ],
            40,
            10,
        );
        assert!(out.contains("* a"));
        assert!(out.contains("o b"));
        assert!(out.contains("0.700"));
        assert!(out.contains("0.400"));
        assert!(out.contains('|'));
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render_curves(&[], 40, 10), "(no curves)\n");
        let empty_curve = run("x", &[]);
        assert_eq!(render_curves(&[empty_curve], 40, 10), "(no curves)\n");
    }

    #[test]
    fn single_point_curve_renders() {
        let out = render_curves(&[run("solo", &[(100, 0.5)])], 30, 6);
        assert!(out.contains('*'));
    }

    #[test]
    fn rising_curve_puts_glyphs_top_right() {
        let out = render_curves(&[run("up", &[(0, 0.0), (100, 1.0)])], 20, 5);
        let lines: Vec<&str> = out.lines().collect();
        // Top row should have its glyph to the right of the bottom row's.
        let top_pos = lines[0].rfind('*').unwrap();
        let bottom_pos = lines[4].find('*').unwrap();
        assert!(top_pos > bottom_pos, "{out}");
    }

    #[test]
    fn dimensions_clamped() {
        let out = render_curves(&[run("a", &[(0, 0.1), (10, 0.2)])], 1, 1);
        assert!(out.lines().count() >= 6);
    }
}

//! Grid-level journaling and resume for the experiment harness.
//!
//! The harness's unit of checkpointing is the **cell**: one seeded
//! active-learning run, keyed by a human-readable path like
//! `fig3_text/ag_news/WSHS(entropy)/r0` plus a hash of everything that
//! determines its output (strategy, scale, pool config, seed). Two
//! record kinds share the JSONL file:
//!
//! * `"round"` — appended by the driver after every selection round
//!   ([`histal_core::session::RoundJournalRecord`]); these mark progress
//!   *inside* a cell and are what a post-mortem reads to see where a
//!   crashed run died.
//! * `"cell"` — appended here when a cell finishes, embedding the full
//!   [`RunResult`]. On resume, cells with a matching key and config hash
//!   are replayed from this record instead of re-run; because the
//!   vendored JSON writer round-trips `f64` exactly, a resumed grid's
//!   aggregate output is byte-identical to an uninterrupted run's.
//!
//! A crash mid-append leaves at most one truncated line, which
//! [`histal_obs::Journal`] repairs on reopen — so `resume` after a kill
//! at any point re-runs only the cells whose `"cell"` record didn't make
//! it out.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use histal_core::driver::RunResult;
use histal_core::error::Error;
use histal_core::session::RunJournal;
use histal_obs::event;
use histal_obs::trace::Level;
use histal_obs::{Journal, JournalReader};

/// Cell-complete record: the terminal line a cell writes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRecord {
    /// Record discriminator, always `"cell"`.
    pub kind: String,
    /// Grid-cell key.
    pub cell: String,
    /// Hash of the cell's full configuration (see
    /// [`histal_core::session::fingerprint`]).
    pub config_hash: u64,
    /// The run's RNG seed.
    pub seed: u64,
    /// The complete run output, embedded for replay.
    pub result: RunResult,
}

/// Shared journaling context for one harness invocation: the append
/// handle plus the cells already completed by a previous (interrupted)
/// invocation. Cheap to share across the parallel fan-out — the resume
/// map is read-only and appends are internally locked.
pub struct JournalCtx {
    journal: Arc<Journal>,
    completed: HashMap<String, RunResult>,
    /// Cells loaded from a previous run's journal (0 for a fresh one).
    pub resumed: usize,
}

fn key(cell: &str, config_hash: u64) -> String {
    format!("{cell}#{config_hash:016x}")
}

impl JournalCtx {
    /// Start a fresh journal at `path` (truncates any existing file).
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JournalCtx> {
        Ok(JournalCtx {
            journal: Arc::new(Journal::create(path)?),
            completed: HashMap::new(),
            resumed: 0,
        })
    }

    /// Reopen `path` for appending, loading every completed cell. The
    /// file's crash tail (if any) is repaired first.
    pub fn resume(path: impl AsRef<Path>) -> std::io::Result<JournalCtx> {
        let path = path.as_ref();
        let reader = JournalReader::load(path)?;
        let mut completed = HashMap::new();
        for record in reader.records::<CellRecord>() {
            completed.insert(key(&record.cell, record.config_hash), record.result);
        }
        let resumed = completed.len();
        Ok(JournalCtx {
            journal: Arc::new(Journal::append_to(path)?),
            completed,
            resumed,
        })
    }

    /// The journaled result of `cell`, if a previous run completed it
    /// under the same config hash.
    pub fn cached(&self, cell: &str, config_hash: u64) -> Option<&RunResult> {
        self.completed.get(&key(cell, config_hash))
    }

    /// A per-round journal handle scoped to `cell`, for
    /// `SessionBuilder::journal`.
    pub fn run_journal(&self, cell: &str, config_hash: u64, seed: u64) -> RunJournal {
        RunJournal::new(Arc::clone(&self.journal), cell, config_hash, seed)
    }

    /// Append the cell-complete record, surfacing append failures as a
    /// structured [`Error`] (the run must abort rather than continue
    /// with a checkpoint file that would lie on resume).
    pub fn try_complete(
        &self,
        cell: &str,
        config_hash: u64,
        seed: u64,
        result: &RunResult,
    ) -> Result<(), Error> {
        let record = CellRecord {
            kind: "cell".to_string(),
            cell: cell.to_string(),
            config_hash,
            seed,
            result: result.clone(),
        };
        self.journal.append(&record).map_err(Error::journal)
    }

    /// Append the cell-complete record, panicking on append failure.
    pub fn complete(&self, cell: &str, config_hash: u64, seed: u64, result: &RunResult) {
        self.try_complete(cell, config_hash, seed, result)
            .expect("journal cell record write failed");
    }

    /// Fallible [`Self::run_cell`]: replay `cell` if a previous run
    /// completed it, otherwise execute `run` with a per-round journal
    /// handle and checkpoint the result. Errors from `run` propagate
    /// without writing a cell record, so a failed cell re-runs on
    /// resume.
    pub fn try_run_cell(
        &self,
        cell: &str,
        config_hash: u64,
        seed: u64,
        run: impl FnOnce(Option<RunJournal>) -> Result<RunResult, Error>,
    ) -> Result<RunResult, Error> {
        if let Some(cached) = self.cached(cell, config_hash) {
            event!(Level::Info, "journal.replay", cell = cell.to_string());
            return Ok(cached.clone());
        }
        let result = run(Some(self.run_journal(cell, config_hash, seed)))?;
        self.try_complete(cell, config_hash, seed, &result)?;
        Ok(result)
    }

    /// Run `cell` through the journal: replay it if a previous run
    /// completed it, otherwise execute `run` with a per-round journal
    /// handle and checkpoint the result.
    pub fn run_cell(
        &self,
        cell: &str,
        config_hash: u64,
        seed: u64,
        run: impl FnOnce(Option<RunJournal>) -> RunResult,
    ) -> RunResult {
        self.try_run_cell(cell, config_hash, seed, |j| Ok(run(j)))
            .expect("journal cell record write failed")
    }
}

/// Optional fallible journaling: `None` runs the closure bare; `Some`
/// routes it through [`JournalCtx::try_run_cell`].
pub fn try_run_cell_opt(
    ctx: Option<&JournalCtx>,
    cell: &str,
    config_hash: u64,
    seed: u64,
    run: impl FnOnce(Option<RunJournal>) -> Result<RunResult, Error>,
) -> Result<RunResult, Error> {
    match ctx {
        Some(ctx) => ctx.try_run_cell(cell, config_hash, seed, run),
        None => run(None),
    }
}

/// Optional journaling: `None` runs the closure bare; `Some` routes it
/// through [`JournalCtx::run_cell`]. Keeps call sites in the grid code
/// to one line.
pub fn run_cell_opt(
    ctx: Option<&JournalCtx>,
    cell: &str,
    config_hash: u64,
    seed: u64,
    run: impl FnOnce(Option<RunJournal>) -> RunResult,
) -> RunResult {
    match ctx {
        Some(ctx) => ctx.run_cell(cell, config_hash, seed, run),
        None => run(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_core::driver::CurvePoint;

    fn result(metric: f64) -> RunResult {
        RunResult {
            strategy_name: "test".to_string(),
            curve: vec![CurvePoint {
                n_labeled: 10,
                metric,
            }],
            rounds: Vec::new(),
            history: Vec::new(),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("histal-bench-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn resume_replays_completed_cells() {
        let path = tmp("resume");
        {
            let ctx = JournalCtx::create(&path).unwrap();
            let r = ctx.run_cell("grid/a/r0", 7, 42, |_| result(0.5));
            assert_eq!(r.curve[0].metric, 0.5);
        }
        let ctx = JournalCtx::resume(&path).unwrap();
        assert_eq!(ctx.resumed, 1);
        let mut ran = false;
        let r = ctx.run_cell("grid/a/r0", 7, 42, |_| {
            ran = true;
            result(0.9)
        });
        assert!(!ran, "cached cell must not re-run");
        assert_eq!(r.curve[0].metric, 0.5);
        // Different hash → treated as a different cell.
        let r2 = ctx.run_cell("grid/a/r0", 8, 42, |_| result(0.9));
        assert_eq!(r2.curve[0].metric, 0.9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_records_coexist_with_cell_records() {
        let path = tmp("mixed");
        let ctx = JournalCtx::create(&path).unwrap();
        let rj = ctx.run_journal("grid/b/r0", 1, 2);
        rj.append(&serde::Value::Map(vec![(
            "kind".to_string(),
            serde::Value::Str("round".to_string()),
        )]))
        .unwrap();
        ctx.complete("grid/b/r0", 1, 2, &result(0.25));
        drop(ctx);
        let ctx = JournalCtx::resume(&path).unwrap();
        assert_eq!(ctx.resumed, 1);
        assert!(ctx.cached("grid/b/r0", 1).is_some());
        std::fs::remove_file(&path).ok();
    }
}

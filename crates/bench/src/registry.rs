//! Name-keyed registries behind the declarative experiment engine.
//!
//! Three registries resolve the string tokens an
//! [`ExperimentSpec`](crate::spec::ExperimentSpec) carries into the
//! concrete objects the executor runs:
//!
//! * [`parse_strategy`] — the strategy grammar (`base`,
//!   `WRAPPER(base)`, `WRAPPER{param=value,…}(base)`, plus `+density` /
//!   `+mmr` / `+kcenter` diversity suffixes). Subsumes the old
//!   `Option`-returning `parse_strategy` of the experiments module: an
//!   unknown token now produces a structured
//!   [`histal_core::error::Error`] naming the token and listing every
//!   valid strategy and wrapper.
//! * [`parse_dataset`] — dataset references over the `histal-data`
//!   builders (`mr`, `sst2`, `trec`, `conll2003-en`, …), with optional
//!   `?noise=RATE` / `?priors=a/b` generation modifiers.
//! * [`parse_metric`] — pluggable report metrics (`final`, `alc`,
//!   `target:T`, `speedup:REF`), evaluated over the full learning curve
//!   in [`evaluate_metric`].
//!
//! All three return `Result<_, histal_core::error::Error>` with
//! [`ErrorKind::UnknownName`](histal_core::error::ErrorKind) /
//! [`ErrorKind::Spec`](histal_core::error::ErrorKind) payloads, so a
//! typo'd spec fails with an actionable message instead of a silent
//! `None`.

use histal_core::analysis::{area_under_curve, format_cost, samples_to_target};
use histal_core::driver::RunResult;
use histal_core::error::Error;
use histal_core::lhs::{LhsFeatureConfig, PredictorKind, RankerKind, TargetKind};
use histal_core::strategy::{BaseStrategy, DensityConfig, HistoryPolicy, MmrConfig, Strategy};
use histal_data::{NerSpec, TextSpec};
use histal_ltr::LambdaMartConfig;

/// History window used throughout the harness defaults (the paper
/// recommends 3–5; Fig. 5).
pub const WINDOW: usize = 3;
/// Default FHS weights (Fig. 5 finds w_f ≈ 0.5 best).
pub const FHS_WS: f64 = 0.5;
/// See [`FHS_WS`].
pub const FHS_WF: f64 = 0.5;

/// Canonical base-strategy names the grammar accepts.
pub const BASE_NAMES: &[&str] = &[
    "random", "entropy", "lc", "margin", "egl", "egl-word", "bald", "mnlp", "qbc",
];

/// Wrapper names the grammar accepts (shown as `WRAPPER(base)` in
/// error listings).
pub const WRAPPER_NAMES: &[&str] = &["HUS", "WSHS", "FHS", "HKLD", "LHS", "LAL"];

/// Everything a strategy token resolves to. `strategy` is what the
/// driver runs (and what seeds / journal cell keys derive from — for an
/// LHS token that is the *base* strategy, matching the historical
/// hand-coded grids); `lhs` is the selector-training plan for LHS
/// tokens; `display` overrides the report label when it differs from
/// `strategy.name()` (again only for LHS).
#[derive(Debug, Clone)]
pub struct ResolvedStrategy {
    /// The configured driver strategy.
    pub strategy: Strategy,
    /// Selector training plan, for `LHS(...)` tokens.
    pub lhs: Option<LhsPlan>,
    /// Report label override (e.g. `"LHS(entropy)"`).
    pub display: Option<String>,
}

impl ResolvedStrategy {
    /// The label this strategy carries in reports.
    pub fn display_name(&self) -> String {
        self.display.clone().unwrap_or_else(|| self.strategy.name())
    }
}

/// How to train an LHS selector (ranker + predictor + feature set);
/// §4.4's protocol trains it once on the Subj analogue and applies it
/// to the target dataset.
#[derive(Debug, Clone)]
pub struct LhsPlan {
    /// Base strategy whose scores seed the history corpus.
    pub base: BaseStrategy,
    /// Feature groups the ranker sees.
    pub features: LhsFeatureConfig,
    /// Next-score predictor.
    pub predictor: PredictorKind,
    /// Learning-to-rank model.
    pub ranker: RankerKind,
    /// Target shape the training simulation emits: pairwise ranking
    /// groups (`LHS`) or pointwise regression deltas (`LAL`).
    pub target: TargetKind,
    /// Append pool-level meta-features (label ratio, pool size, round,
    /// score moments) to every feature row — the transfer-enabling block.
    pub use_meta: bool,
    /// Training dataset override (`train=DATASET`); `None` keeps the
    /// historical Subj-analogue protocol.
    pub train: Option<String>,
}

impl LhsPlan {
    /// Cache key: two plans with equal keys train identical selectors.
    /// New components join only when set, so classic `LHS(...)` plans
    /// keep their historical keys.
    pub fn cache_key(&self) -> String {
        let mut key = format!(
            "{:?}|{:?}|{:?}|{:?}",
            self.base, self.features, self.predictor, self.ranker
        );
        if let Some(v) = self.variant() {
            key.push('|');
            key.push_str(&v);
        }
        key
    }

    /// Human-readable selector label (`LHS(entropy)`, `LAL(entropy)@mr`)
    /// for training-time tables and the BENCH artifact. Non-default
    /// meta-feature settings join as an explicit `{meta=...}` block so
    /// two plans never share a label while training different rankers.
    pub fn label(&self) -> String {
        let wrapper = match self.target {
            TargetKind::Pairwise => "LHS",
            TargetKind::Pointwise => "LAL",
        };
        let meta_default = self.target == TargetKind::Pointwise;
        let meta = if self.use_meta == meta_default {
            String::new()
        } else {
            format!("{{meta={}}}", if self.use_meta { "on" } else { "off" })
        };
        let train = self
            .train
            .as_deref()
            .map(|ds| format!("@{ds}"))
            .unwrap_or_default();
        format!("{wrapper}{meta}({}){train}", self.base.name())
    }

    /// Compact tag of everything that departs from the classic LHS
    /// configuration, `None` for a default plan. Joins the replay-guard
    /// cell hash only when set, so classic cells keep their historical
    /// hashes while `LAL` / `train=` / `meta=` cells hash apart.
    pub fn variant(&self) -> Option<String> {
        let mut parts = Vec::new();
        if self.target == TargetKind::Pointwise {
            parts.push("lal".to_string());
        }
        if self.use_meta {
            parts.push("meta".to_string());
        }
        if let Some(ds) = &self.train {
            parts.push(format!("train={ds}"));
        }
        (!parts.is_empty()).then(|| parts.join(","))
    }
}

fn valid_strategy_names() -> Vec<String> {
    BASE_NAMES
        .iter()
        .map(|b| b.to_string())
        .chain(WRAPPER_NAMES.iter().map(|w| format!("{w}(base)")))
        .collect()
}

fn parse_base(token: &str) -> Result<BaseStrategy, Error> {
    match token.to_ascii_lowercase().as_str() {
        "random" => Ok(BaseStrategy::Random),
        "entropy" => Ok(BaseStrategy::Entropy),
        "lc" | "least-confidence" | "leastconfidence" => Ok(BaseStrategy::LeastConfidence),
        "margin" => Ok(BaseStrategy::Margin),
        "egl" => Ok(BaseStrategy::Egl),
        "egl-word" | "eglword" => Ok(BaseStrategy::EglWord),
        "bald" => Ok(BaseStrategy::Bald),
        "mnlp" => Ok(BaseStrategy::Mnlp),
        "qbc" => Ok(BaseStrategy::QbcKl),
        _ => Err(Error::unknown_name(
            "strategy",
            token,
            valid_strategy_names(),
        )),
    }
}

/// One `key=value` wrapper parameter (`WSHS{l=6}(entropy)`).
struct Param<'a> {
    key: String,
    value: &'a str,
}

fn parse_params(body: &str) -> Result<Vec<Param<'_>>, Error> {
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part.split_once('=').ok_or_else(|| {
            Error::spec(format!("parameter `{part}` is not of the form key=value"))
        })?;
        out.push(Param {
            key: k.trim().to_ascii_lowercase(),
            value: v.trim(),
        });
    }
    Ok(out)
}

fn param_usize(p: &Param<'_>) -> Result<usize, Error> {
    p.value.parse().map_err(|_| {
        Error::spec(format!(
            "parameter `{}={}` is not an integer",
            p.key, p.value
        ))
    })
}

fn param_f64(p: &Param<'_>) -> Result<f64, Error> {
    p.value
        .parse()
        .map_err(|_| Error::spec(format!("parameter `{}={}` is not a number", p.key, p.value)))
}

fn param_bool(p: &Param<'_>) -> Result<bool, Error> {
    match p.value {
        "true" | "on" | "1" => Ok(true),
        "false" | "off" | "0" => Ok(false),
        _ => Err(Error::spec(format!(
            "parameter `{}={}` is not a boolean",
            p.key, p.value
        ))),
    }
}

/// Unknown `key=value` wrapper parameter — an [`ErrorKind::UnknownName`]
/// listing the valid parameter names, matching the strategy-token error
/// style (so a typo'd `LHS{predicter=...}` reads like a typo'd wrapper).
///
/// [`ErrorKind::UnknownName`]: histal_core::error::ErrorKind
fn unknown_param(wrapper: &str, p: &Param<'_>, valid: &[&str]) -> Error {
    let what = match wrapper {
        "HUS" => "HUS parameter",
        "WSHS" => "WSHS parameter",
        "FHS" => "FHS parameter",
        "HKLD" => "HKLD parameter",
        "LHS" => "LHS parameter",
        "LAL" => "LAL parameter",
        _ => "wrapper parameter",
    };
    Error::unknown_name(what, p.key.clone(), valid.iter().copied())
}

/// Shared plan parser behind the `LHS{...}` and `LAL{...}` tokens.
/// `wrapper` picks the defaults: `LHS` is the classic pairwise ranker
/// without meta-features; `LAL` defaults to pointwise regression targets
/// with the pool-level meta block (the transferable configuration).
fn lhs_plan(
    wrapper: &'static str,
    base: BaseStrategy,
    params: &[Param<'_>],
) -> Result<LhsPlan, Error> {
    let mut features = LhsFeatureConfig {
        window: WINDOW,
        ..Default::default()
    };
    let mut predictor = PredictorKind::default();
    let mut ranker = RankerKind::LambdaMart(LambdaMartConfig::default());
    let lal = wrapper == "LAL";
    let target = if lal {
        TargetKind::Pointwise
    } else {
        TargetKind::Pairwise
    };
    let mut use_meta = lal;
    let mut train: Option<String> = None;
    for p in params {
        match p.key.as_str() {
            "window" => features.window = param_usize(p)?,
            "history" => features.use_history = param_bool(p)?,
            "fluctuation" => features.use_fluctuation = param_bool(p)?,
            "trend" => features.use_trend = param_bool(p)?,
            "prediction" => features.use_prediction = param_bool(p)?,
            "probs" => features.use_probs = param_bool(p)?,
            "autocorr" => features.use_autocorr = param_bool(p)?,
            "predictor" => {
                predictor = match p.value.to_ascii_lowercase().as_str() {
                    "lstm" => PredictorKind::default(),
                    "holt" => PredictorKind::Holt,
                    v => match v.strip_prefix("ar:").map(str::parse) {
                        Some(Ok(order)) => PredictorKind::Ar { order },
                        _ => {
                            return Err(Error::unknown_name(
                                "LHS predictor",
                                p.value,
                                ["lstm", "ar:ORDER", "holt"],
                            ))
                        }
                    },
                }
            }
            "ranker" => {
                ranker = match p.value.to_ascii_lowercase().as_str() {
                    "lambdamart" => RankerKind::LambdaMart(LambdaMartConfig::default()),
                    "linear" => RankerKind::Linear(Default::default()),
                    _ => {
                        return Err(Error::unknown_name(
                            "LHS ranker",
                            p.value,
                            ["lambdamart", "linear"],
                        ))
                    }
                }
            }
            "meta" => use_meta = param_bool(p)?,
            "train" => {
                let name = p.value.trim();
                if TextSpec::by_name(name).is_none() {
                    return Err(Error::unknown_name(
                        "selector training dataset",
                        name,
                        TextSpec::NAMES.iter().copied(),
                    ));
                }
                train = Some(name.to_ascii_lowercase());
            }
            _ => {
                return Err(unknown_param(
                    wrapper,
                    p,
                    &[
                        "window",
                        "history",
                        "fluctuation",
                        "trend",
                        "prediction",
                        "probs",
                        "autocorr",
                        "predictor",
                        "ranker",
                        "meta",
                        "train",
                    ],
                ))
            }
        }
    }
    Ok(LhsPlan {
        base,
        features,
        predictor,
        ranker,
        target,
        use_meta,
        train,
    })
}

/// Parse a strategy token: `base`, `WRAPPER(base)` or
/// `WRAPPER{k=v,…}(base)`, optionally followed by `+density` / `+mmr` /
/// `+kcenter` diversity suffixes. Examples: `entropy`, `WSHS(LC)`,
/// `WSHS{l=6}(entropy)`, `FHS{l=3,wf=0.2}(entropy)`, `HKLD{k=3}(entropy)`,
/// `LHS{predictor=ar:3}(entropy)`, `WSHS(entropy)+density+mmr`.
///
/// Unknown bases, wrappers, parameters or suffixes produce a structured
/// [`Error`] naming the offending token and listing the valid choices.
pub fn parse_strategy(token: &str) -> Result<ResolvedStrategy, Error> {
    let mut rest = token.trim();
    // Split off `+modifier` suffixes (rightmost first, outside parens).
    let mut modifiers = Vec::new();
    while let Some(pos) = rest.rfind('+') {
        if rest[pos..].contains(')') {
            break; // '+' inside the wrapped part — not a suffix
        }
        modifiers.push(rest[pos + 1..].trim().to_string());
        rest = rest[..pos].trim_end();
    }
    modifiers.reverse();

    let (head, inner) = match rest.split_once('(') {
        Some((head, tail)) => {
            let tail = tail.trim_end();
            let Some(inner) = tail.strip_suffix(')') else {
                return Err(Error::spec(format!("unbalanced parentheses in `{token}`")));
            };
            (head.trim(), Some(inner.trim()))
        }
        None => (rest, None),
    };
    let (name, params) = match head.split_once('{') {
        Some((name, tail)) => {
            let Some(body) = tail.trim_end().strip_suffix('}') else {
                return Err(Error::spec(format!("unbalanced braces in `{token}`")));
            };
            (name.trim(), parse_params(body)?)
        }
        None => (head, Vec::new()),
    };

    let mut resolved = match inner {
        None => {
            if !params.is_empty() {
                return Err(Error::spec(format!(
                    "base strategy `{name}` takes no parameters"
                )));
            }
            ResolvedStrategy {
                strategy: Strategy::new(parse_base(name)?),
                lhs: None,
                display: None,
            }
        }
        Some(inner) => {
            let base = parse_base(inner)?;
            match name.to_ascii_uppercase().as_str() {
                "HUS" => {
                    let mut k = WINDOW;
                    for p in &params {
                        match p.key.as_str() {
                            "k" | "l" => k = param_usize(p)?,
                            _ => return Err(unknown_param("HUS", p, &["k"])),
                        }
                    }
                    ResolvedStrategy {
                        strategy: Strategy::new(base).with_history(HistoryPolicy::Hus { k }),
                        lhs: None,
                        display: None,
                    }
                }
                "WSHS" => {
                    let mut l = WINDOW;
                    for p in &params {
                        match p.key.as_str() {
                            "l" => l = param_usize(p)?,
                            _ => return Err(unknown_param("WSHS", p, &["l"])),
                        }
                    }
                    ResolvedStrategy {
                        strategy: Strategy::new(base).with_history(HistoryPolicy::Wshs { l }),
                        lhs: None,
                        display: None,
                    }
                }
                "FHS" => {
                    let mut l = WINDOW;
                    let mut wf = FHS_WF;
                    let mut ws = None;
                    for p in &params {
                        match p.key.as_str() {
                            "l" => l = param_usize(p)?,
                            "wf" => wf = param_f64(p)?,
                            "ws" => ws = Some(param_f64(p)?),
                            _ => return Err(unknown_param("FHS", p, &["l", "wf", "ws"])),
                        }
                    }
                    // Default w_s complements w_f (Fig. 5's convention);
                    // with the default w_f this is the paper's 0.5/0.5.
                    let w_score = ws.unwrap_or(1.0 - wf);
                    ResolvedStrategy {
                        strategy: Strategy::new(base).with_history(HistoryPolicy::Fhs {
                            l,
                            w_score,
                            w_fluct: wf,
                        }),
                        lhs: None,
                        display: None,
                    }
                }
                "HKLD" => {
                    let mut k = WINDOW;
                    for p in &params {
                        match p.key.as_str() {
                            "k" => k = param_usize(p)?,
                            _ => return Err(unknown_param("HKLD", p, &["k"])),
                        }
                    }
                    ResolvedStrategy {
                        strategy: Strategy::new(base).with_hkld(k),
                        lhs: None,
                        display: None,
                    }
                }
                wrapper @ ("LHS" | "LAL") => {
                    let wrapper: &'static str = if wrapper == "LAL" { "LAL" } else { "LHS" };
                    let plan = lhs_plan(wrapper, base, &params)?;
                    // `train=` joins the display so transfer rows stay
                    // distinguishable in reports; plain tokens keep the
                    // historical label.
                    let display = match &plan.train {
                        Some(ds) => format!("{wrapper}({})@{ds}", base.name()),
                        None => format!("{wrapper}({})", base.name()),
                    };
                    ResolvedStrategy {
                        strategy: Strategy::new(base),
                        lhs: Some(plan),
                        display: Some(display),
                    }
                }
                _ => {
                    return Err(Error::unknown_name(
                        "strategy wrapper",
                        name,
                        WRAPPER_NAMES.iter().map(|w| format!("{w}(base)")),
                    ))
                }
            }
        }
    };

    for m in &modifiers {
        match m.to_ascii_lowercase().as_str() {
            "density" => {
                resolved.strategy = resolved.strategy.with_density(DensityConfig::default())
            }
            "mmr" => resolved.strategy = resolved.strategy.with_mmr(MmrConfig::default()),
            "kcenter" => resolved.strategy = resolved.strategy.with_kcenter(),
            _ => {
                return Err(Error::unknown_name(
                    "strategy modifier",
                    m.as_str(),
                    ["density", "mmr", "kcenter"],
                ))
            }
        }
    }
    Ok(resolved)
}

// ---------------------------------------------------------------------
// Dataset registry
// ---------------------------------------------------------------------

/// Which task family a dataset reference belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Text classification (logreg / naive-bayes models).
    Text,
    /// Named-entity recognition (CRF model).
    Ner,
}

/// A resolved dataset reference: the generator spec plus the optional
/// `?key=value` modifiers of the token.
#[derive(Debug, Clone)]
pub enum DatasetDef {
    /// A text-classification corpus.
    Text {
        /// Generator spec (priors modifier already applied).
        spec: TextSpec,
        /// Fraction of pool labels to corrupt after the split
        /// (`?noise=RATE`); the corruption seed is `split_seed + 1`.
        noise: Option<f64>,
    },
    /// An NER corpus.
    Ner {
        /// Generator spec.
        spec: NerSpec,
    },
}

impl DatasetDef {
    /// Which task family this dataset drives.
    pub fn kind(&self) -> TaskKind {
        match self {
            Self::Text { .. } => TaskKind::Text,
            Self::Ner { .. } => TaskKind::Ner,
        }
    }
}

/// Parse a dataset token: a `histal-data` builder name optionally
/// followed by `?key=value&key=value` modifiers. Examples: `mr`,
/// `sst2`, `conll2003-en`, `mr?noise=0.1`, `mr?priors=0.8/0.2`.
pub fn parse_dataset(token: &str) -> Result<DatasetDef, Error> {
    let token = token.trim();
    let (name, mods) = match token.split_once('?') {
        Some((n, m)) => (n.trim(), Some(m)),
        None => (token, None),
    };
    let mut def = if let Some(spec) = TextSpec::by_name(name) {
        DatasetDef::Text { spec, noise: None }
    } else if let Some(spec) = NerSpec::by_name(name) {
        DatasetDef::Ner { spec }
    } else {
        let valid: Vec<&str> = TextSpec::NAMES
            .iter()
            .chain(NerSpec::NAMES.iter())
            .copied()
            .collect();
        return Err(Error::unknown_name("dataset", name, valid));
    };
    if let Some(mods) = mods {
        for part in mods.split('&') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part.split_once('=').ok_or_else(|| {
                Error::spec(format!("dataset modifier `{part}` is not key=value"))
            })?;
            match (k.trim(), &mut def) {
                ("noise", DatasetDef::Text { noise, .. }) => {
                    let rate: f64 = v
                        .parse()
                        .map_err(|_| Error::spec(format!("noise rate `{v}` is not a number")))?;
                    *noise = (rate > 0.0).then_some(rate);
                }
                ("priors", DatasetDef::Text { spec, .. }) => {
                    let priors: Result<Vec<f64>, _> =
                        v.split('/').map(|p| p.trim().parse::<f64>()).collect();
                    let priors = priors.map_err(|_| {
                        Error::spec(format!("priors `{v}` are not numbers separated by `/`"))
                    })?;
                    if priors.len() != spec.n_classes {
                        return Err(Error::spec(format!(
                            "dataset {} has {} classes but priors `{v}` list {}",
                            spec.name,
                            spec.n_classes,
                            priors.len()
                        )));
                    }
                    *spec = spec.clone().with_class_priors(priors);
                }
                (k, DatasetDef::Text { .. }) => {
                    return Err(Error::unknown_name(
                        "dataset modifier",
                        k,
                        ["noise", "priors"],
                    ))
                }
                (k, DatasetDef::Ner { .. }) => {
                    return Err(Error::spec(format!(
                        "modifier `{k}` is not supported for NER datasets"
                    )))
                }
            }
        }
    }
    Ok(def)
}

// ---------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------

/// A resolved report metric: one table column evaluated per run.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Final-point metric of the learning curve.
    Final,
    /// Area under the learning curve.
    Alc,
    /// Labels needed to first reach the target metric.
    Target(f64),
    /// Speed-up factor vs the named strategy in the same block: the mean
    /// over the reference curve's checkpoints of
    /// `labels_ref(m) / labels_self(m)` for every metric level `m` both
    /// curves reach (Kath et al.'s curve-ratio evaluation). > 1 means
    /// this strategy needs fewer labels than the reference.
    Speedup(String),
}

impl Metric {
    /// Column header for this metric.
    pub fn header(&self) -> String {
        match self {
            Self::Final => "Final accuracy".into(),
            Self::Alc => "ALC".into(),
            Self::Target(t) => format!("acc ≥ {t}"),
            Self::Speedup(r) => format!("speed-up vs {r}"),
        }
    }
}

/// Parse a metric token: `final`, `alc`, `target:T`, `speedup:REF`.
pub fn parse_metric(token: &str) -> Result<Metric, Error> {
    let token = token.trim();
    let lower = token.to_ascii_lowercase();
    match lower.as_str() {
        "final" => return Ok(Metric::Final),
        "alc" => return Ok(Metric::Alc),
        _ => {}
    }
    if let Some(t) = lower.strip_prefix("target:") {
        return t
            .parse()
            .map(Metric::Target)
            .map_err(|_| Error::spec(format!("target `{t}` is not a number")));
    }
    if let Some(r) = token
        .split_once(':')
        .and_then(|(k, r)| k.eq_ignore_ascii_case("speedup").then_some(r))
    {
        return Ok(Metric::Speedup(r.trim().to_string()));
    }
    Err(Error::unknown_name(
        "metric",
        token,
        ["final", "alc", "target:T", "speedup:REF"],
    ))
}

/// Evaluate `metric` for `result` into a formatted table cell. `budget`
/// is the cell's total label budget (for [`Metric::Target`]);
/// `block` is the result's report block (label → averaged run), the
/// lookup space for [`Metric::Speedup`] references.
pub fn evaluate_metric(
    metric: &Metric,
    result: &RunResult,
    budget: usize,
    block: &[(String, &RunResult)],
) -> String {
    match metric {
        Metric::Final => result
            .final_metric()
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| "n/a".into()),
        Metric::Alc => format!("{:.4}", area_under_curve(result)),
        Metric::Target(t) => format_cost(samples_to_target(result, *t), budget),
        Metric::Speedup(name) => {
            let Some((_, reference)) = block.iter().find(|(n, _)| n == name) else {
                return "n/a".into();
            };
            let mut ratios = Vec::new();
            for p in reference.curve.iter().skip(1) {
                let (Some(n_self), Some(n_ref)) = (
                    samples_to_target(result, p.metric),
                    samples_to_target(reference, p.metric),
                ) else {
                    continue;
                };
                if n_self > 0 {
                    ratios.push(n_ref as f64 / n_self as f64);
                }
            }
            if ratios.is_empty() {
                "n/a".into()
            } else {
                format!("{:.2}×", ratios.iter().sum::<f64>() / ratios.len() as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_core::error::ErrorKind;

    #[test]
    fn parse_bare_bases() {
        assert_eq!(
            parse_strategy("entropy").unwrap().strategy.name(),
            "entropy"
        );
        assert_eq!(parse_strategy("LC").unwrap().strategy.name(), "LC");
        assert_eq!(parse_strategy("random").unwrap().strategy.name(), "random");
        assert_eq!(
            parse_strategy("egl-word").unwrap().strategy.name(),
            "EGL-word"
        );
    }

    #[test]
    fn parse_wrapped_strategies() {
        assert_eq!(
            parse_strategy("WSHS(entropy)").unwrap().strategy.name(),
            "WSHS(entropy)"
        );
        assert_eq!(
            parse_strategy("fhs(LC)").unwrap().strategy.name(),
            "FHS(LC)"
        );
        assert_eq!(
            parse_strategy("HUS(EGL)").unwrap().strategy.name(),
            "HUS(EGL)"
        );
        assert_eq!(
            parse_strategy(" wshs( mnlp ) ").unwrap().strategy.name(),
            "WSHS(MNLP)"
        );
    }

    #[test]
    fn parse_wrapper_params() {
        let s = parse_strategy("WSHS{l=6}(entropy)").unwrap().strategy;
        assert_eq!(s.history, HistoryPolicy::Wshs { l: 6 });
        let s = parse_strategy("FHS{l=3,wf=0.2}(entropy)").unwrap().strategy;
        assert_eq!(
            s.history,
            HistoryPolicy::Fhs {
                l: 3,
                w_score: 1.0 - 0.2,
                w_fluct: 0.2
            }
        );
        // Defaults reproduce the hand-coded helpers.
        assert_eq!(
            parse_strategy("FHS(entropy)").unwrap().strategy.history,
            HistoryPolicy::Fhs {
                l: WINDOW,
                w_score: FHS_WS,
                w_fluct: FHS_WF
            }
        );
        let s = parse_strategy("HKLD{k=3}(entropy)").unwrap().strategy;
        assert_eq!(s.name(), "HKLD(k=3)");
    }

    #[test]
    fn parse_lhs_plans() {
        let r = parse_strategy("LHS(entropy)").unwrap();
        assert_eq!(r.strategy.name(), "entropy"); // seeds pair with the base
        assert_eq!(r.display_name(), "LHS(entropy)");
        let plan = r.lhs.unwrap();
        assert_eq!(plan.features.window, WINDOW);
        assert!(plan.features.use_history);
        let r = parse_strategy("LHS{fluctuation=false,predictor=ar:3,ranker=linear}(LC)").unwrap();
        let plan = r.lhs.unwrap();
        assert!(!plan.features.use_fluctuation);
        assert!(matches!(plan.predictor, PredictorKind::Ar { order: 3 }));
        assert!(matches!(plan.ranker, RankerKind::Linear(_)));
    }

    #[test]
    fn parse_lal_plans() {
        let r = parse_strategy("LAL(entropy)").unwrap();
        assert_eq!(r.strategy.name(), "entropy");
        assert_eq!(r.display_name(), "LAL(entropy)");
        let plan = r.lhs.unwrap();
        assert_eq!(plan.target, TargetKind::Pointwise);
        assert!(plan.use_meta, "LAL defaults to meta-features on");
        assert_eq!(plan.label(), "LAL(entropy)");
        // Classic LHS keeps its default cache key (no variant suffix)
        // while LAL hashes apart.
        let classic = parse_strategy("LHS(entropy)").unwrap().lhs.unwrap();
        assert_eq!(classic.variant(), None);
        assert!(plan.variant().is_some());
        assert_ne!(plan.cache_key(), classic.cache_key());
        // Meta can be toggled on either wrapper.
        let plan = parse_strategy("LAL{meta=off}(LC)").unwrap().lhs.unwrap();
        assert!(!plan.use_meta);
        assert_eq!(plan.label(), "LAL{meta=off}(LC)");
    }

    #[test]
    fn parse_train_modifier() {
        let r = parse_strategy("LHS{train=mr}(entropy)").unwrap();
        assert_eq!(r.display_name(), "LHS(entropy)@mr");
        let plan = r.lhs.unwrap();
        assert_eq!(plan.train.as_deref(), Some("mr"));
        assert_eq!(plan.label(), "LHS(entropy)@mr");
        assert_eq!(plan.variant().as_deref(), Some("train=mr"));
        let default = parse_strategy("LHS(entropy)").unwrap().lhs.unwrap();
        assert_ne!(plan.cache_key(), default.cache_key());
        // Unknown training datasets fail up front with the valid list.
        let e = parse_strategy("LHS{train=imdb}(entropy)").unwrap_err();
        assert!(matches!(
            e.kind,
            ErrorKind::UnknownName {
                what: "selector training dataset",
                ..
            }
        ));
        assert!(e.to_string().contains("mr"), "{e}");
    }

    #[test]
    fn unknown_selector_params_list_valid_names() {
        for token in ["LHS{bogus=1}(entropy)", "LAL{bogus=1}(entropy)"] {
            let e = parse_strategy(token).unwrap_err();
            let msg = e.to_string();
            assert!(matches!(e.kind, ErrorKind::UnknownName { .. }), "{msg}");
            assert!(msg.contains("bogus"), "{msg}");
            for valid in ["window", "predictor", "ranker", "meta", "train"] {
                assert!(msg.contains(valid), "{token}: {msg} missing {valid}");
            }
        }
    }

    #[test]
    fn parse_modifiers() {
        let s = parse_strategy("WSHS(entropy)+density+mmr")
            .unwrap()
            .strategy;
        assert!(s.density.is_some());
        assert!(s.mmr.is_some());
    }

    #[test]
    fn parse_errors_name_token_and_list_valid() {
        let e = parse_strategy("frobnicate").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("frobnicate"), "{msg}");
        assert!(
            msg.contains("entropy") && msg.contains("WSHS(base)"),
            "{msg}"
        );
        let e = parse_strategy("WSHS(entrpy)").unwrap_err();
        assert!(e.to_string().contains("entrpy"));
        let e = parse_strategy("XYZ(entropy)").unwrap_err();
        assert!(matches!(
            e.kind,
            ErrorKind::UnknownName {
                what: "strategy wrapper",
                ..
            }
        ));
        assert!(parse_strategy("WSHS{q=1}(entropy)").is_err());
        assert!(parse_strategy("").is_err());
    }

    #[test]
    fn parse_datasets_and_modifiers() {
        assert!(matches!(
            parse_dataset("mr").unwrap(),
            DatasetDef::Text { noise: None, .. }
        ));
        assert_eq!(parse_dataset("conll2003-en").unwrap().kind(), TaskKind::Ner);
        let DatasetDef::Text { spec, noise } = parse_dataset("mr?noise=0.1").unwrap() else {
            panic!("text dataset expected");
        };
        assert_eq!(noise, Some(0.1));
        assert!(spec.class_priors.is_none());
        let DatasetDef::Text { spec, .. } = parse_dataset("mr?priors=0.8/0.2").unwrap() else {
            panic!("text dataset expected");
        };
        assert_eq!(spec.class_priors, Some(vec![0.8, 0.2]));
        let e = parse_dataset("imdb").unwrap_err();
        assert!(e.to_string().contains("imdb") && e.to_string().contains("mr"));
        assert!(parse_dataset("conll2003-en?noise=0.1").is_err());
    }

    #[test]
    fn parse_metrics() {
        assert_eq!(parse_metric("final").unwrap(), Metric::Final);
        assert_eq!(parse_metric("alc").unwrap(), Metric::Alc);
        assert_eq!(parse_metric("target:0.72").unwrap(), Metric::Target(0.72));
        assert_eq!(
            parse_metric("speedup:entropy").unwrap(),
            Metric::Speedup("entropy".into())
        );
        assert!(parse_metric("auc").is_err());
    }

    #[test]
    fn speedup_metric_is_relative_label_cost() {
        use histal_core::driver::CurvePoint;
        let curve = |pts: &[(usize, f64)]| RunResult {
            strategy_name: "x".into(),
            curve: pts
                .iter()
                .map(|&(n_labeled, metric)| CurvePoint { n_labeled, metric })
                .collect(),
            rounds: vec![],
            history: vec![],
        };
        let slow = curve(&[(100, 0.5), (200, 0.6), (300, 0.7)]);
        let fast = curve(&[(100, 0.6), (200, 0.7), (300, 0.8)]);
        let block = vec![("base".to_string(), &slow)];
        // fast reaches 0.6 at 100 vs 200, 0.7 at 200 vs 300 → mean 1.75×.
        let cell = evaluate_metric(&Metric::Speedup("base".into()), &fast, 300, &block);
        assert_eq!(cell, "1.75×");
        // Missing reference degrades to n/a, not a panic.
        assert_eq!(
            evaluate_metric(&Metric::Speedup("nope".into()), &fast, 300, &block),
            "n/a"
        );
    }
}

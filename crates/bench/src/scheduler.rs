//! Adaptive scheduling layer: round-streamed successive halving over a
//! resolved grid.
//!
//! When a spec carries a [`crate::spec::PruneSpec`], the executor hands
//! its [`GridCtx`] here instead of fanning run-to-completion cells out.
//! Every `(cell, repeat)` becomes a *slot* holding a live
//! [`StreamRun`]; the scheduler advances all slots in lockstep to each
//! decision epoch (every `checkpoint` rounds), compares cells of the
//! same dataset on their completed-round metrics, and cuts dominated
//! cells short with [`StopReason::Pruned`].
//!
//! # Determinism rules
//!
//! * Decisions read **only completed-round curve points**, never
//!   partial-round state, so they are a pure function of the curves.
//! * A cell is pruned at epoch `p` iff some same-dataset cell beats it
//!   by ≥ `margin` on **every** repeat (strictly on at least one) at
//!   the epoch's curve point. The rule is order-independent and, with
//!   the strict clause, two cells can never prune each other.
//! * Slots advance serially in flattened cell order — there is no
//!   cross-slot parallelism, so thread scheduling can never reorder a
//!   decision.
//! * The prune policy joins [`crate::executor::cell_hash`], so a
//!   journal written under one policy never replays into another.
//!   Within a policy, a resumed run replays each completed slot's
//!   (possibly truncated) curve verbatim; decisions recompute from the
//!   same prefixes and land identically, byte for byte.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use histal_core::analysis::average_curves;
use histal_core::driver::RunResult;
use histal_core::error::Error;
use histal_core::stopping::StopReason;
use histal_obs::event;
use histal_obs::span;
use histal_obs::trace::Level;

use crate::cell_runner::{stream_repeat, CellOutcome, GridCtx};
use crate::tasks::StreamRun;

/// What adaptive execution did to the grid, for reports and BENCH.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveSummary {
    /// Cell-rounds (recorded curve points) an exhaustive run would
    /// execute: `slots × (rounds + 1)`.
    pub scheduled_cell_rounds: usize,
    /// Cell-rounds actually recorded across all slots.
    pub completed_cell_rounds: usize,
    /// Cells cut short by the pruning rule.
    pub pruned_cells: usize,
}

impl AdaptiveSummary {
    /// Cell-rounds the pruning rule avoided.
    pub fn saved_cell_rounds(&self) -> usize {
        self.scheduled_cell_rounds
            .saturating_sub(self.completed_cell_rounds)
    }
}

/// One `(cell, repeat)` execution slot.
#[allow(clippy::large_enum_variant)] // a handful of slots exist at once
enum SlotState {
    /// Replayed from the journal — the (possibly truncated) curve a
    /// previous run recorded under the same config hash.
    Cached(RunResult),
    /// A live round-streamed session.
    Live(StreamRun),
    /// Finished this run (naturally or pruned), record written.
    Finished(RunResult),
}

struct Slot {
    cell: usize,
    key: String,
    seed: u64,
    state: SlotState,
}

impl Slot {
    /// Completed-round curve points visible so far.
    fn points(&self) -> usize {
        match &self.state {
            SlotState::Cached(r) | SlotState::Finished(r) => r.curve.len(),
            SlotState::Live(run) => run.curve().len(),
        }
    }

    /// Metric of completed-round point `i`, if recorded.
    fn metric_at(&self, i: usize) -> Option<f64> {
        let curve = match &self.state {
            SlotState::Cached(r) | SlotState::Finished(r) => &r.curve,
            SlotState::Live(run) => run.curve(),
        };
        curve.get(i).map(|p| p.metric)
    }
}

/// Execute the grid adaptively: stream every slot round by round,
/// pruning dominated cells at each checkpoint epoch. Returns the cell
/// outcomes in flattened cell order plus the pruning summary.
pub(crate) fn execute_adaptive(
    ctx: &GridCtx<'_>,
) -> Result<(Vec<CellOutcome>, AdaptiveSummary), Error> {
    let prune = ctx
        .spec
        .prune
        .as_ref()
        .expect("adaptive path requires a prune policy");
    let checkpoint = prune.checkpoint_rounds();
    let margin = prune.margin_value();
    let repeats = ctx.scale.repeats;

    // Total curve points of each cell's runs (rounds + the initial
    // point). Uniform within a dataset; datasets may differ.
    let totals: Vec<usize> = ctx
        .cells
        .iter()
        .map(|cell| ctx.instances[cell.task].config().rounds + 1)
        .collect();

    // Materialise the slots, cell-major then repeat — replaying any the
    // journal already completed under this exact policy.
    let mut slots: Vec<Slot> = Vec::with_capacity(ctx.cells.len() * repeats);
    for c in 0..ctx.cells.len() {
        let hash = ctx.hash(c);
        for r in 0..repeats {
            let key = ctx.key(c, r);
            let seed = ctx.seed(c, r);
            let state = match ctx.journal.and_then(|j| j.cached(&key, hash)) {
                Some(cached) => {
                    event!(Level::Info, "journal.replay", cell = key.clone());
                    SlotState::Cached(cached.clone())
                }
                None => {
                    let journal = ctx.journal.map(|j| j.run_journal(&key, hash, seed));
                    SlotState::Live(stream_repeat(ctx, c, seed, journal))
                }
            };
            slots.push(Slot {
                cell: c,
                key,
                seed,
                state,
            });
        }
    }

    let mut alive: Vec<bool> = vec![true; ctx.cells.len()];
    let mut walls: Vec<f64> = vec![0.0; ctx.cells.len()];
    let mut pruned_cells = 0usize;

    // Advance one slot's live session to `target` completed points (or
    // natural completion), journaling the result when it finishes.
    let advance_to = |slot: &mut Slot, target: usize, walls: &mut [f64]| -> Result<(), Error> {
        let SlotState::Live(run) = &mut slot.state else {
            return Ok(());
        };
        if run.curve().len() >= target {
            return Ok(());
        }
        let start = Instant::now();
        let _span = span!(
            Level::Debug,
            "harness.cell",
            cell = slot.key.clone(),
            seed = slot.seed
        );
        let mut done = false;
        while !done && run.curve().len() < target {
            done = run.advance_round().map_err(|e| e.in_cell(&slot.key))?;
        }
        walls[slot.cell] += start.elapsed().as_secs_f64() * 1e3;
        if done {
            let result = run.finish(StopReason::RoundsExhausted);
            if let Some(j) = ctx.journal {
                j.try_complete(&slot.key, ctx.hash(slot.cell), slot.seed, &result)?;
            }
            slot.state = SlotState::Finished(result);
        }
        Ok(())
    };

    // Cut every live slot of a pruned cell short and checkpoint the
    // truncated result — an exact prefix of the exhaustive run.
    let prune_cell = |slots: &mut [Slot], c: usize| -> Result<(), Error> {
        for slot in slots.iter_mut().filter(|s| s.cell == c) {
            if let SlotState::Live(run) = &mut slot.state {
                let result = run.finish(StopReason::Pruned);
                if let Some(j) = ctx.journal {
                    j.try_complete(&slot.key, ctx.hash(c), slot.seed, &result)?;
                }
                slot.state = SlotState::Finished(result);
            }
        }
        Ok(())
    };

    let max_total = totals.iter().copied().max().unwrap_or(0);
    for k in 1.. {
        let p = k * checkpoint + 1;
        if p >= max_total {
            break;
        }
        // Lockstep: bring every surviving slot to the epoch's horizon.
        for slot in &mut slots {
            if alive[slot.cell] {
                advance_to(slot, p.min(totals[slot.cell]), &mut walls)?;
            }
        }
        // Decide from the snapshot of survivors — the rule is
        // order-independent, so computing the doomed set before
        // applying it keeps resume byte-identical trivially.
        let survivors: Vec<usize> = (0..ctx.cells.len()).filter(|&c| alive[c]).collect();
        let metric = |c: usize, i: usize| -> Option<Vec<f64>> {
            slots
                .iter()
                .filter(|s| s.cell == c)
                .map(|s| s.metric_at(i))
                .collect()
        };
        let mut doomed: Vec<usize> = Vec::new();
        for &a in &survivors {
            if totals[a] <= p {
                continue; // already complete — nothing left to save
            }
            let Some(ma) = metric(a, p - 1) else {
                continue;
            };
            let dominated = survivors.iter().any(|&b| {
                if b == a || ctx.cells[b].task != ctx.cells[a].task {
                    return false;
                }
                let Some(mb) = metric(b, p - 1) else {
                    return false;
                };
                let all = ma.iter().zip(&mb).all(|(a, b)| *b >= *a + margin);
                let strict = ma.iter().zip(&mb).any(|(a, b)| *b > *a + margin);
                all && strict
            });
            if dominated {
                doomed.push(a);
            }
        }
        for c in doomed {
            prune_cell(&mut slots, c)?;
            alive[c] = false;
            pruned_cells += 1;
        }
    }
    // Run the survivors out to their full horizon.
    for slot in &mut slots {
        if alive[slot.cell] {
            advance_to(slot, totals[slot.cell], &mut walls)?;
        }
    }

    let completed_cell_rounds: usize = slots.iter().map(Slot::points).sum();
    let summary = AdaptiveSummary {
        scheduled_cell_rounds: slots.iter().map(|s| totals[s.cell]).sum(),
        completed_cell_rounds,
        pruned_cells,
    };

    // Fold the slots back into per-cell outcomes, repeat order.
    let mut outcomes: Vec<CellOutcome> = Vec::with_capacity(ctx.cells.len());
    let mut slots = slots.into_iter();
    for (c, cell) in ctx.cells.iter().enumerate() {
        let runs: Vec<RunResult> = slots
            .by_ref()
            .take(repeats)
            .map(|s| match s.state {
                SlotState::Cached(r) | SlotState::Finished(r) => r,
                SlotState::Live(_) => unreachable!("slot left live after final advance"),
            })
            .collect();
        let mut avg = average_curves(&runs);
        avg.strategy_name = cell.display.clone();
        outcomes.push(CellOutcome {
            name: cell.display.clone(),
            avg,
            runs,
            wall_ms: walls[c],
        });
    }
    eprintln!(
        "# adaptive: pruned {}/{} cells, saved {}/{} cell-rounds",
        summary.pruned_cells,
        ctx.cells.len(),
        summary.saved_cell_rounds(),
        summary.scheduled_cell_rounds
    );
    Ok((outcomes, summary))
}

//! Generic grid executor behind the declarative experiment engine.
//!
//! [`GridExecutor`] turns an [`ExperimentSpec`] into results: it
//! resolves datasets/strategies through [`crate::registry`], trains any
//! LHS selectors the spec needs (deduplicated by training plan), flattens
//! the `(dataset × group × strategy)` grid into a [`crate::cell_runner::GridCtx`],
//! and dispatches it to one of two execution paths:
//!
//! * **classic** (no `prune` policy): cells fan out across the rayon
//!   pool run-to-completion, each cell fanning its repeats out in turn
//!   ([`crate::cell_runner::run_classic`]) — byte-identical to the
//!   pre-split executor;
//! * **adaptive** (`prune` set): every `(cell, repeat)` streams round
//!   by round under the successive-halving scheduler
//!   ([`crate::scheduler`]), which cuts dominated cells short.
//!
//! Outcomes are grouped back into report blocks either way.
//! [`render_spec`] then prints the blocks according to the spec's
//! [`ReportKind`] and produces the JSON payload [`write_rendered`]
//! persists.
//!
//! # Determinism contract (journal-key compatibility)
//!
//! Seeds and journal cell keys are derived **only** from
//! `(experiment, dataset, strategy, repeat)` — [`seed_for`] via FNV-1a,
//! cell keys as `{experiment}/{dataset}/{strategy}/r{repeat}`, and the
//! replay guard via [`cell_hash`]. `dataset` is always the *generated*
//! corpus name (`task.name`, e.g. `MR`) and `strategy` the resolved
//! strategy's canonical `Strategy::name()` — never a spec `rename`, and
//! for `LHS(...)` tokens the *base* strategy's name. Display renames
//! therefore never move a cell's RNG stream or its journal key, which is
//! what keeps spec-driven runs byte-identical to the historical
//! hand-coded grids and lets pre-refactor journals resume under the
//! engine. Do not fold new inputs into these derivations.

use histal_core::analysis::{area_under_curve, selection_stats};
use histal_core::driver::{CurvePoint, PoolConfig, RunResult};
use histal_core::error::Error;
use histal_core::lhs::{
    train_learned_artifacts, LearnedTrainerConfig, LhsArtifacts, LhsSelector, LhsTrainerConfig,
    TargetKind,
};
use histal_core::session::fingerprint;
use histal_core::stats::{paired_bootstrap_ci, paired_permutation, PairedComparison};
use histal_core::strategy::Strategy;
use histal_data::TextSpec;
use histal_obs::span;
use histal_obs::trace::Level;

pub use crate::cell_runner::CellOutcome;
use crate::cell_runner::{run_classic, Cell, GridCtx, TaskInstance};
use crate::journal::JournalCtx;
use crate::registry::{self, DatasetDef, LhsPlan, Metric};
use crate::report::{print_curves, print_table, write_json};
use crate::scheduler::{execute_adaptive, AdaptiveSummary};
use crate::spec::{
    render_template, BudgetSpec, ExperimentSpec, PruneSpec, ReportKind, SignificanceSpec,
};
use crate::tasks::{NerTask, Scale, TextModel, TextTask};

/// Pool configuration for a text dataset: the paper samples 20 batches of
/// 25 (MR, SST-2) or 100 (TREC), the first batch random.
pub fn text_pool_config(trec_like: bool, scale: &Scale) -> PoolConfig {
    let batch = if trec_like { 100 } else { 25 };
    PoolConfig {
        batch_size: batch,
        rounds: rounds_for(scale),
        init_labeled: batch,
        history_max_len: None,
        record_history: false,
        ann: None,
    }
}

/// NER pool configuration: batch 100 up to 2 000 annotated sentences.
pub fn ner_pool_config(scale: &Scale) -> PoolConfig {
    PoolConfig {
        batch_size: 100,
        rounds: rounds_for(scale),
        init_labeled: 100,
        history_max_len: None,
        record_history: false,
        ann: None,
    }
}

/// 19 selection rounds at full scale (init batch + 19 batches = the
/// paper's 20 sampling rounds); scaled down for quick runs.
pub fn rounds_for(scale: &Scale) -> usize {
    ((19.0 * scale.factor).round() as usize).clamp(5, 19)
}

/// Per-repeat seed derivation (FNV-1a over
/// `experiment ‖ dataset ‖ strategy ‖ repeat`). Part of the determinism
/// contract — see the module docs before changing anything here.
pub fn seed_for(experiment: &str, dataset: &str, strategy: &str, repeat: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment
        .bytes()
        .chain(dataset.bytes())
        .chain(strategy.bytes())
        .chain([repeat as u8])
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of everything that determines a grid cell's output besides the
/// seed. A resumed journal only replays a cell when this matches, so a
/// journal written at one scale or pool config is never mixed into a run
/// at another. The strategy goes in via its full `Debug` form, not its
/// display name — variants that share a name but differ in
/// hyper-parameters (fig5's WSHS window sweep) must hash apart.
#[allow(clippy::too_many_arguments)]
pub fn cell_hash(
    experiment: &str,
    dataset: &str,
    strategy: &Strategy,
    config: &PoolConfig,
    scale: &Scale,
    lhs: bool,
    lhs_variant: Option<&str>,
    ner_beam: Option<f64>,
    budget: Option<&BudgetSpec>,
    prune: Option<&PruneSpec>,
) -> u64 {
    // The beam width is part of the hash because pruned scoring changes
    // cell bytes: a journal written exact must never replay into a
    // beamed grid or vice versa. Exact cells omit the component so they
    // hash identically to journals written before the beam existed.
    let strategy_dbg = format!("{strategy:?}");
    let pool = format!(
        "batch={} rounds={} init={}",
        config.batch_size, config.rounds, config.init_labeled
    );
    let scale_s = format!("factor={} repeats={}", scale.factor, scale.repeats);
    let lhs_s = if lhs { "lhs" } else { "no-lhs" };
    let mut parts: Vec<&str> = vec![experiment, dataset, &strategy_dbg, &pool, &scale_s, lhs_s];
    // Non-classic selector configurations (LAL targets, meta-features,
    // train= overrides) change cell bytes, so the variant tag joins the
    // hash — but only when set: classic LHS cells keep hashing
    // identically to journals written before the variants existed.
    let variant_s;
    if let Some(v) = lhs_variant {
        variant_s = format!("selector={v}");
        parts.push(&variant_s);
    }
    let beam;
    if let Some(b) = ner_beam {
        beam = format!("beam={b}");
        parts.push(&beam);
    }
    // Same rule for ANN: approximate neighbor sets change cell bytes, so
    // the component joins the hash only when set — exact (`ann=off`)
    // cells keep hashing identically to journals written before the
    // index existed, which is what lets them resume unchanged.
    let ann;
    if let Some(a) = &config.ann {
        ann = format!("ann=t{}b{}p{}", a.tables, a.bits, a.probes);
        parts.push(&ann);
    }
    // Budget and prune policies change cell bytes (fewer rounds,
    // truncated curves), so they join the hash — but, like beam/ann,
    // only when set: specs without them keep hashing identically to
    // journals written before the policies existed.
    let budget_s;
    if let Some(b) = budget {
        budget_s = format!(
            "budget=c{}m{}",
            b.cost_per_label.unwrap_or(1.0),
            b.max_cost.unwrap_or(f64::INFINITY)
        );
        parts.push(&budget_s);
    }
    let prune_s;
    if let Some(p) = prune {
        prune_s = format!("prune=c{}m{}", p.checkpoint_rounds(), p.margin_value());
        parts.push(&prune_s);
    }
    fingerprint(&parts)
}

/// The learned-trainer configuration a spec-level plan lowers into:
/// the historical Subj-analogue protocol's simulation parameters, with
/// the plan's feature/predictor/ranker/target choices on top.
fn learned_config(plan: &LhsPlan) -> LearnedTrainerConfig {
    LearnedTrainerConfig {
        trainer: LhsTrainerConfig {
            base: plan.base,
            rounds: 8,
            candidates_per_round: 24,
            init_labeled: 25,
            add_per_round: 5,
            level_interval: 0.0,
            features: plan.features,
            predictor: plan.predictor.clone(),
            ranker: plan.ranker.clone(),
            selector_candidate_pool: 75,
        },
        target: plan.target,
        use_meta: plan.use_meta,
    }
}

/// The `(experiment, dataset)` pair a plan's training seed derives from.
/// Classic pairwise plans keep the historical `("lhs-train", "subj")`
/// stream byte-for-byte; pointwise (LAL) plans get their own experiment
/// id, and `train=DATASET` swaps the dataset component.
fn train_seed_parts(plan: &LhsPlan) -> (&'static str, &str) {
    let experiment = match plan.target {
        TargetKind::Pairwise => "lhs-train",
        TargetKind::Pointwise => "lal-train",
    };
    (experiment, plan.train.as_deref().unwrap_or("subj"))
}

/// Train the learned selector per a spec-level training plan — §4.4's
/// protocol: "train a ranker on an applicable labeled dataset and apply
/// it on other unlabeled datasets of the same task". The training corpus
/// defaults to the Subj analogue; `train=DATASET` substitutes any text
/// dataset (the transfer grid's rows). Training failures propagate as
/// structured errors.
pub fn train_lhs_plan(plan: &LhsPlan, scale: &Scale) -> Result<LhsSelector, Error> {
    Ok(train_lhs_plan_artifacts(plan, scale)?.into_selector())
}

/// [`train_lhs_plan`] in serializable form — the `selector-train` CLI
/// saves the returned artifacts as an `HLRN1` file.
pub fn train_lhs_plan_artifacts(plan: &LhsPlan, scale: &Scale) -> Result<LhsArtifacts, Error> {
    let (experiment, train_name) = train_seed_parts(plan);
    let tspec = match &plan.train {
        None => TextSpec::subj(),
        Some(name) => TextSpec::by_name(name)
            .ok_or_else(|| Error::spec(format!("unknown selector training dataset `{name}`")))?,
    };
    let corpus = TextTask::build(&tspec, scale, 0x53_42);
    train_learned_artifacts(
        &corpus.model(0),
        &corpus.pool_docs,
        &corpus.pool_labels,
        &corpus.test_docs,
        &corpus.test_labels,
        &learned_config(plan),
        seed_for(experiment, train_name, plan.base.name(), 0),
    )
}

/// One report block: the cells of one `(dataset × group)` pair.
pub struct Block {
    /// Dataset display label (spec rename, or the generated corpus name).
    pub dataset: String,
    /// Group label (for `{label}` templates).
    pub label: String,
    /// The block's pool configuration (budget, checkpoint maths).
    pub config: PoolConfig,
    /// Executed cells in spec order.
    pub cells: Vec<CellOutcome>,
}

impl Block {
    /// Total label budget of the block's cells (annotations consumed by
    /// a full run: the seed set plus every selection batch).
    pub fn label_budget(&self) -> usize {
        self.config.init_labeled + self.config.batch_size * self.config.rounds
    }
}

/// The executed grid, grouped into report blocks in spec order.
pub struct GridOutcome {
    /// One block per `(dataset × group)` pair that produced cells.
    pub blocks: Vec<Block>,
    /// Pruning summary when the spec ran under the adaptive scheduler;
    /// `None` on the classic run-to-completion path.
    pub adaptive: Option<AdaptiveSummary>,
    /// Wall clock of each *fresh* selector training this grid performed,
    /// as `(plan label, ms)` in training order. Deduplicated plans
    /// appear once; grids without learned selectors leave it empty.
    pub selector_train_ms: Vec<(String, f64)>,
}

/// Executes one [`ExperimentSpec`] deterministically.
pub struct GridExecutor<'a> {
    spec: &'a ExperimentSpec,
    scale: Scale,
    journal: Option<&'a JournalCtx>,
    serial: bool,
}

impl<'a> GridExecutor<'a> {
    /// Build an executor; `cli_scale` supplies whatever the spec's
    /// `scale` section leaves unset (spec fields win, so a spec can pin
    /// e.g. `repeats: 1` regardless of the command line).
    pub fn new(spec: &'a ExperimentSpec, cli_scale: &Scale) -> Self {
        let mut scale = *cli_scale;
        if let Some(s) = &spec.scale {
            if let Some(f) = s.factor {
                scale.factor = f;
            }
            if let Some(r) = s.repeats {
                scale.repeats = r;
            }
        }
        Self {
            spec,
            scale,
            journal: None,
            serial: false,
        }
    }

    /// Attach a journal context: every `(cell, repeat)` is checkpointed
    /// and previously completed cells replay instead of re-running.
    pub fn journal(mut self, journal: Option<&'a JournalCtx>) -> Self {
        self.journal = journal;
        self
    }

    /// Run cells one at a time instead of fanning them out — for BENCH,
    /// where each cell's wall clock must be unpolluted by its
    /// neighbours. Repeats still fan out inside the cell.
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// The effective scale (CLI overridden by the spec).
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    fn apply_pool(&self, mut config: PoolConfig) -> PoolConfig {
        if let Some(p) = &self.spec.pool {
            if let Some(b) = p.batch_size {
                config.batch_size = b;
            }
            if let Some(r) = p.rounds {
                config.rounds = r;
            }
            if let Some(i) = p.init_labeled {
                config.init_labeled = i;
            }
            if p.record_history {
                config.record_history = true;
            }
        }
        if let Some(a) = &self.spec.ann {
            config.ann = Some(a.to_config());
        }
        // An annotation budget lowers the round count to what the spec
        // can afford — a shorter run is an exact RNG prefix of the full
        // one, so this composes with journaling and the scheduler.
        if let Some(b) = &self.spec.budget {
            config.rounds = config
                .rounds
                .min(b.affordable_rounds(config.init_labeled, config.batch_size));
        }
        if self.spec.report == ReportKind::TrendCensus {
            config.record_history = true;
        }
        config
    }

    /// Execute the grid. Validates the spec, builds every dataset,
    /// trains the (deduplicated) LHS selectors, then runs all cells.
    /// The first failing cell aborts the grid with an error naming its
    /// cell key.
    pub fn execute(&self) -> Result<GridOutcome, Error> {
        let spec = self.spec;
        spec.validate()?;
        let _span = span!(Level::Info, "harness.experiment", name = spec.name.clone());

        let model = match spec.model.as_deref() {
            Some("nb") => TextModel::NaiveBayes,
            _ => TextModel::LogReg,
        };
        let representations = spec.pool.as_ref().is_some_and(|p| p.representations);

        // Datasets → built tasks with per-kind pool configs.
        let mut instances: Vec<TaskInstance> = Vec::new();
        for d in &spec.datasets {
            match registry::parse_dataset(&d.dataset)? {
                DatasetDef::Text { spec: tspec, noise } => {
                    let trec_like = tspec.n_classes > 2;
                    let mut task = TextTask::build(&tspec, &self.scale, spec.split_seed);
                    if let Some(rate) = noise {
                        histal_data::corrupt_labels(
                            &mut task.pool_labels,
                            task.n_classes,
                            rate,
                            spec.split_seed + 1,
                        );
                    }
                    let config = self.apply_pool(text_pool_config(trec_like, &self.scale));
                    instances.push(TaskInstance::Text {
                        task,
                        config,
                        trec_like,
                    });
                }
                DatasetDef::Ner { spec: nspec } => {
                    let mut task = NerTask::build(&nspec, &self.scale);
                    task.score_beam = spec.ner_beam;
                    let config = self.apply_pool(ner_pool_config(&self.scale));
                    instances.push(TaskInstance::Ner { task, config });
                }
            }
        }

        // Strategies: resolve every entry once, train each distinct LHS
        // plan once (serially, before the fan-out).
        let mut resolved: Vec<Vec<(registry::ResolvedStrategy, Option<usize>)>> = Vec::new();
        let mut selectors: Vec<LhsSelector> = Vec::new();
        let mut selector_keys: Vec<String> = Vec::new();
        let mut selector_train_ms: Vec<(String, f64)> = Vec::new();
        for group in &spec.groups {
            let mut row = Vec::new();
            for entry in &group.strategies {
                let r = registry::parse_strategy(&entry.strategy)?;
                let lhs = match &r.lhs {
                    None => None,
                    Some(plan) => {
                        if representations {
                            return Err(Error::spec(format!(
                                "strategy `{}`: LHS selectors cannot be combined with \
                                 `pool.representations`",
                                entry.strategy
                            )));
                        }
                        let key = plan.cache_key();
                        let idx = match selector_keys.iter().position(|k| *k == key) {
                            Some(i) => i,
                            None => {
                                let start = std::time::Instant::now();
                                selectors.push(train_lhs_plan(plan, &self.scale)?);
                                selector_train_ms
                                    .push((plan.label(), start.elapsed().as_secs_f64() * 1e3));
                                selector_keys.push(key);
                                selectors.len() - 1
                            }
                        };
                        Some(idx)
                    }
                };
                row.push((r, lhs));
            }
            resolved.push(row);
        }

        // Flatten the grid, dataset-major, skipping LHS cells on
        // multiclass text datasets (the selector is trained on binary
        // Subj — matches the historical fig3 grid).
        let mut cells: Vec<Cell> = Vec::new();
        for (ti, inst) in instances.iter().enumerate() {
            let multiclass = matches!(
                inst,
                TaskInstance::Text {
                    trec_like: true,
                    ..
                }
            );
            for (gi, group) in spec.groups.iter().enumerate() {
                for (ei, entry) in group.strategies.iter().enumerate() {
                    let (r, lhs) = &resolved[gi][ei];
                    if lhs.is_some() && multiclass {
                        continue;
                    }
                    cells.push(Cell {
                        task: ti,
                        group: gi,
                        strategy: r.strategy.clone(),
                        lhs: *lhs,
                        lhs_variant: r.lhs.as_ref().and_then(|p| p.variant()),
                        display: entry.rename.clone().unwrap_or_else(|| r.display_name()),
                        experiment: entry
                            .experiment
                            .clone()
                            .unwrap_or_else(|| spec.experiment_id().to_string()),
                    });
                }
            }
        }

        let ctx = GridCtx {
            spec,
            scale: self.scale,
            journal: self.journal,
            model,
            representations,
            instances,
            selectors,
            cells,
        };

        // Dispatch: specs with a prune policy stream rounds under the
        // adaptive scheduler; everything else takes the classic
        // run-to-completion fan-out (byte-identical to the pre-split
        // executor).
        let (outcomes, adaptive) = if spec.prune.is_some() {
            let (outcomes, summary) = execute_adaptive(&ctx)?;
            let outcomes: Vec<Result<CellOutcome, Error>> = outcomes.into_iter().map(Ok).collect();
            (outcomes, Some(summary))
        } else {
            let run_one = |c: usize| run_classic(&ctx, c);
            let outcomes: Vec<Result<CellOutcome, Error>> = if self.serial {
                (0..ctx.cells.len()).map(run_one).collect()
            } else {
                rayon::run_indexed(ctx.cells.len(), run_one)
            };
            (outcomes, None)
        };

        // Regroup consecutive cells per (dataset, group) into blocks —
        // output order matches the historical serial nested loops.
        let mut blocks: Vec<Block> = Vec::new();
        let mut last_key = None;
        for (cell, outcome) in ctx.cells.iter().zip(outcomes) {
            let outcome = outcome?;
            let key = (cell.task, cell.group);
            if last_key != Some(key) {
                last_key = Some(key);
                blocks.push(Block {
                    dataset: spec.datasets[cell.task]
                        .rename
                        .clone()
                        .unwrap_or_else(|| ctx.instances[cell.task].name().to_string()),
                    label: spec.groups[cell.group].label.clone(),
                    config: ctx.instances[cell.task].config().clone(),
                    cells: Vec::new(),
                });
            }
            blocks
                .last_mut()
                .expect("block pushed above")
                .cells
                .push(outcome);
        }
        Ok(GridOutcome {
            blocks,
            adaptive,
            selector_train_ms,
        })
    }
}

/// One block's curve series: `(strategy display name, curve points)`.
pub type CurveSeries = Vec<(String, Vec<CurvePoint>)>;

/// JSON payload produced by [`render_spec`], mirroring the historical
/// per-figure shapes so `results/*.json` files stay byte-compatible.
pub enum Rendered {
    /// Curves grouped per block under a `json_key` template
    /// (fig3-style).
    Grouped(Vec<(String, CurveSeries)>),
    /// One flat curve list across all blocks (fig5-style).
    Flat(CurveSeries),
    /// Table rows (metrics / timing / stats reports).
    Rows(Vec<Vec<String>>),
}

/// Render an executed grid: print the spec's tables/curves and return
/// the JSON payload to persist.
pub fn render_spec(spec: &ExperimentSpec, outcome: &GridOutcome) -> Result<Rendered, Error> {
    match spec.report {
        ReportKind::Curves => Ok(render_curves(spec, outcome)),
        ReportKind::Metrics => render_metrics(spec, outcome),
        ReportKind::Timing => Ok(render_timing(spec, outcome)),
        ReportKind::SelectionStats => Ok(render_selection_stats(spec, outcome)),
        ReportKind::TrendCensus => Ok(render_trend_census(spec, outcome)),
        ReportKind::Checkpoints => Ok(render_checkpoints(spec, outcome)),
    }
}

/// Persist a rendered payload as `results/{name}.json`.
pub fn write_rendered(name: &str, rendered: &Rendered) {
    match rendered {
        Rendered::Grouped(g) => write_json(name, g),
        Rendered::Flat(f) => write_json(name, f),
        Rendered::Rows(r) => write_json(name, r),
    }
}

/// Execute + render + persist one spec — the whole figure/table pipeline.
pub fn run_spec(
    spec: &ExperimentSpec,
    cli_scale: &Scale,
    journal: Option<&JournalCtx>,
) -> Result<GridOutcome, Error> {
    let outcome = GridExecutor::new(spec, cli_scale)
        .journal(journal)
        .execute()?;
    let rendered = render_spec(spec, &outcome)?;
    write_rendered(&spec.name, &rendered);
    Ok(outcome)
}

fn render_curves(spec: &ExperimentSpec, outcome: &GridOutcome) -> Rendered {
    for block in &outcome.blocks {
        let title = render_template(&spec.title, &block.dataset, &block.label);
        let results: Vec<RunResult> = block.cells.iter().map(|c| c.avg.clone()).collect();
        print_curves(&title, &results);
    }
    let curves = |block: &Block| -> CurveSeries {
        block
            .cells
            .iter()
            .map(|c| (c.name.clone(), c.avg.curve.clone()))
            .collect()
    };
    match &spec.json_key {
        Some(template) => Rendered::Grouped(
            outcome
                .blocks
                .iter()
                .map(|b| (render_template(template, &b.dataset, &b.label), curves(b)))
                .collect(),
        ),
        None => Rendered::Flat(outcome.blocks.iter().flat_map(&curves).collect()),
    }
}

fn render_metrics(spec: &ExperimentSpec, outcome: &GridOutcome) -> Result<Rendered, Error> {
    let metrics: Vec<Metric> = spec
        .metrics
        .iter()
        .map(|m| registry::parse_metric(m))
        .collect::<Result<_, _>>()?;
    let dataset_col = spec.dataset_column.is_some() || spec.datasets.len() > 1;
    let mut rows = Vec::new();
    for block in &outcome.blocks {
        let lookup: Vec<(String, &RunResult)> = block
            .cells
            .iter()
            .map(|c| (c.name.clone(), &c.avg))
            .collect();
        for cell in &block.cells {
            let mut row = Vec::new();
            if dataset_col {
                row.push(block.dataset.clone());
            }
            row.push(cell.name.clone());
            for m in &metrics {
                row.push(registry::evaluate_metric(
                    m,
                    &cell.avg,
                    block.label_budget(),
                    &lookup,
                ));
            }
            rows.push(row);
        }
    }
    let mut header: Vec<String> = Vec::new();
    if dataset_col {
        header.push(
            spec.dataset_column
                .clone()
                .unwrap_or_else(|| "Dataset".into()),
        );
    }
    header.push("Strategy".into());
    header.extend(metrics.iter().map(|m| m.header()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&spec.title, &header_refs, &rows);
    if let Some(sig) = &spec.significance {
        rows.extend(render_significance(sig, outcome)?);
    }
    Ok(Rendered::Rows(rows))
}

/// Paired per-repeat metric samples of `cell` vs `baseline`: every
/// `(repeat, round)` coordinate both curves recorded. Truncated
/// (pruned/budgeted) curves pair only over their common prefix.
fn paired_samples(cell: &CellOutcome, baseline: &CellOutcome) -> (Vec<f64>, Vec<f64>) {
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (run, base) in cell.runs.iter().zip(&baseline.runs) {
        for (p, q) in run.curve.iter().zip(&base.curve) {
            a.push(p.metric);
            b.push(q.metric);
        }
    }
    (a, b)
}

/// Render the paired-significance table of a metrics report: every
/// non-baseline cell vs the spec's baseline, per block, with a
/// bootstrap CI (or permutation interval), a p-value, and a win/loss
/// verdict over the paired per-round deltas.
fn render_significance(
    sig: &SignificanceSpec,
    outcome: &GridOutcome,
) -> Result<Vec<Vec<String>>, Error> {
    let method = sig.method.as_deref().unwrap_or("bootstrap");
    let iters = sig.iters.unwrap_or(2000);
    let alpha = sig.alpha.unwrap_or(0.05);
    let seed = sig.seed.unwrap_or(0x51);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for block in &outcome.blocks {
        // The baseline can be legitimately absent from a block (LHS
        // cells are skipped on multiclass datasets) — skip the block.
        let Some(baseline) = block.cells.iter().find(|c| c.name == sig.baseline) else {
            continue;
        };
        for cell in &block.cells {
            if cell.name == sig.baseline {
                continue;
            }
            let (a, b) = paired_samples(cell, baseline);
            let cmp: PairedComparison = match method {
                "permutation" => paired_permutation(&a, &b, iters, seed, alpha),
                _ => paired_bootstrap_ci(&a, &b, iters, seed, alpha),
            };
            rows.push(vec![
                block.dataset.clone(),
                cell.name.clone(),
                format!("{:+.4}", cmp.mean_diff),
                format!("[{:+.4}, {:+.4}]", cmp.ci_low, cmp.ci_high),
                format!("{:.4}", cmp.p_value),
                cmp.verdict(alpha).to_string(),
                format!("{}-{}-{}", cmp.wins, cmp.losses, cmp.ties),
            ]);
        }
    }
    let title = format!("Significance vs {} ({method}, alpha={alpha})", sig.baseline);
    print_table(
        &title,
        &[
            "Dataset", "Strategy", "d-mean", "CI", "p", "verdict", "W-L-T",
        ],
        &rows,
    );
    Ok(rows)
}

fn render_timing(spec: &ExperimentSpec, outcome: &GridOutcome) -> Rendered {
    let mut rows = Vec::new();
    for cell in outcome.blocks.iter().flat_map(|b| &b.cells) {
        let rounds: Vec<_> = cell.runs.iter().flat_map(|r| &r.rounds).collect();
        let n = rounds.len().max(1) as f64;
        let fit: f64 = rounds.iter().map(|r| r.fit_ms).sum::<f64>() / n;
        let eval: f64 = rounds.iter().map(|r| r.eval_ms).sum::<f64>() / n;
        let score: f64 = rounds.iter().map(|r| r.score_ms).sum::<f64>() / n;
        let select: f64 = rounds.iter().map(|r| r.select_ms).sum::<f64>() / n;
        rows.push(vec![
            cell.name.clone(),
            format!("{fit:.2}"),
            format!("{eval:.2}"),
            format!("{score:.3}"),
            format!("{select:.3}"),
        ]);
    }
    print_table(
        &spec.title,
        &[
            "Strategy",
            "train (ms)",
            "evaluate pool O(T) (ms)",
            "history fold (ms)",
            "select (ms)",
        ],
        &rows,
    );
    Rendered::Rows(rows)
}

fn render_selection_stats(spec: &ExperimentSpec, outcome: &GridOutcome) -> Rendered {
    let mut rows = Vec::new();
    for cell in outcome.blocks.iter().flat_map(|b| &b.cells) {
        let n = cell.runs.len() as f64;
        let (mut w, mut f) = (0.0, 0.0);
        for r in &cell.runs {
            let s = selection_stats(r);
            w += s.mean_wshs;
            f += s.mean_fluct;
        }
        rows.push(vec![
            cell.name.clone(),
            format!("{:.4}", w / n),
            format!("{:.6}", f / n),
        ]);
    }
    print_table(
        &spec.title,
        &["Method", "WSHS score", "FHS (fluctuation) score"],
        &rows,
    );
    Rendered::Rows(rows)
}

fn render_trend_census(spec: &ExperimentSpec, outcome: &GridOutcome) -> Rendered {
    use histal_tseries::{mann_kendall, variance, Trend};

    let block = outcome.blocks.first();
    let seqs: &[Vec<f64>] = block
        .and_then(|b| b.cells.first())
        .and_then(|c| c.runs.first())
        .map(|r| r.history.as_slice())
        .unwrap_or(&[]);
    // Census over samples that survived all rounds unlabeled.
    let full_len = block.map(|b| b.config.rounds).unwrap_or(0);
    let mut counts = [0usize; 4]; // stable, increasing, decreasing, fluctuating
    let mut exemplar: [Option<Vec<f64>>; 4] = [None, None, None, None];
    let mut vars: Vec<f64> = seqs
        .iter()
        .filter(|s| s.len() == full_len)
        .map(|s| variance(s))
        .collect();
    vars.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let var_hi = vars.get(vars.len() * 3 / 4).copied().unwrap_or(0.0);
    for s in seqs.iter().filter(|s| s.len() == full_len) {
        let mk = mann_kendall(s);
        let class = match mk.trend() {
            Trend::Increasing => 1,
            Trend::Decreasing => 2,
            Trend::NoTrend => {
                if variance(s) > var_hi {
                    3
                } else {
                    0
                }
            }
        };
        counts[class] += 1;
        if exemplar[class].is_none() {
            exemplar[class] = Some(s.clone());
        }
    }
    let names = [
        "(a) stable",
        "(b) increasing",
        "(c) decreasing",
        "(d) fluctuating",
    ];
    let total: usize = counts.iter().sum();
    let mut rows = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let example = exemplar[i]
            .as_ref()
            .map(|s| {
                s.iter()
                    .rev()
                    .take(5)
                    .rev()
                    .map(|v| format!("{v:.2}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default();
        rows.push(vec![
            name.to_string(),
            counts[i].to_string(),
            format!("{:.1}%", 100.0 * counts[i] as f64 / total.max(1) as f64),
            example,
        ]);
    }
    print_table(
        &spec.title,
        &["Shape", "#samples", "share", "example (last 5 scores)"],
        &rows,
    );
    Rendered::Rows(rows)
}

fn render_checkpoints(spec: &ExperimentSpec, outcome: &GridOutcome) -> Rendered {
    // Accuracy checkpoints: five evenly spaced label budgets.
    let checkpoints: Vec<usize> = outcome
        .blocks
        .first()
        .map(|b| {
            (1..=5)
                .map(|k| b.config.init_labeled + b.config.batch_size * (k * b.config.rounds / 5))
                .collect()
        })
        .unwrap_or_default();
    let mut rows = Vec::new();
    for cell in outcome.blocks.iter().flat_map(|b| &b.cells) {
        let mut row = vec![cell.name.clone()];
        for &cp in &checkpoints {
            let metric = cell
                .avg
                .curve
                .iter()
                .rfind(|p| p.n_labeled <= cp)
                .map(|p| p.metric)
                .unwrap_or(0.0);
            row.push(format!("{metric:.4}"));
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["#Samples".into()];
    header.extend(checkpoints.iter().map(|c| c.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&spec.title, &header_refs, &rows);
    Rendered::Rows(rows)
}

/// Mean of per-run areas under the learning curve — matches the
/// historical extension experiments, which averaged AUCs over raw
/// repeats rather than taking the AUC of the averaged curve.
pub fn mean_auc(cell: &CellOutcome) -> f64 {
    let n = cell.runs.len().max(1) as f64;
    cell.runs.iter().map(area_under_curve).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_vary_by_all_inputs() {
        let base = seed_for("e", "d", "s", 0);
        assert_ne!(base, seed_for("x", "d", "s", 0));
        assert_ne!(base, seed_for("e", "x", "s", 0));
        assert_ne!(base, seed_for("e", "d", "x", 0));
        assert_ne!(base, seed_for("e", "d", "s", 1));
        assert_eq!(base, seed_for("e", "d", "s", 0));
    }

    #[test]
    fn rounds_scale_with_factor() {
        assert_eq!(rounds_for(&Scale::full()), 19);
        let tiny = Scale {
            factor: 0.1,
            repeats: 1,
        };
        assert_eq!(rounds_for(&tiny), 5);
    }

    #[test]
    fn spec_scale_overrides_cli_scale() {
        let spec = ExperimentSpec::from_json(
            r#"{"name":"x","datasets":["mr"],
                "groups":[{"strategies":["entropy"]}],
                "scale":{"repeats":1}}"#,
        )
        .unwrap();
        let cli = Scale {
            factor: 0.5,
            repeats: 4,
        };
        let exec = GridExecutor::new(&spec, &cli);
        assert_eq!(exec.scale().repeats, 1);
        assert_eq!(exec.scale().factor, 0.5);
    }

    #[test]
    fn failing_cell_reports_its_key() {
        // QBC needs a committee the default model doesn't provide, so the
        // cell fails — the error must name the cell key.
        let spec = ExperimentSpec::from_json(
            r#"{"name":"x","experiment":"xx","datasets":["mr"],
                "groups":[{"strategies":["qbc"]}],
                "scale":{"factor":0.02,"repeats":1}}"#,
        )
        .unwrap();
        let cli = Scale {
            factor: 0.02,
            repeats: 1,
        };
        let err = match GridExecutor::new(&spec, &cli).execute() {
            Ok(_) => panic!("qbc without a committee must fail"),
            Err(e) => e,
        };
        let msg = err.to_string();
        assert!(msg.contains("xx/MR/QBC"), "{msg}");
    }
}

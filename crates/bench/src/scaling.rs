//! Pool-scaling benchmark: selection-combinator wall clocks on synthetic
//! pools far beyond the paper's dataset sizes (10k → 1M rows).
//!
//! The figure grids exercise the full AL loop, which caps out around
//! 10k-sample pools — model fitting dominates long before geometry does.
//! This grid isolates what the tentpole optimizes: it times *only* the
//! similarity combinators (density / k-center / MMR) over a seeded
//! clustered pool, exact path vs LSH-indexed path, resident vs
//! memory-mapped backing. Cells land in `BENCH_harness.json` as
//! experiment `bench-pool` alongside the AL-loop cells.
//!
//! The grid is described by `specs/bench-pool-scaling.json`, which is
//! deliberately **not** an [`ExperimentSpec`]: a full AL loop at 1M rows
//! is infeasible (and meaningless — there is no model or dataset here),
//! so the file carries its own `"kind": "pool-scaling"` discriminator
//! and schema. `spec-check` and the spec round-trip tests branch on that
//! field.
//!
//! Exact cells above `exact_ceiling` rows are skipped with a note: the
//! exact density/MMR sweeps are Θ(R·n) / Θ(k·n) cosine gathers and take
//! minutes at 1M rows (documented in DESIGN.md §5.8); the 1M cells run
//! ANN-only, streamed to disk and memory-mapped.

use std::time::Instant;

use histal_core::error::Error;
use histal_core::strategy::combinators::{
    apply_density, kcenter_select, mmr_select, DensityConfig, MmrConfig, SimScratch,
};
use histal_data::oocpool::{synth_pool, write_synth_pool, MappedPool};
use histal_text::{Geometry, LshIndex, NeighborIndex, PoolGeometry};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::experiments::BenchCell;
use crate::spec::AnnSpec;

/// Discriminator value that marks a spec file as a pool-scaling grid.
pub const POOL_SCALING_KIND: &str = "pool-scaling";

/// Does this JSON body declare `"kind": "pool-scaling"`? Peeks the field
/// without committing to either schema, so `spec-check` and the
/// round-trip tests can route each `specs/*.json` to the right parser.
pub fn is_pool_scaling_json(body: &str) -> bool {
    #[derive(Deserialize)]
    struct KindProbe {
        #[serde(default)]
        kind: Option<String>,
    }
    serde_json::from_str::<KindProbe>(body)
        .ok()
        .and_then(|p| p.kind)
        .is_some_and(|k| k == POOL_SCALING_KIND)
}

/// Declarative description of one pool-scaling grid: the cross product
/// `sizes × modes × strategies`, minus exact cells above
/// [`Self::exact_ceiling`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolScalingSpec {
    /// Must be [`POOL_SCALING_KIND`]; keeps the file from being
    /// mistaken for an [`crate::spec::ExperimentSpec`].
    pub kind: String,
    /// Grid name (reported, and the `experiment` id of emitted cells).
    pub name: String,
    /// Seed for pool synthesis, scores, and the LSH index.
    #[serde(default)]
    pub seed: u64,
    /// Pool sizes to sweep, ascending.
    pub sizes: Vec<usize>,
    /// Geometry paths to time: `"exact"` (no index) and/or `"ann"`.
    pub modes: Vec<String>,
    /// Combinators to time: `"density"`, `"kcenter"`, `"mmr"`.
    pub strategies: Vec<String>,
    /// Latent clusters in the synthetic pool (default 8).
    #[serde(default)]
    pub clusters: Option<usize>,
    /// Stored entries per synthetic row (default 32).
    #[serde(default)]
    pub nnz_per_row: Option<usize>,
    /// Batch size for the k-center / MMR greedy loops (default 64).
    #[serde(default)]
    pub batch_size: Option<usize>,
    /// LSH tuning for the `"ann"` mode (defaults apply field-wise).
    #[serde(default)]
    pub ann: AnnSpec,
    /// Pools at or above this many rows are streamed to a temp file and
    /// memory-mapped instead of built resident (default 200 000).
    #[serde(default)]
    pub mmap_threshold: Option<usize>,
    /// Exact cells above this many rows are skipped — documented-slower,
    /// see DESIGN.md §5.8 (default 200 000).
    #[serde(default)]
    pub exact_ceiling: Option<usize>,
}

impl PoolScalingSpec {
    pub fn clusters(&self) -> usize {
        self.clusters.unwrap_or(8)
    }

    pub fn nnz_per_row(&self) -> usize {
        self.nnz_per_row.unwrap_or(32)
    }

    pub fn batch_size(&self) -> usize {
        self.batch_size.unwrap_or(64)
    }

    pub fn mmap_threshold(&self) -> usize {
        self.mmap_threshold.unwrap_or(200_000)
    }

    pub fn exact_ceiling(&self) -> usize {
        self.exact_ceiling.unwrap_or(200_000)
    }
    /// Parse from JSON (strict enough that an `ExperimentSpec` file
    /// fails here rather than half-loading).
    pub fn from_json(body: &str) -> Result<Self, Error> {
        serde_json::from_str(body).map_err(|e| Error::spec(format!("pool-scaling spec: {e}")))
    }

    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("pool-scaling spec serializes")
    }

    pub fn validate(&self) -> Result<(), Error> {
        let fail = |m: String| Err(Error::spec(m));
        if self.kind != POOL_SCALING_KIND {
            return fail(format!(
                "kind must be \"{POOL_SCALING_KIND}\", got \"{}\"",
                self.kind
            ));
        }
        if self.name.is_empty() {
            return fail("pool-scaling spec needs a name".into());
        }
        if self.sizes.is_empty() {
            return fail("sizes must list at least one pool size".into());
        }
        if self.sizes.windows(2).any(|w| w[0] >= w[1]) {
            return fail("sizes must be strictly ascending".into());
        }
        if self.modes.is_empty() || self.strategies.is_empty() {
            return fail("modes and strategies must be non-empty".into());
        }
        for m in &self.modes {
            if m != "exact" && m != "ann" {
                return fail(format!("unknown mode \"{m}\" (exact|ann)"));
            }
        }
        for s in &self.strategies {
            if !matches!(s.as_str(), "density" | "kcenter" | "mmr") {
                return fail(format!("unknown strategy \"{s}\" (density|kcenter|mmr)"));
            }
        }
        if self.clusters() == 0 || self.nnz_per_row() == 0 || self.batch_size() == 0 {
            return fail("clusters, nnz_per_row and batch_size must be positive".into());
        }
        // Reuse the ExperimentSpec bounds for the LSH knobs.
        if let Some(t) = self.ann.tables {
            if t == 0 || t > 64 {
                return fail(format!("ann.tables must be in 1..=64, got {t}"));
            }
        }
        if let Some(b) = self.ann.bits {
            if b > 20 {
                return fail(format!("ann.bits must be ≤ 20, got {b}"));
            }
        }
        if let Some(p) = self.ann.probes {
            if p > 20 {
                return fail(format!("ann.probes must be ≤ 20, got {p}"));
            }
        }
        Ok(())
    }
}

/// One pool, resident or mapped, behind the [`Geometry`] trait.
enum Backing {
    Resident(PoolGeometry),
    Mapped {
        pool: MappedPool,
        /// Held so the backing file outlives the mapping.
        _tmp: tempfile::TempPath,
    },
}

impl Backing {
    fn geom(&self) -> &dyn Geometry {
        match self {
            Backing::Resident(g) => g,
            Backing::Mapped { pool, .. } => pool,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Backing::Resident(_) => "resident",
            Backing::Mapped { .. } => "mmap",
        }
    }
}

/// Minimal in-crate temp-file helper (the workspace vendors no tempfile
/// crate): a path under the system temp dir removed on drop.
mod tempfile {
    pub struct TempPath(pub std::path::PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

/// Deterministic synthetic uncertainty score for row `i`: a splitmix64
/// draw folded into `(0, 1]`, so greedy loops have real argmax structure.
fn synth_score(seed: u64, i: usize) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

fn build_backing(spec: &PoolScalingSpec, n: usize) -> Result<Backing, Error> {
    if n >= spec.mmap_threshold() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "histal-bench-pool-{n}-{}.hpool",
            std::process::id()
        ));
        write_synth_pool(&path, spec.seed, n, spec.clusters(), spec.nnz_per_row())
            .map_err(|e| Error::invariant(format!("stream synthetic pool: {e}")))?;
        let pool = MappedPool::open(&path)
            .map_err(|e| Error::invariant(format!("map synthetic pool: {e}")))?;
        Ok(Backing::Mapped {
            pool,
            _tmp: tempfile::TempPath(path),
        })
    } else {
        let reps = synth_pool(spec.seed, n, spec.clusters(), spec.nnz_per_row());
        Ok(Backing::Resident(PoolGeometry::build(&reps)))
    }
}

/// Time one combinator over one pool/index pairing; returns wall ms.
#[allow(clippy::too_many_arguments)]
fn time_strategy(
    strategy: &str,
    scores: &[f64],
    unlabeled: &[usize],
    geom: &dyn Geometry,
    index: Option<&dyn NeighborIndex>,
    batch: usize,
    seed: u64,
    scratch: &mut SimScratch,
) -> f64 {
    let start = Instant::now();
    match strategy {
        "density" => {
            let mut weighted = scores.to_vec();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            apply_density(
                &mut weighted,
                unlabeled,
                geom,
                index,
                &DensityConfig::default(),
                &mut rng,
                scratch,
            );
            assert!(weighted.iter().all(|w| w.is_finite()));
        }
        "kcenter" => {
            let picks = kcenter_select(scores, unlabeled, geom, index, batch, scratch);
            assert_eq!(picks.len(), batch.min(unlabeled.len()));
        }
        "mmr" => {
            let picks = mmr_select(
                scores,
                unlabeled,
                geom,
                index,
                batch,
                &MmrConfig::default(),
                scratch,
            );
            assert_eq!(picks.len(), batch.min(unlabeled.len()));
        }
        other => unreachable!("validated strategy token {other}"),
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Execute the grid, emitting one [`BenchCell`] per timed cell. Sizes
/// above `size_cap` (when given) are dropped — the `bench --check` smoke
/// runs only the smallest size this way.
pub fn run_pool_scaling(
    spec: &PoolScalingSpec,
    size_cap: Option<usize>,
) -> Result<Vec<BenchCell>, Error> {
    spec.validate()?;
    let sizes: Vec<usize> = spec
        .sizes
        .iter()
        .copied()
        .filter(|&n| size_cap.map_or(true, |cap| n <= cap))
        .collect();
    if sizes.is_empty() {
        return Err(Error::spec(format!(
            "size cap {size_cap:?} leaves no pool-scaling sizes"
        )));
    }
    let mut cells = Vec::new();
    let mut scratch = SimScratch::default();
    for &n in &sizes {
        let t0 = Instant::now();
        let backing = build_backing(spec, n)?;
        let geom = backing.geom();
        eprintln!(
            "  {:>10} {n:>9} rows ({}) built in {:.1} ms",
            spec.name,
            backing.label(),
            t0.elapsed().as_secs_f64() * 1e3
        );
        let unlabeled: Vec<usize> = (0..n).collect();
        let scores: Vec<f64> = (0..n).map(|i| synth_score(spec.seed, i)).collect();

        let lsh = if spec.modes.iter().any(|m| m == "ann") {
            let t0 = Instant::now();
            let index = LshIndex::build(geom, &spec.ann.to_config(), spec.seed ^ 0xA11);
            eprintln!(
                "  {:>10} {n:>9} rows: LSH ({} tables × {} bits, {} probes) built in {:.1} ms",
                spec.name,
                index.tables(),
                index.bits(),
                index.probes(),
                t0.elapsed().as_secs_f64() * 1e3
            );
            Some(index)
        } else {
            None
        };

        for mode in &spec.modes {
            let index: Option<&dyn NeighborIndex> = match mode.as_str() {
                "exact" => {
                    if n > spec.exact_ceiling() {
                        eprintln!(
                            "  {:>10} {n:>9} rows: exact cells skipped \
                             (documented-slower above {} rows, see DESIGN.md §5.8)",
                            spec.name,
                            spec.exact_ceiling()
                        );
                        continue;
                    }
                    None
                }
                _ => lsh.as_ref().map(|i| i as &dyn NeighborIndex),
            };
            for strategy in &spec.strategies {
                let wall_ms = time_strategy(
                    strategy,
                    &scores,
                    &unlabeled,
                    geom,
                    index,
                    spec.batch_size(),
                    spec.seed,
                    &mut scratch,
                );
                eprintln!(
                    "  {:>10} {:<12} {:<14} wall {wall_ms:>9.1} ms",
                    spec.name,
                    format!("synth-{n}"),
                    format!("{strategy}/{mode}")
                );
                cells.push(BenchCell {
                    experiment: spec.name.clone(),
                    dataset: format!("synth-{n}"),
                    strategy: format!("{strategy}/{mode}"),
                    wall_ms,
                    fit_ms: 0.0,
                    eval_ms: 0.0,
                    score_ms: 0.0,
                    select_ms: wall_ms,
                });
            }
        }
        // Speedup summary wherever both paths ran at this size.
        for strategy in &spec.strategies {
            let wall = |mode: &str| {
                cells
                    .iter()
                    .find(|c| {
                        c.dataset == format!("synth-{n}")
                            && c.strategy == format!("{strategy}/{mode}")
                    })
                    .map(|c| c.wall_ms)
            };
            if let (Some(exact), Some(ann)) = (wall("exact"), wall("ann")) {
                eprintln!(
                    "  {:>10} {n:>9} rows: {strategy} ann speedup ×{:.1}",
                    spec.name,
                    exact / ann.max(1e-9)
                );
            }
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EMBEDDED: &str = include_str!("../../../specs/bench-pool-scaling.json");

    #[test]
    fn embedded_scaling_spec_parses_validates_and_round_trips() {
        assert!(is_pool_scaling_json(EMBEDDED));
        let spec = PoolScalingSpec::from_json(EMBEDDED).expect("embedded scaling spec parses");
        spec.validate().expect("embedded scaling spec validates");
        let json = spec.to_json_pretty();
        let spec2 = PoolScalingSpec::from_json(&json).unwrap();
        assert_eq!(spec, spec2, "round trip changed the spec");
    }

    #[test]
    fn experiment_specs_are_not_pool_scaling() {
        assert!(!is_pool_scaling_json(include_str!(
            "../../../specs/fig5.json"
        )));
    }

    #[test]
    fn validate_rejects_bad_grids() {
        let mut spec = PoolScalingSpec::from_json(EMBEDDED).unwrap();
        spec.modes = vec!["warp".into()];
        assert!(spec.validate().is_err(), "unknown mode must fail");
        let mut spec = PoolScalingSpec::from_json(EMBEDDED).unwrap();
        spec.sizes = vec![100, 100];
        assert!(spec.validate().is_err(), "non-ascending sizes must fail");
    }

    #[test]
    fn tiny_grid_runs_exact_and_ann() {
        let spec = PoolScalingSpec {
            kind: POOL_SCALING_KIND.into(),
            name: "bench-pool".into(),
            seed: 9,
            sizes: vec![400],
            modes: vec!["exact".into(), "ann".into()],
            strategies: vec!["density".into(), "kcenter".into(), "mmr".into()],
            clusters: Some(4),
            nnz_per_row: Some(12),
            batch_size: Some(16),
            ann: AnnSpec::default(),
            mmap_threshold: None,
            exact_ceiling: None,
        };
        let cells = run_pool_scaling(&spec, None).unwrap();
        assert_eq!(cells.len(), 6, "3 strategies × 2 modes");
        assert!(cells.iter().all(|c| c.wall_ms.is_finite()));
    }

    #[test]
    fn mmap_backing_kicks_in_below_cap() {
        let spec = PoolScalingSpec {
            kind: POOL_SCALING_KIND.into(),
            name: "bench-pool".into(),
            seed: 9,
            sizes: vec![300],
            modes: vec!["ann".into()],
            strategies: vec!["mmr".into()],
            clusters: Some(2),
            nnz_per_row: Some(8),
            batch_size: Some(8),
            ann: AnnSpec::default(),
            mmap_threshold: Some(100), // force the streamed/mapped path
            exact_ceiling: Some(100),
        };
        let cells = run_pool_scaling(&spec, None).unwrap();
        assert_eq!(cells.len(), 1);
    }
}

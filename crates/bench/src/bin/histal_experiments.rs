//! Experiment harness CLI — regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! histal-experiments <command> [--full] [--quick] [--repeats N] [--scale F]
//!                    [--threads N] [--targets a,b,c]
//!                    [--variant paper|ar|linear|autocorr]
//!                    [--spec FILE] [--journal FILE] [--trace[=LEVEL]]
//!
//! Commands:
//!   table2     Measured per-round strategy cost  (Table 2)
//!   table3     Text dataset statistics           (Table 3)
//!   table4     NER dataset statistics            (Table 4)
//!   fig3-text  General strategies, text          (Figure 3, rows 1–3)
//!   fig3-ner   General strategies, NER           (Figure 3, row 4)
//!   table5     Annotation cost to target acc.    (Table 5)
//!   fig4       SOTA strategies + history         (Figure 4)
//!   fig5       Hyper-parameter sensitivity       (Figure 5)
//!   table6     Scores of selected samples        (Table 6)
//!   table7     LHS feature ablation              (Table 7)
//!   run        Execute an arbitrary experiment grid: `run --spec FILE`
//!              (files with `"kind": "transfer"` run as train×apply
//!              transfer matrices, see EXPERIMENTS.md)
//!   spec-check Parse + validate every spec file:  `spec-check [DIR]`
//!   selector-train  Train a learned selector and save it as an HLRN1
//!              artifact: `selector-train <TOKEN> <DATASET> <OUT>`
//!   selector-apply  Load a saved selector and run it on a dataset:
//!              `selector-apply <ARTIFACT> <DATASET>`
//!   bench      Per-cell harness timings → BENCH_harness.json
//!              (`bench --check`: CI smoke on a reduced grid, no artifact)
//!   resume     Re-run a journaled command, replaying completed cells:
//!              `resume <fig3-text|fig3-ner|fig5|run> --journal FILE`
//!   all        Everything above in order
//! ```
//!
//! `--threads N` sizes the global worker pool (default: one per CPU).
//! Results are byte-identical at any thread count; only wall time
//! changes.
//!
//! `run --spec FILE` loads a JSON [`histal_bench::spec::ExperimentSpec`]
//! and executes it with the same grid engine that powers the named
//! commands — the checked-in files under `specs/` reproduce fig2, fig3,
//! fig5, table2, table6 and table7 byte-for-byte, and custom files can
//! describe new grids without touching code (see EXPERIMENTS.md).
//!
//! `--journal FILE` (fig3-text, fig3-ner, fig5, run) writes a crash-safe
//! JSONL run journal: one record per driver round plus one per completed
//! grid cell. After an interruption, `resume <command> --journal FILE`
//! repairs the journal tail, replays every completed cell byte-identically
//! and runs only what's missing. `--trace` prints span closures and
//! events to stderr (`--trace=debug` and `--trace=trace` widen the
//! level); stdout stays byte-identical to an uninstrumented run.
//!
//! Table 2 (efficiency) is a Criterion bench:
//! `cargo bench -p histal-bench --bench strategy_overhead`.

use std::sync::Arc;

use histal_bench::executor::run_spec;
use histal_bench::experiments::{self, Table7Variant};
use histal_bench::journal::JournalCtx;
use histal_bench::scaling::{is_pool_scaling_json, PoolScalingSpec};
use histal_bench::spec::ExperimentSpec;
use histal_bench::tasks::Scale;
use histal_bench::transfer::{
    is_transfer_json, run_transfer, selector_apply, selector_train, TransferSpec,
};
use histal_core::error::Error;
use histal_obs::trace::{set_subscriber, Level, StderrSubscriber};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let command = args[0].as_str();
    // `compare` consumes its two strategy specs positionally; `resume`
    // consumes the command to re-run; `spec-check` an optional directory.
    let mut positional: Vec<String> = Vec::new();
    let mut scale = Scale::quick();
    let mut targets = vec![0.72, 0.73, 0.735];
    let mut variant = Table7Variant::Paper;
    let mut threads: Option<usize> = None;
    let mut check = false;
    let mut spec_path: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut trace: Option<Level> = None;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::full(),
            "--quick" => scale = Scale::quick(),
            "--check" => check = true,
            "--spec" => {
                i += 1;
                spec_path = Some(args.get(i).unwrap_or_else(|| bad_flag("spec")).to_string());
            }
            "--journal" => {
                i += 1;
                journal_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| bad_flag("journal"))
                        .to_string(),
                );
            }
            "--trace" => trace = Some(Level::Info),
            "--trace=info" => trace = Some(Level::Info),
            "--trace=debug" => trace = Some(Level::Debug),
            "--trace=trace" => trace = Some(Level::Trace),
            "--repeats" => {
                i += 1;
                scale.repeats = parse(&args, i, "repeats");
            }
            "--scale" => {
                i += 1;
                scale.factor = parse(&args, i, "scale");
            }
            "--threads" => {
                i += 1;
                let n: usize = parse(&args, i, "threads");
                if n == 0 {
                    bad_flag("threads");
                }
                threads = Some(n);
            }
            "--targets" => {
                i += 1;
                targets = args
                    .get(i)
                    .unwrap_or_else(|| bad_flag("targets"))
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| bad_flag("targets")))
                    .collect();
            }
            "--variant" => {
                i += 1;
                variant = match args.get(i).map(String::as_str) {
                    Some("paper") => Table7Variant::Paper,
                    Some("ar") => Table7Variant::ArPredictor,
                    Some("linear") => Table7Variant::LinearRanker,
                    Some("autocorr") => Table7Variant::Autocorr,
                    _ => bad_flag("variant"),
                };
            }
            other if !other.starts_with("--") => positional.push(other.to_string()),
            other => {
                eprintln!("unknown flag: {other}");
                usage_and_exit();
            }
        }
        i += 1;
    }

    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("global thread pool not yet initialised");
    }
    if let Some(level) = trace {
        set_subscriber(Arc::new(StderrSubscriber { max_level: level }));
    }

    // `spec-check [DIR]` is a pure parse/validate pass — no grid runs, no
    // journal, no scale banner.
    if command == "spec-check" {
        let dir = positional.first().map(String::as_str).unwrap_or("specs");
        spec_check(dir);
        return;
    }

    // `resume <command> --journal FILE` reopens the journal and re-runs
    // the command; completed cells are replayed instead of re-run.
    let resuming = command == "resume";
    let command = if resuming {
        if positional.len() != 1 {
            eprintln!(
                "usage: histal-experiments resume <fig3-text|fig3-ner|fig5|run> --journal FILE"
            );
            std::process::exit(2);
        }
        positional.remove(0)
    } else {
        command.to_string()
    };
    let command = command.as_str();
    let journal = journal_path.as_deref().map(|path| {
        if !matches!(command, "fig3-text" | "fig3-ner" | "fig5" | "run") {
            eprintln!("--journal is supported for fig3-text, fig3-ner, fig5 and run only");
            std::process::exit(2);
        }
        let ctx = if resuming {
            JournalCtx::resume(path)
        } else {
            JournalCtx::create(path)
        };
        ctx.unwrap_or_else(|e| {
            eprintln!("cannot open journal {path}: {e}");
            std::process::exit(2);
        })
    });
    if resuming {
        let Some(ctx) = journal.as_ref() else {
            eprintln!("resume requires --journal FILE");
            std::process::exit(2);
        };
        eprintln!("# resume: {} completed cell(s) in journal", ctx.resumed);
    }

    eprintln!(
        "# scale factor {:.2}, repeats {}, {} worker thread(s) — use --full for paper-scale runs",
        scale.factor,
        scale.repeats,
        rayon::current_num_threads()
    );
    let start = std::time::Instant::now();
    let result: Result<(), Error> = match command {
        "table3" => {
            experiments::table3();
            Ok(())
        }
        "table4" => {
            experiments::table4();
            Ok(())
        }
        "fig3-text" => experiments::fig3_text(&scale, journal.as_ref()).map(|_| ()),
        "fig3-ner" => experiments::fig3_ner(&scale, journal.as_ref()).map(|_| ()),
        "table5" => experiments::table5(&scale, &targets),
        "fig4" => experiments::fig4(&scale),
        "fig5" => experiments::fig5(&scale, journal.as_ref()),
        "table6" => experiments::table6(&scale),
        "table7" => experiments::table7(&scale, variant),
        "ceiling" => {
            experiments::ceiling(&scale);
            Ok(())
        }
        "table2" => experiments::table2(&scale),
        "fig2" => experiments::fig2(&scale),
        "noise" => experiments::noise(&scale),
        "agnostic" => experiments::agnostic(&scale),
        "imbalance" => experiments::imbalance(&scale),
        "sweep-batch" => experiments::sweep_batch(&scale),
        "run" => {
            let Some(path) = spec_path.as_deref() else {
                eprintln!("usage: histal-experiments run --spec FILE [--journal FILE]");
                std::process::exit(2);
            };
            run_spec_file(path, &scale, journal.as_ref())
        }
        "selector-train" => {
            if positional.len() != 3 {
                eprintln!("usage: histal-experiments selector-train <TOKEN> <DATASET> <OUT>");
                std::process::exit(2);
            }
            selector_train(&positional[0], &positional[1], &positional[2], &scale)
        }
        "selector-apply" => {
            if positional.len() != 2 {
                eprintln!("usage: histal-experiments selector-apply <ARTIFACT> <DATASET>");
                std::process::exit(2);
            }
            selector_apply(&positional[0], &positional[1], &scale)
        }
        "compare" => {
            if positional.len() != 2 {
                eprintln!("usage: histal-experiments compare <strategyA> <strategyB> [--full]");
                std::process::exit(2);
            }
            experiments::compare(&scale, &positional[0], &positional[1])
        }
        "significance" => {
            experiments::significance(&scale);
            Ok(())
        }
        "bench" => {
            if check {
                experiments::bench_check(&scale)
            } else {
                experiments::bench(&scale)
            }
        }
        "all" => experiments::fig2(&scale)
            .and_then(|()| experiments::table2(&scale))
            .and_then(|()| {
                experiments::table3();
                experiments::table4();
                experiments::fig3_text(&scale, None).map(|_| ())
            })
            .and_then(|()| experiments::fig3_ner(&scale, None).map(|_| ()))
            .and_then(|()| experiments::table5(&scale, &targets))
            .and_then(|()| experiments::fig4(&scale))
            .and_then(|()| experiments::fig5(&scale, None))
            .and_then(|()| experiments::table6(&scale))
            .and_then(|()| experiments::table7(&scale, variant)),
        other => {
            eprintln!("unknown command: {other}");
            usage_and_exit();
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    eprintln!("# done in {:.1}s", start.elapsed().as_secs_f64());
}

/// Execute one spec file, routing on its `kind`: transfer specs run as
/// train×apply matrices, everything else as an ordinary experiment grid.
fn run_spec_file(path: &str, scale: &Scale, journal: Option<&JournalCtx>) -> Result<(), Error> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| Error::spec(format!("cannot read spec {path}: {e}")))?;
    if is_transfer_json(&body) {
        let spec =
            TransferSpec::from_json(&body).map_err(|e| Error::spec(format!("{path}: {e}")))?;
        run_transfer(&spec, scale, journal).map(|_| ())
    } else {
        let spec =
            ExperimentSpec::from_json(&body).map_err(|e| Error::spec(format!("{path}: {e}")))?;
        spec.validate()?;
        run_spec(&spec, scale, journal).map(|_| ())
    }
}

/// Parse + validate every `*.json` under `dir`; exit nonzero if any
/// fails. Used by CI to keep the checked-in spec library loadable.
fn spec_check(dir: &str) {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| {
        eprintln!("spec-check: cannot read {dir}: {e}");
        std::process::exit(2);
    });
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("spec-check: no spec files in {dir}");
        std::process::exit(2);
    }
    let mut failures = 0usize;
    for path in &paths {
        let shown = path.display();
        // Files carrying a `kind` discriminator use their own schema
        // (`pool-scaling`, `transfer`); everything else is an
        // experiment grid.
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| Error::spec(format!("cannot read: {e}")))
            .and_then(|body| {
                if is_pool_scaling_json(&body) {
                    PoolScalingSpec::from_json(&body)
                        .and_then(|spec| spec.validate().map(|()| spec.name))
                } else if is_transfer_json(&body) {
                    TransferSpec::from_json(&body)
                        .and_then(|spec| spec.validate().map(|()| spec.name))
                } else {
                    ExperimentSpec::from_json(&body)
                        .and_then(|spec| spec.validate().map(|()| spec.name))
                }
            });
        match parsed {
            Ok(name) => println!("ok  {shown} ({name})"),
            Err(e) => {
                println!("ERR {shown}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("spec-check: {failures} of {} spec(s) failed", paths.len());
        std::process::exit(1);
    }
    println!("spec-check OK ({} specs)", paths.len());
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, name: &str) -> T {
    args.get(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| bad_flag(name))
}

fn bad_flag(name: &str) -> ! {
    eprintln!("invalid or missing value for --{name}");
    std::process::exit(2);
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: histal-experiments <table2|table3|table4|fig3-text|fig3-ner|table5|fig4|fig5|table6|table7|run|spec-check|selector-train|selector-apply|bench|resume|all> \
         [--full|--quick|--check] [--repeats N] [--scale F] [--threads N] [--targets a,b,c] \
         [--variant paper|ar|linear|autocorr] [--spec FILE] [--journal FILE] [--trace[=info|debug|trace]]"
    );
    std::process::exit(2);
}

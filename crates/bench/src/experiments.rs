//! One function per table/figure of the paper's evaluation section.
//!
//! | function | paper artifact | spec |
//! |---|---|---|
//! | [`table3`] | Table 3 — text dataset statistics | hand-coded |
//! | [`table4`] | Table 4 — NER dataset statistics | hand-coded |
//! | [`fig2`] | Figure 2 — history sequence shapes | `specs/fig2.json` |
//! | [`table2`] | Table 2 — per-round strategy cost | `specs/table2.json` |
//! | [`fig3_text`] | Figure 3 rows 1–3 — general strategies, text | `specs/fig3_text.json` |
//! | [`fig3_ner`] | Figure 3 row 4 — general strategies, NER | `specs/fig3_ner.json` |
//! | [`table5`] | Table 5 — annotation cost to target accuracy | in-code spec |
//! | [`fig4`] | Figure 4 — SOTA strategies + history wrappers | in-code spec |
//! | [`fig5`] | Figure 5 — hyper-parameter sensitivity | `specs/fig5.json` |
//! | [`table6`] | Table 6 — WSHS/FHS scores of selected samples | `specs/table6.json` |
//! | [`table7`] | Table 7 — LHS feature ablation | `specs/table7.json` |
//!
//! Every grid experiment is an [`ExperimentSpec`] executed by
//! [`crate::executor::GridExecutor`]; the checked-in JSON files under
//! `specs/` are embedded at compile time (and validated by CI), so
//! `histal-experiments fig5` and `histal-experiments run --spec
//! specs/fig5.json` are the same code path. Only the dataset-statistics
//! tables, the diagnostic commands (`ceiling`, `significance`,
//! `compare`) and the BENCH gates remain hand-coded.

use histal_core::analysis::{area_under_curve, average_curves};
use histal_core::driver::RunResult;
use histal_core::error::Error;
use histal_core::strategy::{BaseStrategy, HistoryPolicy, Strategy};
use histal_data::{NerDataset, NerSpec, TextDataset, TextSpec};

use crate::executor::{
    mean_auc, render_spec, run_spec, seed_for, text_pool_config, train_lhs_plan, CellOutcome,
    GridExecutor, GridOutcome, Rendered,
};
use crate::journal::JournalCtx;
use crate::registry::{self, ResolvedStrategy, FHS_WF, FHS_WS, WINDOW};
use crate::report::{print_curves, print_table, write_json};
use crate::spec::{DatasetEntry, ExperimentSpec, GroupSpec, PoolSpec, ReportKind, StrategyEntry};
use crate::tasks::{Scale, TextTask};
use crate::transfer::{execute_transfer, inject_train, TransferSpec};

fn hus(base: BaseStrategy) -> Strategy {
    Strategy::new(base).with_history(HistoryPolicy::Hus { k: WINDOW })
}

fn wshs(base: BaseStrategy) -> Strategy {
    Strategy::new(base).with_history(HistoryPolicy::Wshs { l: WINDOW })
}

fn fhs(base: BaseStrategy) -> Strategy {
    Strategy::new(base).with_history(HistoryPolicy::Fhs {
        l: WINDOW,
        w_score: FHS_WS,
        w_fluct: FHS_WF,
    })
}

/// Format an optional final metric for a table cell.
fn fmt_metric(m: Option<f64>) -> String {
    m.map(|v| format!("{v:.4}")).unwrap_or_else(|| "n/a".into())
}

/// Parse one of the embedded `specs/*.json` files. A parse failure here
/// is a build defect (the files are validated by CI and tests), but it
/// still surfaces as a structured error rather than a panic.
fn embedded_spec(json: &str) -> Result<ExperimentSpec, Error> {
    ExperimentSpec::from_json(json)
}

/// A label-less [`GroupSpec`] from plain strategy tokens.
fn group(tokens: &[&str]) -> GroupSpec {
    GroupSpec {
        label: String::new(),
        strategies: tokens.iter().map(|t| StrategyEntry::new(*t)).collect(),
    }
}

/// Extension experiment: model-agnosticism. The paper claims its
/// strategies are "not task- or model-specific"; this swaps the
/// discriminative classifier for multinomial Naive Bayes (a one-pass
/// generative model with very different score dynamics) and reruns the
/// entropy family.
pub fn agnostic(scale: &Scale) -> Result<(), Error> {
    let mut rows = Vec::new();
    for (model_name, model, experiment) in [
        ("logistic (TextCNN proxy)", None, "agnostic-logreg"),
        ("naive bayes", Some("nb"), "agnostic-nb"),
    ] {
        let spec = ExperimentSpec {
            name: experiment.into(),
            experiment: experiment.into(),
            split_seed: 0xA6,
            model: model.map(String::from),
            datasets: vec![DatasetEntry::new("mr")],
            groups: vec![group(&["entropy", "WSHS(entropy)", "FHS(entropy)"])],
            ..Default::default()
        };
        let outcome = GridExecutor::new(&spec, scale).execute()?;
        for cell in outcome.blocks.iter().flat_map(|b| &b.cells) {
            rows.push(vec![
                model_name.to_string(),
                cell.name.clone(),
                format!("{:.4}", mean_auc(cell)),
            ]);
        }
    }
    print_table(
        "Extension — model-agnosticism: ALC by model × strategy (MR analogue)",
        &["Model", "Strategy", "area under learning curve"],
        &rows,
    );
    write_json("agnostic", &rows);
    Ok(())
}

/// Extension experiment: robustness to annotation noise. Corrupts a
/// fraction of the oracle labels on the MR analogue and compares how the
/// base and history-aware strategies degrade.
pub fn noise(scale: &Scale) -> Result<(), Error> {
    let dataset = |token: &str, rename: &str| DatasetEntry {
        dataset: token.into(),
        rename: Some(rename.into()),
    };
    let spec = ExperimentSpec {
        name: "noise".into(),
        experiment: "noise".into(),
        split_seed: 0xA0,
        datasets: vec![
            dataset("mr", "0%"),
            dataset("mr?noise=0.1", "10%"),
            dataset("mr?noise=0.2", "20%"),
        ],
        groups: vec![group(&["entropy", "WSHS(entropy)", "FHS(entropy)"])],
        title: "Extension — final accuracy under label noise (MR analogue)".into(),
        metrics: vec!["final".into()],
        dataset_column: Some("Noise".into()),
        report: ReportKind::Metrics,
        ..Default::default()
    };
    run_spec(&spec, scale, None)?;
    Ok(())
}

/// Head-to-head comparison of two strategy tokens on the MR analogue:
/// averaged curves, ALC, and a Wilcoxon significance verdict — the
/// harness's user-facing utility command. Tokens go through the full
/// registry grammar, so wrapper parameters, `LHS(...)` (trained on the
/// fly) and diversity suffixes all work here.
pub fn compare(scale: &Scale, token_a: &str, token_b: &str) -> Result<(), Error> {
    use histal_core::stats::wilcoxon_signed_rank;

    let a = registry::parse_strategy(token_a)?;
    let b = registry::parse_strategy(token_b)?;
    let task = TextTask::build(&TextSpec::mr(), scale, 0xC0);
    let config = text_pool_config(false, scale);
    let collect = |r: &ResolvedStrategy| -> Result<(RunResult, Vec<f64>), Error> {
        let selector = match &r.lhs {
            Some(plan) => Some(train_lhs_plan(plan, scale)?),
            None => None,
        };
        let runs: Vec<RunResult> = (0..scale.repeats.max(3))
            .map(|rep| {
                task.run(
                    r.strategy.clone(),
                    selector.clone(),
                    &config,
                    seed_for("cmp", &task.name, &r.strategy.name(), rep),
                )
            })
            .collect();
        let points = runs
            .iter()
            .flat_map(|run| run.curve.iter().map(|p| p.metric))
            .collect();
        let mut avg = average_curves(&runs);
        avg.strategy_name = r.display_name();
        Ok((avg, points))
    };
    let (run_a, pts_a) = collect(&a)?;
    let (run_b, pts_b) = collect(&b)?;
    print_curves(
        &format!(
            "Compare — {} vs {}",
            run_a.strategy_name, run_b.strategy_name
        ),
        &[run_a.clone(), run_b.clone()],
    );
    let t = wilcoxon_signed_rank(&pts_a, &pts_b);
    let mut rows = vec![
        vec![
            run_a.strategy_name.clone(),
            format!("{:.4}", area_under_curve(&run_a)),
            fmt_metric(run_a.final_metric()),
        ],
        vec![
            run_b.strategy_name.clone(),
            format!("{:.4}", area_under_curve(&run_b)),
            fmt_metric(run_b.final_metric()),
        ],
    ];
    rows.push(vec![
        "Wilcoxon".to_string(),
        format!("p = {:.4}", t.p_value),
        if t.significantly_better(0.05) {
            format!("{} significantly better", run_a.strategy_name)
        } else if t.p_value < 0.05 {
            format!("{} significantly better", run_b.strategy_name)
        } else {
            "no significant difference".to_string()
        },
    ]);
    print_table("Verdict", &["Strategy", "ALC", "Final accuracy"], &rows);
    Ok(())
}

/// Extension experiment: batch-size sensitivity. The paper fixes batch
/// 25 (MR/SST-2) and 100 (TREC); this sweeps the batch size at a fixed
/// 500-label budget to show where batch-mode selection starts costing
/// accuracy (larger batches select more redundantly per round).
pub fn sweep_batch(scale: &Scale) -> Result<(), Error> {
    let budget = 500;
    let mut rows = Vec::new();
    for &batch in &[10usize, 25, 50, 100] {
        let spec = ExperimentSpec {
            name: format!("sweep_{batch}"),
            experiment: "sweep".into(),
            split_seed: 0x5B,
            datasets: vec![DatasetEntry::new("mr")],
            groups: vec![group(&["entropy", "FHS(entropy)"])],
            pool: Some(PoolSpec {
                batch_size: Some(batch),
                rounds: Some((budget / batch).saturating_sub(1).max(1)),
                init_labeled: Some(batch),
                ..Default::default()
            }),
            ..Default::default()
        };
        let outcome = GridExecutor::new(&spec, scale).execute()?;
        for cell in outcome.blocks.iter().flat_map(|b| &b.cells) {
            rows.push(vec![
                batch.to_string(),
                cell.name.clone(),
                format!("{:.4}", area_under_curve(&cell.avg)),
                fmt_metric(cell.avg.final_metric()),
            ]);
        }
    }
    print_table(
        "Extension — batch-size sweep at a 500-label budget (MR analogue)",
        &["Batch", "Strategy", "ALC", "Final accuracy"],
        &rows,
    );
    write_json("sweep_batch", &rows);
    Ok(())
}

/// Extension experiment: class imbalance. Regenerates the MR analogue
/// with 80/20 class priors and compares the strategy family — imbalance
/// starves the minority class of labels, a classic AL stressor.
pub fn imbalance(scale: &Scale) -> Result<(), Error> {
    let spec = ExperimentSpec {
        name: "imbalance".into(),
        experiment: "imb".into(),
        split_seed: 0x1B,
        datasets: vec![
            DatasetEntry {
                dataset: "mr".into(),
                rename: Some("balanced".into()),
            },
            DatasetEntry {
                dataset: "mr?priors=0.8/0.2".into(),
                rename: Some("80/20".into()),
            },
        ],
        groups: vec![group(&[
            "random",
            "entropy",
            "WSHS(entropy)",
            "FHS(entropy)",
        ])],
        title: "Extension — class imbalance (MR analogue, 80/20 priors)".into(),
        metrics: vec!["alc".into(), "final".into()],
        dataset_column: Some("Priors".into()),
        report: ReportKind::Metrics,
        ..Default::default()
    };
    run_spec(&spec, scale, None)?;
    Ok(())
}

/// Extension experiment: statistical significance of the history-aware
/// improvements. Pools paired per-point curve metrics across repeats and
/// runs Wilcoxon signed-rank + paired bootstrap against the base
/// strategy (the paper claims its improvements are significant).
pub fn significance(scale: &Scale) {
    use histal_core::stats::{paired_bootstrap, wilcoxon_signed_rank};

    let task = TextTask::build(&TextSpec::mr(), scale, 0x51);
    let config = text_pool_config(false, scale);
    let base = BaseStrategy::Entropy;
    let collect = |strategy: Strategy| -> Vec<f64> {
        (0..scale.repeats.max(3))
            .flat_map(|r| {
                task.run(
                    strategy.clone(),
                    None,
                    &config,
                    seed_for("sig", &task.name, &strategy.name(), r),
                )
                .curve
                .into_iter()
                .map(|p| p.metric)
            })
            .collect()
    };
    let baseline = collect(Strategy::new(base));
    let mut rows = Vec::new();
    for strategy in [hus(base), wshs(base), fhs(base)] {
        let name = strategy.name();
        let variant = collect(strategy);
        let w = wilcoxon_signed_rank(&variant, &baseline);
        let b = paired_bootstrap(&variant, &baseline, 5_000, 0x51);
        rows.push(vec![
            name,
            format!("{:+.4}", w.mean_diff),
            format!("{:.4}", w.p_value),
            format!("{:.4}", b.p_value),
            if w.significantly_better(0.05) {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    print_table(
        "Extension — significance of history-aware improvements vs entropy (MR analogue)",
        &[
            "Strategy",
            "mean Δacc",
            "Wilcoxon p",
            "bootstrap p",
            "sig. better @0.05",
        ],
        &rows,
    );
    write_json("significance", &rows);
}

/// Figure 2: the four characteristic shapes of historical evaluation
/// sequences. We run plain entropy AL on the MR analogue, harvest the
/// real per-sample sequences, classify each by Mann–Kendall trend and
/// fluctuation, and report the census plus one exemplar per shape —
/// demonstrating that all four motivating patterns occur in practice.
pub fn fig2(scale: &Scale) -> Result<(), Error> {
    let spec = embedded_spec(include_str!("../../../specs/fig2.json"))?;
    run_spec(&spec, scale, None)?;
    Ok(())
}

/// Table 2 (measured): per-round wall-clock breakdown of basic vs
/// history-aware strategies on the MR analogue. The paper's claim is
/// that the history strategies add `O(1)` time on top of the `O(T)`
/// evaluation pass; here the `select` column is that overhead, measured.
pub fn table2(scale: &Scale) -> Result<(), Error> {
    let spec = embedded_spec(include_str!("../../../specs/table2.json"))?;
    run_spec(&spec, scale, None)?;
    Ok(())
}

/// Diagnostic (not a paper artifact): fully-supervised test accuracy of
/// each text dataset — the ceiling the learning curves approach.
pub fn ceiling(scale: &Scale) {
    let mut rows = Vec::new();
    for spec in [
        TextSpec::mr(),
        TextSpec::sst2(),
        TextSpec::subj(),
        TextSpec::trec(),
    ] {
        let task = TextTask::build(&spec, scale, 0xCE11);
        let mut model = task.model(0);
        let s: Vec<&histal_models::Document> = task.pool_docs.iter().collect();
        let l: Vec<&usize> = task.pool_labels.iter().collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        use histal_core::model::Model;
        use rand_chacha::rand_core::SeedableRng;
        model.fit(&s, &l, &mut rng);
        model.fit(&s, &l, &mut rng);
        let ts: Vec<&histal_models::Document> = task.test_docs.iter().collect();
        let tl: Vec<&usize> = task.test_labels.iter().collect();
        rows.push(vec![
            task.name.clone(),
            task.pool_docs.len().to_string(),
            format!("{:.4}", model.metric(&ts, &tl)),
        ]);
    }
    print_table(
        "Diagnostic — fully-supervised accuracy ceiling",
        &["Dataset", "#train", "accuracy"],
        &rows,
    );
}

// ---------------------------------------------------------------------
// E1 / E2: dataset statistics tables
// ---------------------------------------------------------------------

/// Table 3: statistics of the four text-classification datasets.
pub fn table3() {
    let mut rows = Vec::new();
    for spec in [
        TextSpec::mr(),
        TextSpec::sst2(),
        TextSpec::subj(),
        TextSpec::trec(),
    ] {
        let stats = TextDataset::generate(&spec).stats();
        rows.push(vec![
            stats.name,
            stats.n_classes.to_string(),
            stats.max_len.to_string(),
            stats.n.to_string(),
            stats.vocab.to_string(),
            stats.vocab_pre.to_string(),
        ]);
    }
    print_table(
        "Table 3 — text classification dataset statistics (synthetic analogues)",
        &["Dataset", "#class", "maxlen", "N", "|V|", "V_pre"],
        &rows,
    );
    write_json("table3", &rows);
}

/// Table 4: statistics of the three NER datasets.
pub fn table4() {
    let mut rows = Vec::new();
    for spec in [
        NerSpec::conll2003_english(),
        NerSpec::conll2002_spanish(),
        NerSpec::conll2002_dutch(),
    ] {
        let data = NerDataset::generate(&spec);
        for s in data.stats() {
            rows.push(vec![
                data.name.clone(),
                s.split,
                s.n_sentences.to_string(),
                s.n_tokens.to_string(),
                s.n_entities.to_string(),
            ]);
        }
    }
    print_table(
        "Table 4 — NER dataset statistics (synthetic analogues)",
        &["Dataset", "Split", "#Sentences", "#Tokens", "#Entities"],
        &rows,
    );
    write_json("table4", &rows);
}

// ---------------------------------------------------------------------
// E3 / E4: Figure 3 — general strategies
// ---------------------------------------------------------------------

/// Figure 3, rows 1–3: {entropy, LC, EGL} × {base, HUS, WSHS, FHS, LHS}
/// on MR, SST-2 and TREC (LHS only on the binary datasets, as in §5.4).
///
/// With `journal = Some(..)` every (cell, repeat) checkpoint lands in
/// the journal and previously completed cells are replayed instead of
/// re-run (`histal-experiments resume`).
pub fn fig3_text(
    scale: &Scale,
    journal: Option<&JournalCtx>,
) -> Result<Vec<(String, Vec<RunResult>)>, Error> {
    let spec = embedded_spec(include_str!("../../../specs/fig3_text.json"))?;
    let outcome = run_spec(&spec, scale, journal)?;
    Ok(outcome
        .blocks
        .iter()
        .map(|b| {
            (
                format!("{}:{}", b.dataset, b.label),
                b.cells.iter().map(|c| c.avg.clone()).collect(),
            )
        })
        .collect())
}

/// Figure 3, row 4: {random, LC, WSHS(LC), FHS(LC)} on the three NER
/// datasets; `journal` checkpoints each (cell, repeat) for `resume`.
pub fn fig3_ner(
    scale: &Scale,
    journal: Option<&JournalCtx>,
) -> Result<Vec<(String, Vec<RunResult>)>, Error> {
    let spec = embedded_spec(include_str!("../../../specs/fig3_ner.json"))?;
    let outcome = run_spec(&spec, scale, journal)?;
    Ok(outcome
        .blocks
        .iter()
        .map(|b| {
            (
                b.dataset.clone(),
                b.cells.iter().map(|c| c.avg.clone()).collect(),
            )
        })
        .collect())
}

// ---------------------------------------------------------------------
// E5: Table 5 — annotation cost
// ---------------------------------------------------------------------

/// Table 5: labeled samples needed to reach each target accuracy on the
/// MR analogue, for all fifteen strategy variants. The target columns
/// come from `--targets`, so this grid is assembled in code rather than
/// loaded from a checked-in file.
pub fn table5(scale: &Scale, targets: &[f64]) -> Result<(), Error> {
    let mut strategies = vec![StrategyEntry::new("random")];
    for base in ["entropy", "LC", "EGL"] {
        strategies.push(StrategyEntry::new(base));
        strategies.push(StrategyEntry::new(format!("HUS({base})")));
        strategies.push(StrategyEntry::new(format!("WSHS({base})")));
        strategies.push(StrategyEntry::new(format!("FHS({base})")));
        let mut lhs = StrategyEntry::new(format!("LHS({base})"));
        lhs.experiment = Some("t5-lhs".into());
        strategies.push(lhs);
    }
    let spec = ExperimentSpec {
        name: "table5".into(),
        experiment: "t5".into(),
        split_seed: 0xF3,
        datasets: vec![DatasetEntry::new("mr")],
        groups: vec![GroupSpec {
            label: String::new(),
            strategies,
        }],
        title: "Table 5 — annotated samples required (MR analogue)".into(),
        metrics: targets.iter().map(|t| format!("target:{t}")).collect(),
        report: ReportKind::Metrics,
        ..Default::default()
    };
    run_spec(&spec, scale, None)?;
    Ok(())
}

// ---------------------------------------------------------------------
// E6: Figure 4 — state-of-the-art strategies
// ---------------------------------------------------------------------

/// Figure 4: history wrappers on the SOTA strategies — BALD and EGL-word
/// for text; BALD and MNLP for NER. Two specs (one per task kind) whose
/// grouped payloads merge into the single historical `results/fig4.json`.
pub fn fig4(scale: &Scale) -> Result<(), Error> {
    let text = ExperimentSpec {
        name: "fig4".into(),
        experiment: "fig4".into(),
        split_seed: 0xF4,
        datasets: vec![
            DatasetEntry::new("mr"),
            DatasetEntry::new("sst2"),
            DatasetEntry::new("trec"),
        ],
        groups: vec![group(&[
            "bald",
            "WSHS(bald)",
            "egl-word",
            "WSHS(egl-word)",
            "FHS(egl-word)",
        ])],
        title: "Figure 4 — text / {dataset}".into(),
        json_key: Some("{dataset}".into()),
        ..Default::default()
    };
    let ner = ExperimentSpec {
        name: "fig4n".into(),
        experiment: "fig4n".into(),
        datasets: vec![
            DatasetEntry::new("conll2003-en"),
            DatasetEntry::new("conll2002-es"),
            DatasetEntry::new("conll2002-nl"),
        ],
        groups: vec![group(&["bald", "WSHS(bald)", "mnlp", "WSHS(mnlp)"])],
        title: "Figure 4 — NER / {dataset}".into(),
        json_key: Some("{dataset}".into()),
        ..Default::default()
    };
    let mut json = Vec::new();
    for spec in [text, ner] {
        let outcome = GridExecutor::new(&spec, scale).execute()?;
        // Curves + json_key always renders Grouped.
        if let Rendered::Grouped(groups) = render_spec(&spec, &outcome)? {
            json.extend(groups);
        }
    }
    write_json("fig4", &json);
    Ok(())
}

// ---------------------------------------------------------------------
// E7: Figure 5 — hyper-parameter sensitivity
// ---------------------------------------------------------------------

/// Figure 5: WSHS window size l ∈ {2, 3, 6} (left) and FHS fluctuation
/// weight w_f ∈ {0.2, 0.4, 0.5} at l = 3 (right), on the MR analogue.
/// `journal` checkpoints each (cell, repeat) for `resume`.
pub fn fig5(scale: &Scale, journal: Option<&JournalCtx>) -> Result<(), Error> {
    let spec = embedded_spec(include_str!("../../../specs/fig5.json"))?;
    run_spec(&spec, scale, journal)?;
    Ok(())
}

// ---------------------------------------------------------------------
// E8: Table 6 — selection statistics
// ---------------------------------------------------------------------

/// Table 6: average WSHS score and history fluctuation of the samples
/// selected by WSHS, FHS and LHS on the MR analogue.
pub fn table6(scale: &Scale) -> Result<(), Error> {
    let spec = embedded_spec(include_str!("../../../specs/table6.json"))?;
    run_spec(&spec, scale, None)?;
    Ok(())
}

// ---------------------------------------------------------------------
// E9: Table 7 — LHS ablation
// ---------------------------------------------------------------------

/// Which predictor/ranker the ablation harness should use (the DESIGN.md
/// extension ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table7Variant {
    /// Paper configuration: LSTM predictor + LambdaMART.
    Paper,
    /// AR(p) predictor instead of the LSTM.
    ArPredictor,
    /// Linear pairwise ranker instead of LambdaMART.
    LinearRanker,
    /// Paper configuration plus the lag-1 autocorrelation feature (the
    /// paper's "explore more effective features" future work).
    Autocorr,
}

/// Insert an extra `key=value` parameter into an `LHS...(base)` token,
/// e.g. `LHS{history=false}(entropy)` + `predictor=ar:3` →
/// `LHS{predictor=ar:3,history=false}(entropy)`.
fn add_lhs_param(token: &str, param: &str) -> String {
    match token.split_once('{') {
        Some((head, rest)) => format!("{head}{{{param},{rest}"),
        None => match token.split_once('(') {
            Some((head, rest)) => format!("{head}{{{param}}}({rest}"),
            None => token.to_string(),
        },
    }
}

/// Table 7: accuracy on the MR analogue when each LHS feature group is
/// removed in turn. The non-`Paper` variants rewrite the checked-in
/// spec's strategy tokens (an extra `predictor=`/`ranker=`/`autocorr=`
/// parameter); seeds are untouched because they derive from the base
/// strategy name, not the LHS plan.
pub fn table7(scale: &Scale, variant: Table7Variant) -> Result<(), Error> {
    let mut spec = embedded_spec(include_str!("../../../specs/table7.json"))?;
    if variant != Table7Variant::Paper {
        spec.name = format!("table7_{variant:?}");
        spec.title = spec.title.replace("Paper", &format!("{variant:?}"));
        let param = match variant {
            Table7Variant::Paper => unreachable!("guarded above"),
            Table7Variant::ArPredictor => "predictor=ar:3",
            Table7Variant::LinearRanker => "ranker=linear",
            Table7Variant::Autocorr => "autocorr=true",
        };
        for g in &mut spec.groups {
            for entry in &mut g.strategies {
                entry.strategy = add_lhs_param(&entry.strategy, param);
            }
        }
    }
    run_spec(&spec, scale, None)?;
    Ok(())
}

// ---------------------------------------------------------------------
// BENCH: harness performance trajectory
// ---------------------------------------------------------------------

/// Per-cell timing record of the BENCH emitter. `wall_ms` is the
/// end-to-end wall clock of the cell (all repeats); `fit_ms`/`eval_ms`/
/// `score_ms`/`select_ms` sum the per-round phase timings the driver
/// records (`score_ms` = history folding + density weighting,
/// `select_ms` = batch selection).
#[derive(serde::Serialize, serde::Deserialize)]
pub struct BenchCell {
    pub experiment: String,
    pub dataset: String,
    pub strategy: String,
    pub wall_ms: f64,
    pub fit_ms: f64,
    pub eval_ms: f64,
    pub score_ms: f64,
    pub select_ms: f64,
}

/// Adaptive-scheduler slice of `BENCH_harness.json`: what the pruning
/// policy of the checked-in diagnostic sweep saved. Cell-rounds are
/// recorded curve points; `saved_cell_rounds` is the work an exhaustive
/// run would have spent that the scheduler cut.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct AdaptiveBench {
    pub spec: String,
    pub cells: usize,
    pub pruned_cells: usize,
    pub scheduled_cell_rounds: usize,
    pub completed_cell_rounds: usize,
    pub saved_cell_rounds: usize,
}

/// One cell of the checked-in transfer matrix
/// (`specs/transfer-matrix.json`): `strategy` trained on `train`,
/// deployed on `apply`. The ALC is deterministic (unlike the timings),
/// so EXPERIMENTS.md can cite these rows directly.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TransferBenchRow {
    pub strategy: String,
    pub train: String,
    pub apply: String,
    pub alc: f64,
}

/// Wall clock of one deduplicated selector training performed by the
/// transfer grid, keyed by the plan label (e.g. `LAL(entropy)@mr`).
/// [`selector_train_gate`] re-times these against the committed values.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct SelectorTrainBench {
    pub selector: String,
    pub wall_ms: f64,
}

/// Top-level payload of `BENCH_harness.json`.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct BenchReport {
    pub git_rev: String,
    pub threads: usize,
    pub cells: Vec<BenchCell>,
    /// Pruning summary of the adaptive sweep; absent in artifacts
    /// recorded before the scheduler existed.
    #[serde(default)]
    pub adaptive: Option<AdaptiveBench>,
    /// Measured transfer matrix of `specs/transfer-matrix.json`; empty
    /// in artifacts recorded before transfer grids existed.
    #[serde(default)]
    pub transfer: Vec<TransferBenchRow>,
    /// Selector-training wall clocks of the transfer grid.
    #[serde(default)]
    pub selector_train: Vec<SelectorTrainBench>,
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Fold one executed cell into a [`BenchCell`]: the cell's wall clock
/// plus the per-round phase timings summed over every repeat.
fn bench_cell(experiment: &str, dataset: &str, cell: &CellOutcome) -> BenchCell {
    let (mut fit_ms, mut eval_ms, mut score_ms, mut select_ms) = (0.0, 0.0, 0.0, 0.0);
    for round in cell.runs.iter().flat_map(|r| &r.rounds) {
        fit_ms += round.fit_ms;
        eval_ms += round.eval_ms;
        score_ms += round.score_ms;
        select_ms += round.select_ms;
    }
    let strategy = cell.name.clone();
    let wall_ms = cell.wall_ms;
    eprintln!(
        "  {experiment:>9} {dataset:<20} {strategy:<14} wall {wall_ms:>9.1} ms \
         (fit {fit_ms:.1} / eval {eval_ms:.1} / score {score_ms:.1} / select {select_ms:.1})"
    );
    BenchCell {
        experiment: experiment.into(),
        dataset: dataset.into(),
        strategy,
        wall_ms,
        fit_ms,
        eval_ms,
        score_ms,
        select_ms,
    }
}

/// BENCH: time a representative slice of the experiment grid and write
/// the perf trajectory to `BENCH_harness.json` at the repo root.
///
/// Cells run **serially** (the executor's serial mode) so each cell's
/// wall clock is unpolluted by its neighbours; the parallelism being
/// measured is the intra-cell kind (repeat fan-out plus the chunked
/// training kernels), which scales with `--threads`. Timings vary run to
/// run, but the `RunResult` behind each cell is byte-identical at any
/// thread count.
pub fn bench(scale: &Scale) -> Result<(), Error> {
    bench_impl(scale, false)
}

/// CI smoke mode (`bench --check`): run a reduced grid — MR text cells
/// plus the diversity cell, no NER — validate the timing diagnostics,
/// and never touch `BENCH_harness.json`.
pub fn bench_check(scale: &Scale) -> Result<(), Error> {
    bench_impl(scale, true)
}

/// The timed grid of `bench` (and, reduced, of `bench --check`): the
/// text cells, the diversity cell, and — full mode only — the beamed
/// NER cells. [`grid_perf_gate`] re-times the *full* grid against the
/// committed artifact, so keep the two callers sharing this builder.
fn bench_grid_specs(check: bool) -> Vec<ExperimentSpec> {
    let text_datasets = if check {
        vec![DatasetEntry::new("mr")]
    } else {
        vec![
            DatasetEntry::new("mr"),
            DatasetEntry::new("sst2"),
            DatasetEntry::new("trec"),
        ]
    };
    let mut specs = vec![
        ExperimentSpec {
            name: "bench".into(),
            experiment: "bench".into(),
            split_seed: 0xBE,
            datasets: text_datasets,
            groups: vec![group(&["random", "entropy", "WSHS(entropy)"])],
            ..Default::default()
        },
        // Diversity-combinator cell: density weighting + MMR batch
        // selection on MR — the cosine-heavy path the scoring engine
        // optimizes.
        ExperimentSpec {
            name: "bench-div".into(),
            experiment: "bench-div".into(),
            split_seed: 0xBE,
            datasets: vec![DatasetEntry::new("mr")],
            groups: vec![group(&["WSHS(entropy)+density+mmr"])],
            pool: Some(PoolSpec {
                representations: true,
                ..Default::default()
            }),
            ..Default::default()
        },
    ];
    if !check {
        // δ = 8 bounds the per-timestep log Z loss at
        // −ln(1 − L·e^{−δ}) = −ln(1 − 17·e^{−8}) ≈ 5.7e-3 (DESIGN.md
        // §5.7) while pruning most lattice sources once the CRF
        // sharpens; the figure specs never set a beam, so their outputs
        // stay exact.
        specs.push(ExperimentSpec {
            name: "bench-ner".into(),
            experiment: "bench-ner".into(),
            datasets: vec![DatasetEntry::new("conll2003-en")],
            groups: vec![group(&["LC", "WSHS(LC)"])],
            ner_beam: Some(8.0),
            ..Default::default()
        });
    }
    specs
}

/// The checked-in adaptive diagnostic sweep (pins its own scale, so
/// the CLI scale only fills gaps).
fn adaptive_sweep_spec() -> Result<ExperimentSpec, Error> {
    embedded_spec(include_str!("../../../specs/adaptive-sweep.json"))
}

/// The checked-in cross-dataset transfer matrix.
fn transfer_matrix_spec() -> Result<TransferSpec, Error> {
    let spec = TransferSpec::from_json(include_str!("../../../specs/transfer-matrix.json"))?;
    spec.validate()?;
    Ok(spec)
}

fn bench_impl(scale: &Scale, check: bool) -> Result<(), Error> {
    let threads = rayon::current_num_threads();
    eprintln!("# BENCH: {threads} thread(s), scale {:.2}", scale.factor);

    let specs = bench_grid_specs(check);
    let mut cells: Vec<BenchCell> = Vec::new();
    for spec in &specs {
        let outcome = GridExecutor::new(spec, scale).serial().execute()?;
        for block in &outcome.blocks {
            for c in &block.cells {
                cells.push(bench_cell(spec.experiment_id(), &block.dataset, c));
            }
        }
    }

    if !check {
        // The pool-scaling grid (selection-only wall clocks at 10k/100k/1M
        // rows, exact vs LSH, resident vs mmap) rides along in the same
        // artifact; its own spec format is documented in `scaling`.
        eprintln!("# BENCH: pool-scaling grid (specs/bench-pool-scaling.json)");
        let scaling_spec = crate::scaling::PoolScalingSpec::from_json(include_str!(
            "../../../specs/bench-pool-scaling.json"
        ))?;
        cells.extend(crate::scaling::run_pool_scaling(&scaling_spec, None)?);
    }

    if check {
        assert!(!cells.is_empty(), "bench --check produced no cells");
        for c in &cells {
            assert!(
                c.wall_ms.is_finite() && c.wall_ms > 0.0,
                "{}/{}: bad wall_ms {}",
                c.experiment,
                c.strategy,
                c.wall_ms
            );
            assert!(
                c.score_ms.is_finite() && c.score_ms >= 0.0,
                "{}/{}: bad score_ms {}",
                c.experiment,
                c.strategy,
                c.score_ms
            );
            assert!(
                c.select_ms.is_finite() && c.select_ms >= 0.0,
                "{}/{}: bad select_ms {}",
                c.experiment,
                c.strategy,
                c.select_ms
            );
        }
        assert!(
            cells.iter().any(|c| c.experiment == "bench-div"),
            "bench --check must cover the diversity cell"
        );
        obs_overhead_gate(scale, &cells);
        sharded_metrics_gate(scale)?;
        kernel_equivalence_gate()?;
        grid_perf_gate()?;
        adaptive_gate()?;
        pool_scaling_gate()?;
        sessions_throughput_gate()?;
        selector_train_gate()?;
        println!("bench --check OK ({} cells)", cells.len());
        return Ok(());
    }

    // The adaptive diagnostic sweep rides along in the artifact: its
    // pruning counts are deterministic (unlike the timings), so CI can
    // pin them and EXPERIMENTS.md can cite them.
    eprintln!("# BENCH: adaptive sweep (specs/adaptive-sweep.json)");
    let sweep = adaptive_sweep_spec()?;
    let sweep_outcome = GridExecutor::new(&sweep, scale).serial().execute()?;
    let summary = sweep_outcome
        .adaptive
        .expect("adaptive sweep spec carries a prune policy");
    let adaptive = Some(AdaptiveBench {
        spec: "specs/adaptive-sweep.json".into(),
        cells: sweep_outcome.blocks.iter().map(|b| b.cells.len()).sum(),
        pruned_cells: summary.pruned_cells,
        scheduled_cell_rounds: summary.scheduled_cell_rounds,
        completed_cell_rounds: summary.completed_cell_rounds,
        saved_cell_rounds: summary.saved_cell_rounds(),
    });

    // The cross-dataset transfer matrix rides along too: its ALCs are
    // deterministic, and the deduplicated selector-training wall clocks
    // give `selector_train_gate` its reference.
    eprintln!("# BENCH: transfer matrix (specs/transfer-matrix.json)");
    let transfer_outcome = execute_transfer(&transfer_matrix_spec()?, scale, None, true)?;
    let transfer = transfer_outcome
        .rows
        .iter()
        .map(|r| TransferBenchRow {
            strategy: r.strategy.clone(),
            train: r.train.clone(),
            apply: r.apply.clone(),
            alc: r.alc,
        })
        .collect();
    let selector_train = transfer_outcome
        .selector_train_ms
        .iter()
        .map(|(selector, wall_ms)| SelectorTrainBench {
            selector: selector.clone(),
            wall_ms: *wall_ms,
        })
        .collect();

    let report = BenchReport {
        git_rev: git_rev(),
        threads,
        cells,
        adaptive,
        transfer,
        selector_train,
    };
    let body = serde_json::to_string_pretty(&report).expect("serializable bench report");
    let path = "BENCH_harness.json";
    match std::fs::write(path, body) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("warn: cannot write {path}: {e}"),
    }
    Ok(())
}

/// `bench --check` gate: with no subscriber installed (the default),
/// instrumentation must be free. Measures the disabled fast path (one
/// relaxed atomic load per callsite), counts how many callsites one MR
/// entropy repeat actually fires, and bounds the implied per-cell cost at
/// 5% of that cell's measured wall clock.
///
/// Runs after every timed cell so the counting pass (which installs a
/// trace-level collector) can't pollute the timings.
fn obs_overhead_gate(scale: &Scale, cells: &[BenchCell]) {
    use histal_obs::trace::{disabled_span_cost_ns, Level};
    use histal_obs::{subscriber_scope, CollectingSubscriber};
    use std::sync::Arc;

    let per_span_ns = disabled_span_cost_ns(2_000_000);
    assert!(
        per_span_ns < 250.0,
        "disabled span cost {per_span_ns:.1} ns — the no-subscriber fast path regressed"
    );

    let entropy = cells
        .iter()
        .find(|c| c.experiment == "bench" && c.strategy == "entropy")
        .expect("bench --check always times an MR entropy cell");

    let task = TextTask::build(&TextSpec::mr(), scale, 0xBE);
    let config = text_pool_config(false, scale);
    let strategy = Strategy::new(BaseStrategy::Entropy);
    let name = strategy.name();
    let collector = Arc::new(CollectingSubscriber::with_max_level(Level::Trace));
    let hits = {
        let _guard = subscriber_scope(collector.clone());
        task.run(
            strategy,
            None,
            &config,
            seed_for("bench", &task.name, &name, 0),
        );
        collector.records().len()
    };
    assert!(hits > 0, "instrumented run fired no callsites");
    let implied_ms = hits as f64 * scale.repeats as f64 * per_span_ns / 1e6;
    let budget_ms = entropy.wall_ms * 0.05;
    assert!(
        implied_ms < budget_ms,
        "no-subscriber overhead gate: {hits} callsites/repeat × {per_span_ns:.1} ns \
         → {implied_ms:.3} ms implied, budget {budget_ms:.3} ms (5% of {:.1} ms)",
        entropy.wall_ms
    );
    eprintln!(
        "  obs gate: disabled span {per_span_ns:.1} ns, {hits} callsites/repeat, \
         implied {implied_ms:.3} ms < {budget_ms:.3} ms budget"
    );
}

/// `bench --check` gate: per-worker metric shards merged in index order
/// must add up exactly. Runs the MR entropy cell with one registry per
/// repeat, merges, and checks the counters against the runs' own round
/// diagnostics. A missing counter or a failed run surfaces as a
/// structured [`Error`] (span context attached) instead of a panic.
fn sharded_metrics_gate(scale: &Scale) -> Result<(), Error> {
    use histal_core::driver::ActiveLearner;
    use histal_obs::{MetricValue, MetricsRegistry};
    use std::sync::Arc;

    let task = TextTask::build(&TextSpec::mr(), scale, 0xBE);
    let config = text_pool_config(false, scale);
    let strategy = Strategy::new(BaseStrategy::Entropy);
    let name = strategy.name();
    let shards: Vec<Arc<MetricsRegistry>> = (0..scale.repeats)
        .map(|_| Arc::new(MetricsRegistry::new()))
        .collect();
    let runs: Vec<Result<RunResult, Error>> = rayon::run_indexed(scale.repeats, |r| {
        let mut learner = ActiveLearner::builder(task.model(0))
            .pool(task.pool_docs.clone(), task.pool_labels.clone())
            .test(task.test_docs.clone(), task.test_labels.clone())
            .strategy(strategy.clone())
            .config(config.clone())
            .seed(seed_for("bench", &task.name, &name, r))
            .metrics(shards[r].clone())
            .build();
        learner.run()
    });
    let runs: Vec<RunResult> = runs.into_iter().collect::<Result<_, _>>()?;
    let merged = MetricsRegistry::new();
    for shard in &shards {
        merged.merge_from(shard);
    }
    let counter = |metric: &str| -> Result<u64, Error> {
        merged
            .snapshot()
            .into_iter()
            .find_map(|(n, v)| match v {
                MetricValue::Counter(c) if n == metric => Some(c),
                _ => None,
            })
            .ok_or_else(|| Error::invariant(format!("merged registry missing counter {metric}")))
    };
    let expect_rounds: u64 = runs.iter().map(|r| r.rounds.len() as u64).sum();
    let expect_selected: u64 = runs
        .iter()
        .flat_map(|r| &r.rounds)
        .map(|round| round.selected.len() as u64)
        .sum();
    assert_eq!(
        counter("al.rounds")?,
        expect_rounds,
        "sharded al.rounds counter disagrees with round diagnostics"
    );
    assert_eq!(
        counter("al.selected")?,
        expect_selected,
        "sharded al.selected counter disagrees with round diagnostics"
    );
    eprintln!(
        "  metrics gate: {} shards merged, al.rounds {expect_rounds}, al.selected {expect_selected}",
        shards.len()
    );
    Ok(())
}

/// Everything about a [`GridOutcome`] that must be invariant under a
/// kernel-mode switch: curves, per-round selections and history
/// diagnostics, and the recorded score sequences — floats compared as
/// raw bits. Timings are deliberately excluded.
fn outcome_fingerprint(outcome: &GridOutcome) -> String {
    use std::fmt::Write;
    let mut fp = String::new();
    for block in &outcome.blocks {
        for cell in &block.cells {
            let _ = write!(fp, "\n{}/{}:", block.dataset, cell.name);
            for run in &cell.runs {
                for p in &run.curve {
                    let _ = write!(fp, " {}@{:016x}", p.n_labeled, p.metric.to_bits());
                }
                for round in &run.rounds {
                    let _ = write!(
                        fp,
                        " sel{:?} w{:016x} f{:016x}",
                        round.selected,
                        round.mean_wshs_of_selected.to_bits(),
                        round.mean_fluct_of_selected.to_bits()
                    );
                }
                for seq in &run.history {
                    for v in seq {
                        let _ = write!(fp, " h{:016x}", v.to_bits());
                    }
                }
            }
        }
    }
    fp
}

/// `bench --check` gate (DESIGN.md §5.7): the kernel layer must be a
/// pure perf change. Runs the same tiny text + NER cells under the
/// scalar reference kernels and the lane dispatch and requires every
/// curve point, selection, and diagnostic to match to the bit — the
/// NER cells with the δ = 8 scoring beam enabled, so the pruned path is
/// covered by the mode-invariance contract too.
fn kernel_equivalence_gate() -> Result<(), Error> {
    use histal_models::kernels::{self, KernelMode};

    let smoke = Scale {
        factor: 0.02,
        repeats: 1,
    };
    let specs = [
        ExperimentSpec {
            name: "kernel-smoke-text".into(),
            experiment: "kernel-smoke-text".into(),
            split_seed: 0xBE,
            datasets: vec![DatasetEntry::new("mr")],
            groups: vec![group(&["entropy", "WSHS(entropy)"])],
            ..Default::default()
        },
        ExperimentSpec {
            name: "kernel-smoke-ner".into(),
            experiment: "kernel-smoke-ner".into(),
            datasets: vec![DatasetEntry::new("conll2003-en")],
            groups: vec![group(&["LC", "WSHS(LC)"])],
            ner_beam: Some(8.0),
            ..Default::default()
        },
    ];
    let mut fingerprints = Vec::new();
    for mode in [KernelMode::Scalar, KernelMode::Lanes] {
        kernels::set_mode(mode);
        let mut fp = String::new();
        for spec in &specs {
            let outcome = GridExecutor::new(spec, &smoke).serial().execute()?;
            fp.push_str(&outcome_fingerprint(&outcome));
        }
        fingerprints.push(fp);
    }
    kernels::set_mode(KernelMode::Lanes);
    assert!(
        fingerprints[0] == fingerprints[1],
        "kernel equivalence gate: scalar and lane kernels diverged\n\
         --- scalar ---{}\n--- lanes ---{}",
        fingerprints[0],
        fingerprints[1]
    );
    eprintln!(
        "  kernel gate: scalar == lanes across text+NER smoke cells \
         ({} fingerprint bytes)",
        fingerprints[0].len()
    );
    Ok(())
}

/// Load the committed `BENCH_harness.json` for a regression gate.
/// Returns `None` (after a note) when no comparable reference exists —
/// file missing, unreadable, or recorded under a different thread
/// count.
fn committed_report(gate: &str) -> Option<BenchReport> {
    let raw = match std::fs::read_to_string("BENCH_harness.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("  {gate}: skipped (no BENCH_harness.json: {e})");
            return None;
        }
    };
    let report: BenchReport = match serde_json::from_str(&raw) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("  {gate}: skipped (unreadable BENCH_harness.json: {e})");
            return None;
        }
    };
    let threads = rayon::current_num_threads();
    if report.threads != threads {
        eprintln!(
            "  {gate}: skipped (reference recorded with {} thread(s), running {threads})",
            report.threads
        );
        return None;
    }
    Some(report)
}

/// `bench --check` gate: harness perf must not regress anywhere in the
/// timed grid. Re-times the *full* bench grid (text, diversity, beamed
/// NER) serially at the committed bench scale ([`Scale::quick`], the
/// scale `bench` records) and fails if any fresh cell's wall clock
/// exceeds its committed `BENCH_harness.json` twin — matched by
/// `(experiment, dataset, strategy)` — by more than 20%. Cells without
/// a committed twin are noted and skipped; pool-scaling rows have their
/// own gate.
fn grid_perf_gate() -> Result<(), Error> {
    let gate = "grid perf gate";
    let Some(report) = committed_report(gate) else {
        return Ok(());
    };
    let (mut compared, mut skipped) = (0usize, 0usize);
    for spec in bench_grid_specs(false) {
        // Per-(dataset, strategy) walls of one serial re-timing pass.
        let time_grid = || -> Result<Vec<(String, String, f64)>, Error> {
            let outcome = GridExecutor::new(&spec, &Scale::quick())
                .serial()
                .execute()?;
            Ok(outcome
                .blocks
                .iter()
                .flat_map(|b| {
                    b.cells
                        .iter()
                        .map(|c| (b.dataset.clone(), c.name.clone(), c.wall_ms))
                })
                .collect())
        };
        let mut walls = time_grid()?;
        let over_limit = |walls: &[(String, String, f64)]| {
            walls.iter().any(|(dataset, strategy, wall)| {
                report
                    .cells
                    .iter()
                    .find(|c| {
                        c.experiment == spec.experiment_id()
                            && &c.dataset == dataset
                            && &c.strategy == strategy
                    })
                    .is_some_and(|r| *wall > r.wall_ms * 1.2)
            })
        };
        // One retry absorbs transient machine noise — a best-of-two
        // still catches real regressions, which reproduce.
        if over_limit(&walls) {
            eprintln!(
                "  {gate}: {} over limit on first pass — re-timing once",
                spec.experiment_id()
            );
            for (prev, fresh) in walls.iter_mut().zip(time_grid()?) {
                prev.2 = prev.2.min(fresh.2);
            }
        }
        for (dataset, strategy, wall) in &walls {
            let reference = report.cells.iter().find(|c| {
                c.experiment == spec.experiment_id()
                    && &c.dataset == dataset
                    && &c.strategy == strategy
            });
            let Some(reference) = reference else {
                eprintln!(
                    "  {gate}: no committed {}/{dataset}/{strategy} cell — skipped",
                    spec.experiment_id()
                );
                skipped += 1;
                continue;
            };
            let limit = reference.wall_ms * 1.2;
            assert!(
                *wall <= limit,
                "{gate}: {}/{dataset}/{strategy} wall {wall:.1} ms exceeds {limit:.1} ms \
                 (committed {:.1} ms + 20%)",
                spec.experiment_id(),
                reference.wall_ms
            );
            compared += 1;
        }
    }
    assert!(compared > 0, "{gate} compared no cells");
    eprintln!("  {gate}: {compared} cell(s) within +20% of committed ({skipped} skipped)");
    Ok(())
}

/// `bench --check` gate: selector training must not regress. Re-times
/// only the *deduplicated* selector trainings of the checked-in
/// transfer matrix (not the full apply grid) at the committed bench
/// scale and fails if any exceeds its committed
/// `BENCH_harness.json` twin — matched by plan label — by more than
/// 20%. Skipped when the committed artifact predates transfer grids.
fn selector_train_gate() -> Result<(), Error> {
    let gate = "selector train gate";
    let Some(report) = committed_report(gate) else {
        return Ok(());
    };
    if report.selector_train.is_empty() {
        eprintln!("  {gate}: skipped (no committed selector_train rows)");
        return Ok(());
    }
    // The same dedup the executor performs: one training per distinct
    // plan cache key across the strategy × train grid.
    let spec = transfer_matrix_spec()?;
    let mut plans = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    for train in &spec.train {
        for token in &spec.strategies {
            let plan = registry::parse_strategy(&inject_train(token, train))?
                .lhs
                .expect("transfer strategies are selector tokens");
            let key = plan.cache_key();
            if !keys.contains(&key) {
                keys.push(key);
                plans.push(plan);
            }
        }
    }
    let time_all = |plans: &[registry::LhsPlan]| -> Result<Vec<f64>, Error> {
        plans
            .iter()
            .map(|plan| {
                let start = std::time::Instant::now();
                train_lhs_plan(plan, &Scale::quick())?;
                Ok(start.elapsed().as_secs_f64() * 1e3)
            })
            .collect()
    };
    let reference = |label: &str| {
        report
            .selector_train
            .iter()
            .find(|r| r.selector == label)
            .map(|r| r.wall_ms)
    };
    let mut walls = time_all(&plans)?;
    let over_limit = |walls: &[f64]| {
        plans
            .iter()
            .zip(walls)
            .any(|(plan, wall)| reference(&plan.label()).is_some_and(|r| *wall > r * 1.2))
    };
    // One retry absorbs transient machine noise — a best-of-two still
    // catches real regressions, which reproduce.
    if over_limit(&walls) {
        eprintln!("  {gate}: over limit on first pass — re-timing once");
        for (prev, fresh) in walls.iter_mut().zip(time_all(&plans)?) {
            *prev = prev.min(fresh);
        }
    }
    let (mut compared, mut skipped) = (0usize, 0usize);
    for (plan, wall) in plans.iter().zip(&walls) {
        let label = plan.label();
        let Some(committed) = reference(&label) else {
            eprintln!("  {gate}: no committed {label} row — skipped");
            skipped += 1;
            continue;
        };
        let limit = committed * 1.2;
        assert!(
            *wall <= limit,
            "{gate}: {label} train wall {wall:.1} ms exceeds {limit:.1} ms \
             (committed {committed:.1} ms + 20%)"
        );
        compared += 1;
    }
    assert!(compared > 0, "{gate} compared no selectors");
    eprintln!("  {gate}: {compared} selector(s) within +20% of committed ({skipped} skipped)");
    Ok(())
}

/// `bench --check` gate: the adaptive scheduler must actually pay for
/// itself on the checked-in diagnostic sweep — prune at least 30% of
/// the scheduled cell-rounds — while still reporting the same
/// per-dataset winning strategy (by mean per-repeat ALC) as an
/// exhaustive run of the identical spec with pruning off.
fn adaptive_gate() -> Result<(), Error> {
    let spec = adaptive_sweep_spec()?;
    let scale = Scale::quick();
    let outcome = GridExecutor::new(&spec, &scale).serial().execute()?;
    let summary = outcome
        .adaptive
        .expect("adaptive sweep spec carries a prune policy");
    let saved = summary.saved_cell_rounds() as f64 / summary.scheduled_cell_rounds.max(1) as f64;
    assert!(
        saved >= 0.30,
        "adaptive gate: pruning saved only {:.0}% of cell-rounds ({} of {})",
        saved * 100.0,
        summary.saved_cell_rounds(),
        summary.scheduled_cell_rounds
    );

    let mut exhaustive = spec.clone();
    exhaustive.prune = None;
    let full = GridExecutor::new(&exhaustive, &scale).serial().execute()?;

    let winner = |cells: &[CellOutcome], full_points: usize, survivors_only: bool| -> String {
        cells
            .iter()
            .filter(|c| !survivors_only || c.runs.iter().all(|r| r.curve.len() == full_points))
            .max_by(|a, b| mean_auc(a).partial_cmp(&mean_auc(b)).expect("finite AUCs"))
            .map(|c| c.name.clone())
            .expect("non-empty block")
    };
    for (adaptive_block, full_block) in outcome.blocks.iter().zip(&full.blocks) {
        let points = adaptive_block.config.rounds + 1;
        let picked = winner(&adaptive_block.cells, points, true);
        let truth = winner(&full_block.cells, points, false);
        assert_eq!(
            picked, truth,
            "adaptive gate: {} winner diverged (adaptive {picked}, exhaustive {truth})",
            adaptive_block.dataset
        );
        eprintln!(
            "  adaptive gate: {} winner {picked} (matches exhaustive)",
            adaptive_block.dataset
        );
    }
    eprintln!(
        "  adaptive gate: saved {}/{} cell-rounds ({:.0}%), {} of {} cells pruned",
        summary.saved_cell_rounds(),
        summary.scheduled_cell_rounds,
        saved * 100.0,
        summary.pruned_cells,
        outcome.blocks.iter().map(|b| b.cells.len()).sum::<usize>()
    );
    Ok(())
}

/// `bench --check` gate: pool-scaling smoke. Runs the committed scaling
/// grid at its smallest size only (10k rows — seconds, not minutes) and
/// requires the LSH-indexed path to beat the exact path outright for
/// every combinator that ran both ways. A same-order ANN path means the
/// index is not pruning candidates and the scaling story is broken.
fn pool_scaling_gate() -> Result<(), Error> {
    let spec = crate::scaling::PoolScalingSpec::from_json(include_str!(
        "../../../specs/bench-pool-scaling.json"
    ))?;
    let cap = spec.sizes.first().copied();
    let cells = crate::scaling::run_pool_scaling(&spec, cap)?;
    let wall = |strategy: &str, mode: &str| {
        cells
            .iter()
            .find(|c| c.strategy == format!("{strategy}/{mode}"))
            .map(|c| c.wall_ms)
    };
    let mut compared = 0;
    for strategy in &spec.strategies {
        if let (Some(exact), Some(ann)) = (wall(strategy, "exact"), wall(strategy, "ann")) {
            assert!(
                ann < exact,
                "pool scaling gate: {strategy} ann {ann:.1} ms not faster than exact {exact:.1} ms \
                 at {} rows",
                cap.unwrap_or(0)
            );
            compared += 1;
        }
    }
    assert!(
        compared > 0,
        "pool scaling gate compared no exact/ann pairs"
    );
    eprintln!("  pool scaling gate: ann beat exact on {compared} combinator(s)");
    Ok(())
}

/// `bench --check` gate: the interactive [`Session`] form of the
/// pipeline (the one `histal-serve` hosts) must sustain a floor of
/// simulated-oracle sessions per second. Runs a fleet of tiny MR
/// sessions through `build_session()` + `run_hidden()` across the rayon
/// pool and gates on throughput. The floor is deliberately conservative
/// (release builds clear it by well over an order of magnitude); what
/// it catches is accidental super-linear work sneaking into the
/// step/submit path. Equal-seeded fleet members must also produce
/// byte-identical curves — session concurrency may never leak into
/// results.
///
/// [`Session`]: histal_core::live::Session
fn sessions_throughput_gate() -> Result<(), Error> {
    use histal_core::driver::{ActiveLearner, PoolConfig};

    const FLEET: usize = 32;
    const DISTINCT_SEEDS: usize = 4;
    const FLOOR_PER_SEC: f64 = 5.0;

    let scale = Scale {
        factor: 0.05,
        repeats: 1,
    };
    let task = TextTask::build(&TextSpec::mr(), &scale, 0xBE);
    let config = PoolConfig {
        batch_size: 5,
        rounds: 2,
        init_labeled: 10,
        ..PoolConfig::default()
    };
    let start = std::time::Instant::now();
    let results: Vec<Result<RunResult, Error>> = rayon::run_indexed(FLEET, |i| {
        let mut session = ActiveLearner::builder(task.model(0))
            .pool(task.pool_docs.clone(), task.pool_labels.clone())
            .test(task.test_docs.clone(), task.test_labels.clone())
            .strategy(Strategy::new(BaseStrategy::Entropy))
            .config(config.clone())
            .seed((i % DISTINCT_SEEDS) as u64)
            .build_session();
        session.run_hidden()
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let results: Vec<RunResult> = results.into_iter().collect::<Result<_, _>>()?;

    let curve_json = |r: &RunResult| serde_json::to_string(&r.curve).expect("curve serializes");
    for (i, result) in results.iter().enumerate() {
        assert_eq!(
            curve_json(result),
            curve_json(&results[i % DISTINCT_SEEDS]),
            "sessions gate: fleet member {i} diverged from its seed twin"
        );
    }
    assert_ne!(
        curve_json(&results[0]),
        curve_json(&results[1]),
        "sessions gate: distinct seeds produced identical curves"
    );

    let per_sec = FLEET as f64 / elapsed;
    assert!(
        per_sec >= FLOOR_PER_SEC,
        "sessions gate: {per_sec:.1} sessions/s below the {FLOOR_PER_SEC:.0}/s floor \
         ({FLEET} sessions in {elapsed:.2} s)"
    );
    eprintln!("  sessions gate: {per_sec:.0} sessions/s ({FLEET} sessions in {elapsed:.2} s)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_lhs_param_inserts_into_both_token_forms() {
        assert_eq!(
            add_lhs_param("LHS(entropy)", "ranker=linear"),
            "LHS{ranker=linear}(entropy)"
        );
        assert_eq!(
            add_lhs_param("LHS{history=false}(entropy)", "predictor=ar:3"),
            "LHS{predictor=ar:3,history=false}(entropy)"
        );
    }

    #[test]
    fn embedded_specs_parse_and_validate() {
        for json in [
            include_str!("../../../specs/fig2.json"),
            include_str!("../../../specs/fig3_text.json"),
            include_str!("../../../specs/fig3_ner.json"),
            include_str!("../../../specs/fig5.json"),
            include_str!("../../../specs/table2.json"),
            include_str!("../../../specs/table6.json"),
            include_str!("../../../specs/table7.json"),
            include_str!("../../../specs/adaptive-sweep.json"),
        ] {
            let spec = embedded_spec(json).expect("embedded spec parses");
            spec.validate().expect("embedded spec validates");
        }
    }

    #[test]
    fn table7_variant_rewrite_still_validates() {
        let mut spec = embedded_spec(include_str!("../../../specs/table7.json")).unwrap();
        for g in &mut spec.groups {
            for entry in &mut g.strategies {
                entry.strategy = add_lhs_param(&entry.strategy, "predictor=ar:3");
            }
        }
        spec.validate().expect("rewritten ablation spec validates");
    }
}

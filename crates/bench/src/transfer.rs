//! Cross-dataset transfer grids (`kind: "transfer"`).
//!
//! A [`TransferSpec`] describes a train-on-A × apply-to-B matrix over
//! learned selectors: every strategy token (an `LHS(...)` / `LAL(...)`
//! selector) is trained once per `train` dataset and evaluated on every
//! `apply` dataset — Chu & Lin's experience-transfer protocol as a
//! declarative grid. The spec lowers onto the ordinary
//! [`ExperimentSpec`] engine: one group per training dataset whose
//! strategy tokens carry an injected `train=DATASET` parameter, so
//! selector-training deduplication, journaling and the replay guard all
//! fall out of the existing [`GridExecutor`] machinery.
//!
//! Results are rendered as one ALC matrix per strategy (rows = training
//! dataset, columns = application dataset) plus a selector-training
//! timing table, and persisted as flat
//! `[strategy, train, apply, alc]` rows in `results/<name>.json`.
//!
//! The module also hosts the `selector-train` / `selector-apply` CLI
//! halves of the transfer story: train a selector on one dataset, save
//! it as an `HLRN1` artifact, load it in another process and deploy it
//! on a different dataset.

use std::path::Path;

use serde::{Deserialize, Serialize};

use histal_core::analysis::area_under_curve;
use histal_core::error::Error;
use histal_core::lhs::{
    load_artifacts, save_artifacts, ArtifactProvenance, LhsSelector, TargetKind,
};
use histal_data::TextSpec;

use crate::executor::{
    mean_auc, seed_for, text_pool_config, train_lhs_plan_artifacts, GridExecutor,
};
use crate::journal::JournalCtx;
use crate::registry;
use crate::report::{print_curves, print_table, write_json};
use crate::spec::{DatasetEntry, ExperimentSpec, GroupSpec, ScaleSpec, StrategyEntry};
use crate::tasks::{Scale, TextModel, TextTask};

/// The `kind` discriminator of transfer spec files.
pub const TRANSFER_KIND: &str = "transfer";

/// Cheap peek: does this JSON body declare `"kind": "transfer"`?
/// Mirrors [`crate::scaling::is_pool_scaling_json`] so `spec-check` and
/// `run --spec` can route files to the right schema without parsing
/// them twice.
pub fn is_transfer_json(body: &str) -> bool {
    #[derive(Deserialize)]
    struct KindProbe {
        #[serde(default)]
        kind: Option<String>,
    }
    serde_json::from_str::<KindProbe>(body)
        .ok()
        .and_then(|p| p.kind)
        .is_some_and(|k| k == TRANSFER_KIND)
}

/// Declarative description of one transfer matrix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferSpec {
    /// Schema discriminator; must be `"transfer"`.
    pub kind: String,
    /// Spec name; also the `results/<name>.json` output stem.
    pub name: String,
    /// Experiment-id stem for seeds and journal keys (empty → `name`).
    /// Every synthesized cell gets a per-(strategy, train) id derived
    /// from it, so no two matrix cells ever share a journal key.
    #[serde(default)]
    pub experiment: String,
    /// Selector-training datasets — the matrix rows. Plain text-dataset
    /// names (they are injected as `train=` parameters).
    pub train: Vec<String>,
    /// Application datasets — the matrix columns. Ordinary dataset
    /// tokens (modifiers like `?noise=` allowed), binary text only.
    pub apply: Vec<String>,
    /// Learned-selector strategy tokens (`LHS(...)` / `LAL(...)`),
    /// without a `train=` parameter — the grid injects one per row.
    pub strategies: Vec<String>,
    /// Train/test split seed for the application datasets.
    #[serde(default)]
    pub split_seed: u64,
    /// Scale overrides; set fields win over the command-line scale.
    #[serde(default)]
    pub scale: Option<ScaleSpec>,
}

/// One measured matrix cell: `strategy` trained on `train`, deployed on
/// `apply`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferRow {
    /// Strategy token, as written in the spec.
    pub strategy: String,
    /// Training dataset (matrix row).
    pub train: String,
    /// Application dataset display name (matrix column).
    pub apply: String,
    /// Mean per-repeat area under the learning curve.
    pub alc: f64,
    /// End-to-end wall clock of the cell (all repeats).
    pub wall_ms: f64,
}

/// The executed transfer matrix.
pub struct TransferOutcome {
    /// Matrix cells, application-dataset-major (the executor's block
    /// order): for each `apply`, for each `train`, one row per strategy.
    pub rows: Vec<TransferRow>,
    /// Wall clock of each fresh selector training, `(label, ms)`.
    pub selector_train_ms: Vec<(String, f64)>,
}

/// Insert a `train=DATASET` parameter into a selector token, e.g.
/// `LAL{meta=on}(entropy)` + `mr` → `LAL{train=mr,meta=on}(entropy)`.
pub fn inject_train(token: &str, dataset: &str) -> String {
    match token.split_once('{') {
        Some((head, rest)) => format!("{head}{{train={dataset},{rest}"),
        None => match token.split_once('(') {
            Some((head, rest)) => format!("{head}{{train={dataset}}}({rest}"),
            None => token.to_string(),
        },
    }
}

impl TransferSpec {
    /// Parse a transfer spec from its JSON text.
    pub fn from_json(json: &str) -> Result<TransferSpec, Error> {
        serde_json::from_str(json)
            .map_err(|e| Error::spec(format!("cannot parse transfer spec: {e}")))
    }

    /// Serialize to pretty JSON (the `specs/` file format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }

    /// The experiment-id stem used for seeds and journal keys.
    pub fn experiment_id(&self) -> &str {
        if self.experiment.is_empty() {
            &self.name
        } else {
            &self.experiment
        }
    }

    /// Resolve every reference eagerly so a broken spec fails with one
    /// actionable error before any selector trains.
    pub fn validate(&self) -> Result<(), Error> {
        if self.kind != TRANSFER_KIND {
            return Err(Error::spec(format!(
                "transfer spec `kind` must be {TRANSFER_KIND:?}, got {:?}",
                self.kind
            )));
        }
        if self.name.is_empty() {
            return Err(Error::spec("transfer spec `name` must not be empty"));
        }
        if self.train.is_empty() || self.apply.is_empty() || self.strategies.is_empty() {
            return Err(Error::spec(
                "a transfer spec needs at least one `train` dataset, one `apply` dataset \
                 and one strategy",
            ));
        }
        for name in &self.train {
            let spec = TextSpec::by_name(name).ok_or_else(|| {
                Error::unknown_name(
                    "selector training dataset",
                    name.clone(),
                    TextSpec::NAMES.iter().copied(),
                )
            })?;
            if spec.n_classes > 2 {
                return Err(Error::spec(format!(
                    "training dataset `{name}` is multiclass — learned selectors train on \
                     binary text tasks"
                )));
            }
        }
        for token in &self.apply {
            match registry::parse_dataset(token)? {
                registry::DatasetDef::Text { spec, .. } if spec.n_classes <= 2 => {}
                registry::DatasetDef::Text { .. } => {
                    return Err(Error::spec(format!(
                        "apply dataset `{token}` is multiclass — learned-selector cells are \
                         skipped there, so the matrix would have holes"
                    )))
                }
                registry::DatasetDef::Ner { .. } => {
                    return Err(Error::spec(format!(
                        "apply dataset `{token}` is an NER corpus — learned selectors are \
                         only supported on text datasets"
                    )))
                }
            }
        }
        for token in &self.strategies {
            let resolved = registry::parse_strategy(token)?;
            let Some(plan) = resolved.lhs else {
                return Err(Error::spec(format!(
                    "strategy `{token}` is not a learned selector — transfer grids take \
                     LHS(...) / LAL(...) tokens"
                )));
            };
            if plan.train.is_some() {
                return Err(Error::spec(format!(
                    "strategy `{token}` already pins `train=` — the transfer grid injects \
                     one per matrix row"
                )));
            }
        }
        Ok(())
    }

    /// Lower onto the experiment-grid engine: one group per training
    /// dataset (its label), strategy tokens with `train=` injected, and
    /// a per-(strategy, train) experiment id so no two matrix cells —
    /// which can share a base strategy name — collide on journal keys.
    pub fn to_experiment_spec(&self) -> ExperimentSpec {
        let exp = self.experiment_id();
        ExperimentSpec {
            name: self.name.clone(),
            split_seed: self.split_seed,
            datasets: self.apply.iter().map(DatasetEntry::new).collect(),
            groups: self
                .train
                .iter()
                .map(|ds| GroupSpec {
                    label: ds.clone(),
                    strategies: self
                        .strategies
                        .iter()
                        .enumerate()
                        .map(|(si, token)| StrategyEntry {
                            strategy: inject_train(token, ds),
                            rename: None,
                            experiment: Some(format!("{exp}-s{si}-t-{ds}")),
                        })
                        .collect(),
                })
                .collect(),
            title: "Transfer — {dataset} / trained on {label}".into(),
            scale: self.scale.clone(),
            ..Default::default()
        }
    }
}

/// Execute a transfer spec through the grid engine. `serial` runs cells
/// one at a time (BENCH timing mode); repeats still fan out inside each
/// cell.
pub fn execute_transfer(
    spec: &TransferSpec,
    cli_scale: &Scale,
    journal: Option<&JournalCtx>,
    serial: bool,
) -> Result<TransferOutcome, Error> {
    spec.validate()?;
    let grid = spec.to_experiment_spec();
    let mut exec = GridExecutor::new(&grid, cli_scale).journal(journal);
    if serial {
        exec = exec.serial();
    }
    let outcome = exec.execute()?;
    // Blocks arrive application-dataset-major, one per (apply, train)
    // pair; validation guarantees no cell was skipped, so the block's
    // cells line up with the spec's strategy list.
    let mut rows = Vec::new();
    for block in &outcome.blocks {
        for (si, cell) in block.cells.iter().enumerate() {
            rows.push(TransferRow {
                strategy: spec
                    .strategies
                    .get(si)
                    .cloned()
                    .unwrap_or_else(|| cell.name.clone()),
                train: block.label.clone(),
                apply: block.dataset.clone(),
                alc: mean_auc(cell),
                wall_ms: cell.wall_ms,
            });
        }
    }
    Ok(TransferOutcome {
        rows,
        selector_train_ms: outcome.selector_train_ms,
    })
}

/// Print the per-strategy ALC matrices and the selector-training timing
/// table of an executed transfer grid.
pub fn render_transfer(spec: &TransferSpec, outcome: &TransferOutcome) {
    let (s, t, a) = (spec.strategies.len(), spec.train.len(), spec.apply.len());
    let idx = |ai: usize, ti: usize, si: usize| ai * t * s + ti * s + si;
    let apply_names: Vec<String> = (0..a)
        .map(|ai| outcome.rows[idx(ai, 0, 0)].apply.clone())
        .collect();
    for (si, strategy) in spec.strategies.iter().enumerate() {
        let rows: Vec<Vec<String>> = spec
            .train
            .iter()
            .enumerate()
            .map(|(ti, train)| {
                let mut row = vec![train.clone()];
                row.extend((0..a).map(|ai| format!("{:.4}", outcome.rows[idx(ai, ti, si)].alc)));
                row
            })
            .collect();
        let mut header: Vec<&str> = vec!["train \\ apply"];
        header.extend(apply_names.iter().map(String::as_str));
        print_table(&format!("Transfer ALC — {strategy}"), &header, &rows);
    }
    // Wall clocks go to stderr (like the `# adaptive:` summary), so
    // stdout stays byte-identical across resumes and thread counts.
    for (label, ms) in &outcome.selector_train_ms {
        eprintln!("# selector train: {label} {ms:.1} ms");
    }
}

/// Execute + render + persist one transfer spec — the `run --spec` path
/// for `kind: "transfer"` files. The results JSON is the flat matrix:
/// one `[strategy, train, apply, alc]` row per cell.
pub fn run_transfer(
    spec: &TransferSpec,
    cli_scale: &Scale,
    journal: Option<&JournalCtx>,
) -> Result<TransferOutcome, Error> {
    let outcome = execute_transfer(spec, cli_scale, journal, false)?;
    render_transfer(spec, &outcome);
    let json_rows: Vec<Vec<String>> = outcome
        .rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                r.train.clone(),
                r.apply.clone(),
                format!("{:.6}", r.alc),
            ]
        })
        .collect();
    write_json(&spec.name, &json_rows);
    Ok(outcome)
}

/// `selector-train TOKEN DATASET OUT`: train the learned selector the
/// token describes on `dataset` and save it (with provenance) as an
/// `HLRN1` artifact at `out_path`.
pub fn selector_train(
    token: &str,
    dataset: &str,
    out_path: &str,
    scale: &Scale,
) -> Result<(), Error> {
    let resolved = registry::parse_strategy(token)?;
    let Some(mut plan) = resolved.lhs else {
        return Err(Error::spec(format!(
            "strategy `{token}` is not a learned selector — selector-train takes \
             LHS(...) / LAL(...) tokens"
        )));
    };
    let dataset = dataset.trim().to_ascii_lowercase();
    if TextSpec::by_name(&dataset).is_none() {
        return Err(Error::unknown_name(
            "selector training dataset",
            dataset,
            TextSpec::NAMES.iter().copied(),
        ));
    }
    plan.train = Some(dataset.clone());
    let artifacts = train_lhs_plan_artifacts(&plan, scale)?;
    let (target, experiment) = match plan.target {
        TargetKind::Pairwise => ("pairwise", "lhs-train"),
        TargetKind::Pointwise => ("pointwise", "lal-train"),
    };
    let provenance = ArtifactProvenance {
        trained_on: dataset.clone(),
        base: plan.base.name().to_string(),
        target: target.to_string(),
        seed: seed_for(experiment, &dataset, plan.base.name(), 0),
    };
    save_artifacts(&artifacts, &provenance, Path::new(out_path))?;
    println!(
        "trained {} on {dataset} → {out_path} ({target} targets)",
        plan.label()
    );
    Ok(())
}

/// `selector-apply ARTIFACT DATASET`: load an `HLRN1` artifact and run
/// one active-learning pass with it on `dataset`, printing the learning
/// curve and its ALC — the deployment half of the transfer protocol.
pub fn selector_apply(artifact_path: &str, dataset: &str, scale: &Scale) -> Result<(), Error> {
    let (artifacts, provenance) = load_artifacts(Path::new(artifact_path))?;
    let tspec = TextSpec::by_name(dataset.trim())
        .ok_or_else(|| Error::unknown_name("dataset", dataset, TextSpec::NAMES.iter().copied()))?;
    if tspec.n_classes > 2 {
        return Err(Error::spec(format!(
            "dataset `{dataset}` is multiclass — learned selectors deploy on binary \
             text tasks"
        )));
    }
    let strategy = registry::parse_strategy(&provenance.base)?.strategy;
    let selector: LhsSelector = artifacts.into_selector();
    let task = TextTask::build(&tspec, scale, 0);
    let config = text_pool_config(false, scale);
    let seed = seed_for("selector-apply", &task.name, &strategy.name(), 0);
    let mut result = task.try_run_model(
        TextModel::LogReg,
        strategy,
        Some(selector),
        &config,
        seed,
        None,
    )?;
    result.strategy_name = format!(
        "{}({})@{}",
        if provenance.target == "pointwise" {
            "LAL"
        } else {
            "LHS"
        },
        provenance.base,
        provenance.trained_on
    );
    let title = format!("{} applied to {}", result.strategy_name, task.name);
    print_curves(&title, std::slice::from_ref(&result));
    println!("ALC {:.4}", area_under_curve(&result));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransferSpec {
        TransferSpec {
            kind: TRANSFER_KIND.into(),
            name: "transfer-demo".into(),
            experiment: "tdemo".into(),
            train: vec!["subj".into(), "mr".into()],
            apply: vec!["mr".into(), "sst2".into()],
            strategies: vec!["LHS(entropy)".into(), "LAL(entropy)".into()],
            split_seed: 7,
            scale: Some(ScaleSpec {
                factor: None,
                repeats: Some(2),
            }),
        }
    }

    #[test]
    fn kind_probe_routes_transfer_files() {
        assert!(is_transfer_json(r#"{"kind": "transfer", "name": "x"}"#));
        assert!(!is_transfer_json(r#"{"kind": "pool-scaling"}"#));
        assert!(!is_transfer_json(r#"{"name": "fig5"}"#));
        assert!(!is_transfer_json("not json"));
    }

    #[test]
    fn round_trip_is_idempotent() {
        let spec = sample();
        let json = spec.to_json_pretty();
        let back = TransferSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn inject_train_handles_both_token_shapes() {
        assert_eq!(inject_train("LHS(entropy)", "mr"), "LHS{train=mr}(entropy)");
        assert_eq!(
            inject_train("LAL{meta=on}(LC)", "sst2"),
            "LAL{train=sst2,meta=on}(LC)"
        );
        // Injected tokens stay parseable and carry the train override.
        let plan = registry::parse_strategy(&inject_train("LAL(entropy)", "mr"))
            .unwrap()
            .lhs
            .unwrap();
        assert_eq!(plan.train.as_deref(), Some("mr"));
    }

    #[test]
    fn validate_accepts_the_sample() {
        sample().validate().expect("sample spec validates");
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut spec = sample();
        spec.kind = "experiment".into();
        assert!(spec.validate().unwrap_err().to_string().contains("kind"));

        let mut spec = sample();
        spec.train = vec!["imdb".into()];
        assert!(spec.validate().unwrap_err().to_string().contains("imdb"));

        let mut spec = sample();
        spec.train = vec!["trec".into()];
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("multiclass"));

        let mut spec = sample();
        spec.apply = vec!["trec".into()];
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("multiclass"));

        let mut spec = sample();
        spec.apply = vec!["conll2003-en".into()];
        assert!(spec.validate().unwrap_err().to_string().contains("NER"));

        let mut spec = sample();
        spec.strategies = vec!["entropy".into()];
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("learned selector"));

        let mut spec = sample();
        spec.strategies = vec!["LHS{train=subj}(entropy)".into()];
        assert!(spec.validate().unwrap_err().to_string().contains("train="));

        let mut spec = sample();
        spec.apply.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn lowering_builds_one_group_per_training_dataset() {
        let spec = sample();
        let grid = spec.to_experiment_spec();
        grid.validate().expect("lowered grid validates");
        assert_eq!(grid.datasets.len(), 2);
        assert_eq!(grid.groups.len(), 2);
        assert_eq!(grid.groups[0].label, "subj");
        assert_eq!(grid.groups[1].label, "mr");
        // Every cell has a distinct experiment id: strategies sharing a
        // base name must never collide on journal keys.
        let mut ids = Vec::new();
        for g in &grid.groups {
            for e in &g.strategies {
                let plan = registry::parse_strategy(&e.strategy)
                    .unwrap()
                    .lhs
                    .expect("transfer entries are selector tokens");
                assert_eq!(plan.train.as_deref(), Some(g.label.as_str()));
                let id = e.experiment.clone().expect("per-entry experiment id");
                assert!(!ids.contains(&id), "duplicate experiment id {id}");
                ids.push(id);
            }
        }
        assert_eq!(ids.len(), 4);
        assert!(ids.contains(&"tdemo-s0-t-subj".to_string()));
        assert!(ids.contains(&"tdemo-s1-t-mr".to_string()));
    }
}

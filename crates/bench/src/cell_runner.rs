//! Cell-runner layer of the grid engine: everything about executing
//! *one* resolved grid cell, shared by the classic run-to-completion
//! path ([`run_classic`]) and the round-streamed adaptive scheduler
//! ([`crate::scheduler`]).
//!
//! [`crate::executor::GridExecutor`] resolves a spec into a [`GridCtx`]
//! — built datasets, trained LHS selectors, flattened cells — and then
//! dispatches: specs without a `prune` policy fan [`run_classic`] out
//! across the rayon pool exactly as the pre-split executor did (the
//! byte-identity contract), specs with one hand the whole context to
//! the scheduler, which drives [`stream_repeat`] sessions round by
//! round.

use std::time::Instant;

use histal_core::analysis::average_curves;
use histal_core::driver::{PoolConfig, RunResult};
use histal_core::error::Error;
use histal_core::lhs::LhsSelector;
use histal_core::session::RunJournal;
use histal_core::strategy::Strategy;
use histal_obs::span;
use histal_obs::trace::Level;

use crate::executor::{cell_hash, seed_for};
use crate::journal::{try_run_cell_opt, JournalCtx};
use crate::spec::ExperimentSpec;
use crate::tasks::{NerTask, Scale, StreamRun, TextModel, TextTask};

/// One resolved dataset of a grid: the built task plus its pool config.
pub(crate) enum TaskInstance {
    Text {
        task: TextTask,
        config: PoolConfig,
        /// Multiclass dataset — LHS entries are skipped (the ranker is
        /// trained on binary Subj; §5.4 applies it to binary tasks).
        trec_like: bool,
    },
    Ner {
        task: NerTask,
        config: PoolConfig,
    },
}

impl TaskInstance {
    pub(crate) fn name(&self) -> &str {
        match self {
            Self::Text { task, .. } => &task.name,
            Self::Ner { task, .. } => &task.name,
        }
    }

    pub(crate) fn config(&self) -> &PoolConfig {
        match self {
            Self::Text { config, .. } => config,
            Self::Ner { config, .. } => config,
        }
    }
}

/// One flattened grid cell awaiting execution.
pub(crate) struct Cell {
    pub(crate) task: usize,
    pub(crate) group: usize,
    pub(crate) strategy: Strategy,
    /// Index into the trained selector list, for LHS cells.
    pub(crate) lhs: Option<usize>,
    /// Non-classic selector tag (`lal`, `meta`, `train=DS`), for the
    /// replay-guard hash; `None` keeps classic LHS hashes untouched.
    pub(crate) lhs_variant: Option<String>,
    /// Report label (spec rename, or the resolved display name).
    pub(crate) display: String,
    /// Experiment id for seeds and journal keys (entry override or the
    /// spec's).
    pub(crate) experiment: String,
}

/// One executed cell: the averaged curve plus the raw repeats.
pub struct CellOutcome {
    /// Report label of the cell.
    pub name: String,
    /// Curves averaged over repeats, `strategy_name` set to `name`.
    pub avg: RunResult,
    /// The raw per-repeat results (with round diagnostics / history).
    pub runs: Vec<RunResult>,
    /// End-to-end wall clock of the cell (all repeats), for BENCH.
    pub wall_ms: f64,
}

/// Everything a cell needs to run, resolved once per grid by the
/// executor and shared (read-only) by both execution paths.
pub(crate) struct GridCtx<'a> {
    pub(crate) spec: &'a ExperimentSpec,
    pub(crate) scale: Scale,
    pub(crate) journal: Option<&'a JournalCtx>,
    pub(crate) model: TextModel,
    pub(crate) representations: bool,
    pub(crate) instances: Vec<TaskInstance>,
    pub(crate) selectors: Vec<LhsSelector>,
    pub(crate) cells: Vec<Cell>,
}

impl GridCtx<'_> {
    /// The replay-guard hash of cell `c` — everything that determines
    /// its bytes besides the seed (see [`cell_hash`]).
    pub(crate) fn hash(&self, c: usize) -> u64 {
        let cell = &self.cells[c];
        let inst = &self.instances[cell.task];
        let beam = match inst {
            TaskInstance::Ner { task, .. } => task.score_beam,
            TaskInstance::Text { .. } => None,
        };
        cell_hash(
            &cell.experiment,
            inst.name(),
            &cell.strategy,
            inst.config(),
            &self.scale,
            cell.lhs.is_some(),
            cell.lhs_variant.as_deref(),
            beam,
            self.spec.budget.as_ref(),
            self.spec.prune.as_ref(),
        )
    }

    /// The journal key of `(cell c, repeat r)`.
    pub(crate) fn key(&self, c: usize, r: usize) -> String {
        let cell = &self.cells[c];
        let name = cell.strategy.name();
        format!(
            "{}/{}/{name}/r{r}",
            cell.experiment,
            self.instances[cell.task].name()
        )
    }

    /// The seed of `(cell c, repeat r)` — derived only from
    /// `(experiment, dataset, strategy, repeat)` per the determinism
    /// contract.
    pub(crate) fn seed(&self, c: usize, r: usize) -> u64 {
        let cell = &self.cells[c];
        seed_for(
            &cell.experiment,
            self.instances[cell.task].name(),
            &cell.strategy.name(),
            r,
        )
    }
}

/// Run one repeat of one cell to completion — the classic driver path.
fn run_repeat(
    ctx: &GridCtx<'_>,
    cell: &Cell,
    seed: u64,
    journal: Option<RunJournal>,
) -> Result<RunResult, Error> {
    match &ctx.instances[cell.task] {
        TaskInstance::Text { task, config, .. } => {
            if ctx.representations {
                task.try_run_with_representations_journaled(
                    cell.strategy.clone(),
                    config,
                    seed,
                    journal,
                )
            } else {
                task.try_run_model(
                    ctx.model,
                    cell.strategy.clone(),
                    cell.lhs.map(|i| ctx.selectors[i].clone()),
                    config,
                    seed,
                    journal,
                )
            }
        }
        TaskInstance::Ner { task, config } => {
            task.try_run_journaled(cell.strategy.clone(), config, seed, journal)
        }
    }
}

/// Build the round-streamed session for one repeat of one cell — the
/// same builder chain as [`run_repeat`], terminated with
/// `build_session()` so the scheduler drives the rounds.
pub(crate) fn stream_repeat(
    ctx: &GridCtx<'_>,
    c: usize,
    seed: u64,
    journal: Option<RunJournal>,
) -> StreamRun {
    let cell = &ctx.cells[c];
    match &ctx.instances[cell.task] {
        TaskInstance::Text { task, config, .. } => {
            if ctx.representations {
                task.stream_with_representations(cell.strategy.clone(), config, seed, journal)
            } else {
                task.stream_model(
                    ctx.model,
                    cell.strategy.clone(),
                    cell.lhs.map(|i| ctx.selectors[i].clone()),
                    config,
                    seed,
                    journal,
                )
            }
        }
        TaskInstance::Ner { task, config } => {
            task.stream(cell.strategy.clone(), config, seed, journal)
        }
    }
}

/// Execute cell `c` run-to-completion: fan the repeats out, journal
/// each, average the curves. This is the pre-split executor's `run_one`
/// closure verbatim — specs without a prune policy must keep producing
/// byte-identical output through it.
pub(crate) fn run_classic(ctx: &GridCtx<'_>, c: usize) -> Result<CellOutcome, Error> {
    let cell = &ctx.cells[c];
    let start = Instant::now();
    let hash = ctx.hash(c);
    let runs: Vec<Result<RunResult, Error>> = rayon::run_indexed(ctx.scale.repeats, |r| {
        let seed = ctx.seed(c, r);
        let key = ctx.key(c, r);
        let _span = span!(
            Level::Debug,
            "harness.cell",
            cell = key.clone(),
            seed = seed
        );
        try_run_cell_opt(ctx.journal, &key, hash, seed, |j| {
            run_repeat(ctx, cell, seed, j)
        })
        .map_err(|e| e.in_cell(&key))
    });
    let runs: Vec<RunResult> = runs.into_iter().collect::<Result<_, _>>()?;
    let mut avg = average_curves(&runs);
    avg.strategy_name = cell.display.clone();
    Ok(CellOutcome {
        name: cell.display.clone(),
        avg,
        runs,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

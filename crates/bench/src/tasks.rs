//! Featurized experiment tasks built from the synthetic corpora.

use histal_core::driver::{ActiveLearner, CurvePoint, PoolConfig, RunResult};
use histal_core::error::Error;
use histal_core::lhs::LhsSelector;
use histal_core::live::{Session, SessionStep};
use histal_core::session::RunJournal;
use histal_core::stopping::StopReason;
use histal_core::strategy::Strategy;
use histal_data::{train_test_split, NerDataset, NerSpec, TextDataset, TextSpec};
use histal_models::{
    CrfConfig, CrfTagger, Document, NaiveBayes, NaiveBayesConfig, Sentence, TextClassifier,
    TextClassifierConfig,
};
use histal_text::FeatureHasher;

/// Global experiment scale. `1.0` reproduces the paper's dataset sizes
/// and budgets; smaller factors shrink pools, batches and budgets
/// proportionally for quick runs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier on pool sizes and label budgets.
    pub factor: f64,
    /// Independent repetitions to average (the paper cross-validates /
    /// repeats its runs).
    pub repeats: usize,
}

impl Scale {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        Self {
            factor: 1.0,
            repeats: 3,
        }
    }

    /// Quick configuration for smoke runs (~25% size, 2 repeats).
    pub fn quick() -> Self {
        Self {
            factor: 0.25,
            repeats: 2,
        }
    }

    /// Scale a count, keeping at least `min`.
    pub fn scaled(&self, n: usize, min: usize) -> usize {
        ((n as f64 * self.factor).round() as usize).max(min)
    }
}

/// Which classifier a text experiment cell trains (the spec engine's
/// `model` field; the paper's TextCNN is proxied by the discriminative
/// logistic model, naive bayes is the model-agnosticism extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TextModel {
    /// Discriminative logistic classifier (TextCNN proxy).
    #[default]
    LogReg,
    /// Multinomial Naive Bayes (generative, one-pass).
    NaiveBayes,
}

/// Feature-space width used by all text-classification experiments.
pub const TEXT_FEATURES: u32 = 1 << 16;
/// Feature-space width used by all NER experiments.
pub const NER_FEATURES: u32 = 1 << 16;

/// A featurized text-classification task (pool + test).
#[derive(Clone)]
pub struct TextTask {
    pub name: String,
    pub n_classes: usize,
    pub pool_docs: Vec<Document>,
    pub pool_labels: Vec<usize>,
    pub test_docs: Vec<Document>,
    pub test_labels: Vec<usize>,
}

impl TextTask {
    /// Build from a dataset spec: generate, scale the corpus, featurize,
    /// and carve a 20% test split (the CV/test protocols of §5.1 reduce
    /// to a held-out split once curves are averaged over repeats).
    pub fn build(spec: &TextSpec, scale: &Scale, split_seed: u64) -> Self {
        let mut spec = spec.clone();
        spec.n_samples = scale.scaled(spec.n_samples, 200);
        let data = TextDataset::generate(&spec);
        let hasher = FeatureHasher::new(TEXT_FEATURES);
        let docs: Vec<Document> = data
            .docs
            .iter()
            .map(|t| Document::from_tokens(t, &hasher))
            .collect();
        let (train, test) = train_test_split(docs.len(), 0.2, split_seed);
        Self {
            name: data.name.clone(),
            n_classes: data.n_classes,
            pool_docs: train.iter().map(|&i| docs[i].clone()).collect(),
            pool_labels: train.iter().map(|&i| data.labels[i]).collect(),
            test_docs: test.iter().map(|&i| docs[i].clone()).collect(),
            test_labels: test.iter().map(|&i| data.labels[i]).collect(),
        }
    }

    /// A fresh classifier configured for this task. `committee` enables
    /// QBC support.
    pub fn model(&self, committee: usize) -> TextClassifier {
        TextClassifier::new(TextClassifierConfig {
            n_classes: self.n_classes,
            n_features: TEXT_FEATURES,
            epochs: 10,
            committee,
            ..Default::default()
        })
    }

    /// Run one active-learning loop.
    pub fn run(
        &self,
        strategy: Strategy,
        lhs: Option<LhsSelector>,
        config: &PoolConfig,
        seed: u64,
    ) -> RunResult {
        self.run_journaled(strategy, lhs, config, seed, None)
    }

    /// Run one active-learning loop, optionally checkpointing every round
    /// to `journal` (see `histal_core::session::RunJournal`).
    pub fn run_journaled(
        &self,
        strategy: Strategy,
        lhs: Option<LhsSelector>,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> RunResult {
        self.try_run_model(TextModel::LogReg, strategy, lhs, config, seed, journal)
            .expect("strategy capabilities satisfied")
    }

    /// Fallible [`Self::run_journaled`]: capability mismatches surface as
    /// a structured [`Error`] instead of a panic.
    pub fn try_run_journaled(
        &self,
        strategy: Strategy,
        lhs: Option<LhsSelector>,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> Result<RunResult, Error> {
        self.try_run_model(TextModel::LogReg, strategy, lhs, config, seed, journal)
    }

    /// Run one active-learning loop with the chosen classifier,
    /// propagating strategy-capability failures as structured errors.
    pub fn try_run_model(
        &self,
        model: TextModel,
        strategy: Strategy,
        lhs: Option<LhsSelector>,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> Result<RunResult, Error> {
        match model {
            TextModel::LogReg => {
                let mut builder = ActiveLearner::builder(self.model(0))
                    .pool(self.pool_docs.clone(), self.pool_labels.clone())
                    .test(self.test_docs.clone(), self.test_labels.clone())
                    .strategy(strategy)
                    .config(config.clone())
                    .seed(seed);
                if let Some(l) = lhs {
                    builder = builder.lhs(l);
                }
                if let Some(j) = journal {
                    builder = builder.journal(j);
                }
                builder.build().run()
            }
            TextModel::NaiveBayes => {
                let nb = NaiveBayes::new(NaiveBayesConfig {
                    n_classes: self.n_classes,
                    n_features: TEXT_FEATURES,
                    ..Default::default()
                });
                let mut builder = ActiveLearner::builder(nb)
                    .pool(self.pool_docs.clone(), self.pool_labels.clone())
                    .test(self.test_docs.clone(), self.test_labels.clone())
                    .strategy(strategy)
                    .config(config.clone())
                    .seed(seed);
                if let Some(l) = lhs {
                    builder = builder.lhs(l);
                }
                if let Some(j) = journal {
                    builder = builder.journal(j);
                }
                builder.build().run()
            }
        }
    }

    /// Run one active-learning loop with the pool documents' sparse
    /// features attached as representations, enabling the density / MMR /
    /// k-center combinators.
    pub fn run_with_representations(
        &self,
        strategy: Strategy,
        config: &PoolConfig,
        seed: u64,
    ) -> RunResult {
        self.run_with_representations_journaled(strategy, config, seed, None)
    }

    /// [`Self::run_with_representations`] with optional per-round
    /// journaling.
    pub fn run_with_representations_journaled(
        &self,
        strategy: Strategy,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> RunResult {
        self.try_run_with_representations_journaled(strategy, config, seed, journal)
            .expect("strategy capabilities satisfied")
    }

    /// Fallible [`Self::run_with_representations_journaled`].
    pub fn try_run_with_representations_journaled(
        &self,
        strategy: Strategy,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> Result<RunResult, Error> {
        let reps = self.pool_docs.iter().map(|d| d.features.clone()).collect();
        let mut builder = ActiveLearner::builder(self.model(0))
            .pool(self.pool_docs.clone(), self.pool_labels.clone())
            .test(self.test_docs.clone(), self.test_labels.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(seed)
            .representations(reps);
        if let Some(j) = journal {
            builder = builder.journal(j);
        }
        builder.build().run()
    }
}

/// One grid cell repeat as a round-streamed [`Session`], advanced one
/// curve point at a time by the adaptive scheduler. The enum erases the
/// model type so text (logistic / naive bayes) and NER (CRF) cells sit
/// in one scheduling pool. Driving a `StreamRun` to completion is
/// byte-identical to the corresponding `builder.build().run()` — the
/// live-session contract property-tested in `histal-core`.
pub enum StreamRun {
    /// Logistic text classifier session.
    Text(Session<TextClassifier>),
    /// Naive-bayes text classifier session.
    Nb(Session<NaiveBayes>),
    /// CRF tagger session.
    Ner(Session<CrfTagger>),
}

impl StreamRun {
    /// Record one more curve point (one fit/eval/score/select cycle)
    /// against the hidden labels; returns `true` once the run is done.
    pub fn advance_round(&mut self) -> Result<bool, Error> {
        let step = match self {
            StreamRun::Text(s) => s.run_round_hidden()?,
            StreamRun::Nb(s) => s.run_round_hidden()?,
            StreamRun::Ner(s) => s.run_round_hidden()?,
        };
        Ok(step == SessionStep::Done)
    }

    /// The learning curve recorded so far.
    pub fn curve(&self) -> &[CurvePoint] {
        match self {
            StreamRun::Text(s) => s.curve(),
            StreamRun::Nb(s) => s.curve(),
            StreamRun::Ner(s) => s.curve(),
        }
    }

    /// Finish now (no-op when already done) and take the result — the
    /// exact prefix a full run would have produced. Pass
    /// [`StopReason::Pruned`] from the scheduler's early-stop path.
    pub fn finish(&mut self, reason: StopReason) -> RunResult {
        match self {
            StreamRun::Text(s) => {
                s.finish_early(reason);
                s.result().expect("finished session has a result").clone()
            }
            StreamRun::Nb(s) => {
                s.finish_early(reason);
                s.result().expect("finished session has a result").clone()
            }
            StreamRun::Ner(s) => {
                s.finish_early(reason);
                s.result().expect("finished session has a result").clone()
            }
        }
    }
}

impl TextTask {
    /// Round-streamed form of [`Self::try_run_model`]: the same builder
    /// chain, terminated with `build_session()` so the caller drives the
    /// rounds.
    pub fn stream_model(
        &self,
        model: TextModel,
        strategy: Strategy,
        lhs: Option<LhsSelector>,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> StreamRun {
        match model {
            TextModel::LogReg => {
                let mut builder = ActiveLearner::builder(self.model(0))
                    .pool(self.pool_docs.clone(), self.pool_labels.clone())
                    .test(self.test_docs.clone(), self.test_labels.clone())
                    .strategy(strategy)
                    .config(config.clone())
                    .seed(seed);
                if let Some(l) = lhs {
                    builder = builder.lhs(l);
                }
                if let Some(j) = journal {
                    builder = builder.journal(j);
                }
                StreamRun::Text(builder.build_session())
            }
            TextModel::NaiveBayes => {
                let nb = NaiveBayes::new(NaiveBayesConfig {
                    n_classes: self.n_classes,
                    n_features: TEXT_FEATURES,
                    ..Default::default()
                });
                let mut builder = ActiveLearner::builder(nb)
                    .pool(self.pool_docs.clone(), self.pool_labels.clone())
                    .test(self.test_docs.clone(), self.test_labels.clone())
                    .strategy(strategy)
                    .config(config.clone())
                    .seed(seed);
                if let Some(l) = lhs {
                    builder = builder.lhs(l);
                }
                if let Some(j) = journal {
                    builder = builder.journal(j);
                }
                StreamRun::Nb(builder.build_session())
            }
        }
    }

    /// Round-streamed form of
    /// [`Self::try_run_with_representations_journaled`].
    pub fn stream_with_representations(
        &self,
        strategy: Strategy,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> StreamRun {
        let reps = self.pool_docs.iter().map(|d| d.features.clone()).collect();
        let mut builder = ActiveLearner::builder(self.model(0))
            .pool(self.pool_docs.clone(), self.pool_labels.clone())
            .test(self.test_docs.clone(), self.test_labels.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(seed)
            .representations(reps);
        if let Some(j) = journal {
            builder = builder.journal(j);
        }
        StreamRun::Text(builder.build_session())
    }
}

/// A featurized NER task (pool = train split, test = test split).
#[derive(Clone)]
pub struct NerTask {
    pub name: String,
    pub pool: Vec<Sentence>,
    pub pool_tags: Vec<Vec<u16>>,
    pub test: Vec<Sentence>,
    pub test_tags: Vec<Vec<u16>>,
    /// Score-beam width `δ` forwarded to [`CrfConfig::score_beam`];
    /// `None` keeps every lattice pass exact.
    pub score_beam: Option<f64>,
}

impl NerTask {
    /// Build from a dataset spec, scaling the split sizes.
    pub fn build(spec: &NerSpec, scale: &Scale) -> Self {
        let mut spec = spec.clone();
        spec.n_train = scale.scaled(spec.n_train, 300);
        spec.n_dev = scale.scaled(spec.n_dev, 60);
        spec.n_test = scale.scaled(spec.n_test, 60);
        let data = NerDataset::generate(&spec);
        let hasher = FeatureHasher::new(NER_FEATURES);
        let feats = |sents: &[histal_data::ner::NerSentence]| {
            let s: Vec<Sentence> = sents
                .iter()
                .map(|x| Sentence::featurize(&x.tokens, &hasher))
                .collect();
            let t: Vec<Vec<u16>> = sents.iter().map(|x| x.tags.clone()).collect();
            (s, t)
        };
        let (pool, pool_tags) = feats(&data.train);
        let (test, test_tags) = feats(&data.test);
        Self {
            name: data.name.clone(),
            pool,
            pool_tags,
            test,
            test_tags,
            score_beam: None,
        }
    }

    /// A fresh CRF configured for this task.
    pub fn model(&self) -> CrfTagger {
        CrfTagger::new(CrfConfig {
            n_features: NER_FEATURES,
            epochs: 5,
            mc_passes: 8,
            score_beam: self.score_beam,
            ..Default::default()
        })
    }

    /// Run one active-learning loop.
    pub fn run(&self, strategy: Strategy, config: &PoolConfig, seed: u64) -> RunResult {
        self.run_journaled(strategy, config, seed, None)
    }

    /// [`Self::run`] with optional per-round journaling.
    pub fn run_journaled(
        &self,
        strategy: Strategy,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> RunResult {
        self.try_run_journaled(strategy, config, seed, journal)
            .expect("strategy capabilities satisfied")
    }

    /// Fallible [`Self::run_journaled`].
    pub fn try_run_journaled(
        &self,
        strategy: Strategy,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> Result<RunResult, Error> {
        let mut builder = ActiveLearner::builder(self.model())
            .pool(self.pool.clone(), self.pool_tags.clone())
            .test(self.test.clone(), self.test_tags.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(seed);
        if let Some(j) = journal {
            builder = builder.journal(j);
        }
        builder.build().run()
    }

    /// Round-streamed form of [`Self::try_run_journaled`].
    pub fn stream(
        &self,
        strategy: Strategy,
        config: &PoolConfig,
        seed: u64,
        journal: Option<RunJournal>,
    ) -> StreamRun {
        let mut builder = ActiveLearner::builder(self.model())
            .pool(self.pool.clone(), self.pool_tags.clone())
            .test(self.test.clone(), self.test_tags.clone())
            .strategy(strategy)
            .config(config.clone())
            .seed(seed);
        if let Some(j) = journal {
            builder = builder.journal(j);
        }
        StreamRun::Ner(builder.build_session())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets() {
        let full = Scale::full();
        assert_eq!(full.factor, 1.0);
        let quick = Scale::quick();
        assert!(quick.factor < 1.0);
        assert!(quick.repeats >= 1);
    }

    #[test]
    fn scaled_respects_minimum() {
        let s = Scale {
            factor: 0.01,
            repeats: 1,
        };
        assert_eq!(s.scaled(1000, 200), 200);
        assert_eq!(s.scaled(100_000, 200), 1000);
        let full = Scale::full();
        assert_eq!(full.scaled(1234, 10), 1234);
    }

    #[test]
    fn text_task_builds_and_splits() {
        let scale = Scale {
            factor: 0.05,
            repeats: 1,
        };
        let task = TextTask::build(&histal_data::TextSpec::tiny(2, 400, 1), &scale, 7);
        assert!(!task.pool_docs.is_empty());
        assert!(!task.test_docs.is_empty());
        assert_eq!(task.pool_docs.len(), task.pool_labels.len());
        assert_eq!(task.test_docs.len(), task.test_labels.len());
        // ~20% test split.
        let frac =
            task.test_docs.len() as f64 / (task.pool_docs.len() + task.test_docs.len()) as f64;
        assert!((frac - 0.2).abs() < 0.05, "test fraction {frac}");
    }

    #[test]
    fn ner_task_builds() {
        let scale = Scale {
            factor: 0.05,
            repeats: 1,
        };
        let task = NerTask::build(&histal_data::NerSpec::tiny(100, 2), &scale);
        assert!(!task.pool.is_empty());
        assert_eq!(task.pool.len(), task.pool_tags.len());
    }
}

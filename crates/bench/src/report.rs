//! Plain-text and JSON reporting for the experiment harness.

use std::io::Write;

use histal_core::driver::RunResult;
use serde::Serialize;

/// Print a markdown-style table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    print!("{}", format_table(header, rows));
}

/// Print a family of learning curves as one table: rows are labeled-set
/// sizes, columns are strategies.
pub fn print_curves(title: &str, results: &[RunResult]) {
    if results.is_empty() {
        return;
    }
    let mut header: Vec<&str> = vec!["#labeled"];
    for r in results {
        header.push(&r.strategy_name);
    }
    let n_points = results.iter().map(|r| r.curve.len()).min().unwrap_or(0);
    let mut rows = Vec::with_capacity(n_points);
    for i in 0..n_points {
        let mut row = vec![results[0].curve[i].n_labeled.to_string()];
        for r in results {
            row.push(format!("{:.4}", r.curve[i].metric));
        }
        rows.push(row);
    }
    print_table(title, &header, &rows);
    if std::env::var_os("HISTAL_PLOT").is_some() {
        println!(
            "
{}",
            crate::plot::render_curves(results, 72, 18)
        );
    }
}

/// Render a markdown-style table to a string (testable core of
/// [`print_table`]).
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut out = String::new();
    let line = |cells: &[String], out: &mut String| {
        out.push('|');
        for (c, w) in cells.iter().zip(&widths) {
            out.push_str(&format!(" {:<w$} |", c, w = w));
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    line(&header_cells, &mut out);
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for r in rows {
        line(r, &mut out);
    }
    out
}

/// Serialize any experiment payload to `results/<name>.json` for
/// downstream plotting. Failures are reported but non-fatal (the printed
/// tables are the primary artifact).
pub fn write_json<T: Serialize>(name: &str, payload: &T) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warn: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let body = serde_json::to_string_pretty(payload).expect("serializable payload");
            if let Err(e) = f.write_all(body.as_bytes()) {
                eprintln!("warn: cannot write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warn: cannot create {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_core::driver::CurvePoint;

    #[test]
    fn format_table_aligns_columns() {
        let rows = vec![
            vec!["a".to_string(), "1234".to_string()],
            vec!["long-name".to_string(), "5".to_string()],
        ];
        let out = format_table(&["name", "value"], &rows);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[2].contains("1234"));
    }

    #[test]
    fn format_table_empty_rows() {
        let out = format_table(&["x"], &[]);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn print_curves_smoke() {
        let r = RunResult {
            strategy_name: "s".into(),
            curve: vec![CurvePoint {
                n_labeled: 10,
                metric: 0.5,
            }],
            rounds: vec![],
            history: vec![],
        };
        // Must not panic for single- and zero-result inputs.
        print_curves("t", &[r]);
        print_curves("t", &[]);
    }
}

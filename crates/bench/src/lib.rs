//! Experiment harness for the histal reproduction.
//!
//! Each table and figure of the paper's evaluation section has one
//! experiment function here, driven by the `histal-experiments` binary.
//! `DESIGN.md` maps experiment ids (E1–E10) to these modules; see
//! `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.

pub mod cell_runner;
pub mod executor;
pub mod experiments;
pub mod journal;
pub mod plot;
pub mod registry;
pub mod report;
pub mod scaling;
pub mod scheduler;
pub mod spec;
pub mod tasks;
pub mod transfer;

pub use tasks::{NerTask, Scale, TextTask};

//! Property tests for the [`ExperimentSpec`] serde layer.
//!
//! A spec must survive `spec → JSON → spec → JSON` with the second JSON
//! byte-equal to the first — otherwise tooling that round-trips a spec
//! file silently edits it. The generator covers every optional field and
//! puts quotes/backslashes in strings to stress JSON escaping; the
//! checked-in `specs/*.json` library is covered as real-world instances.

use proptest::prelude::*;
use proptest::strategy::Just;

use histal_bench::spec::{
    AnnSpec, BudgetSpec, DatasetEntry, ExperimentSpec, GroupSpec, PoolSpec, PruneSpec, ReportKind,
    ScaleSpec, SignificanceSpec, StrategyEntry,
};

/// Short identifier-ish strings, possibly empty, including characters
/// JSON must escape (`"`, `\`) and spaces.
const NAME: &str = "[a-zA-Z0-9 _:(){}\"\\\\-]{0,10}";

fn opt<V, S>(s: S) -> impl Strategy<Value = Option<V>>
where
    V: Clone + 'static,
    S: Strategy<Value = V> + 'static,
{
    prop_oneof![s.prop_map(Some), Just(None)]
}

fn any_bool() -> impl Strategy<Value = bool> {
    prop_oneof![Just(false), Just(true)]
}

fn dataset_entry() -> impl Strategy<Value = DatasetEntry> {
    (NAME, opt(NAME)).prop_map(|(dataset, rename)| DatasetEntry { dataset, rename })
}

fn strategy_entry() -> impl Strategy<Value = StrategyEntry> {
    (NAME, opt(NAME), opt(NAME)).prop_map(|(strategy, rename, experiment)| StrategyEntry {
        strategy,
        rename,
        experiment,
    })
}

fn group() -> impl Strategy<Value = GroupSpec> {
    (NAME, prop::collection::vec(strategy_entry(), 1..4))
        .prop_map(|(label, strategies)| GroupSpec { label, strategies })
}

fn scale_spec() -> impl Strategy<Value = ScaleSpec> {
    (opt(0.01f64..2.0), opt(1usize..9)).prop_map(|(factor, repeats)| ScaleSpec { factor, repeats })
}

fn pool_spec() -> impl Strategy<Value = PoolSpec> {
    (
        opt(1usize..200),
        opt(1usize..30),
        opt(1usize..200),
        any_bool(),
        any_bool(),
    )
        .prop_map(
            |(batch_size, rounds, init_labeled, record_history, representations)| PoolSpec {
                batch_size,
                rounds,
                init_labeled,
                record_history,
                representations,
            },
        )
}

fn budget_spec() -> impl Strategy<Value = BudgetSpec> {
    (opt(0.25f64..8.0), opt(1.0f64..4000.0)).prop_map(|(cost_per_label, max_cost)| BudgetSpec {
        cost_per_label,
        max_cost,
    })
}

fn prune_spec() -> impl Strategy<Value = PruneSpec> {
    (opt(1usize..8), opt(0.0f64..0.2))
        .prop_map(|(checkpoint, margin)| PruneSpec { checkpoint, margin })
}

fn significance_spec() -> impl Strategy<Value = SignificanceSpec> {
    (
        NAME,
        opt(prop_oneof![
            Just("bootstrap".to_string()),
            Just("permutation".to_string())
        ]),
        opt(1usize..5000),
        opt(0.001f64..0.5),
        opt(0u64..u64::MAX),
    )
        .prop_map(|(baseline, method, iters, alpha, seed)| SignificanceSpec {
            baseline,
            method,
            iters,
            alpha,
            seed,
        })
}

fn report_kind() -> impl Strategy<Value = ReportKind> {
    prop_oneof![
        Just(ReportKind::Curves),
        Just(ReportKind::Metrics),
        Just(ReportKind::SelectionStats),
        Just(ReportKind::Timing),
        Just(ReportKind::TrendCensus),
        Just(ReportKind::Checkpoints),
    ]
}

fn spec() -> impl Strategy<Value = ExperimentSpec> {
    (
        (
            NAME,
            NAME,
            0u64..u64::MAX,
            opt(NAME),
            prop::collection::vec(dataset_entry(), 1..4),
        ),
        (
            prop::collection::vec(group(), 1..3),
            NAME,
            opt(NAME),
            opt(scale_spec()),
            opt(pool_spec()),
        ),
        (prop::collection::vec(NAME, 0..3), opt(NAME), report_kind()),
        (
            opt(budget_spec()),
            opt(prune_spec()),
            opt(significance_spec()),
        ),
    )
        .prop_map(
            |(
                (name, experiment, split_seed, model, datasets),
                (groups, title, json_key, scale, pool),
                (metrics, dataset_column, report),
                (budget, prune, significance),
            )| ExperimentSpec {
                name,
                experiment,
                split_seed,
                model,
                datasets,
                groups,
                title,
                json_key,
                scale,
                pool,
                metrics,
                dataset_column,
                report,
                // Kept `None` here: `ner_beam` is only valid on NER
                // specs and the generated datasets are arbitrary. Its
                // round-trip is pinned by `ner_beam_round_trips`.
                ner_beam: None,
                // Same story: `ann` requires representations-bearing
                // text specs; pinned by `ann_round_trips`.
                ann: None,
                budget,
                prune,
                significance,
            },
        )
}

/// `ann` survives the JSON round trip, partial fields included.
#[test]
fn ann_round_trips() {
    let spec = ExperimentSpec {
        name: "bench-div".into(),
        experiment: "bench-div".into(),
        datasets: vec![DatasetEntry::new("mr")],
        groups: vec![GroupSpec {
            label: "div".into(),
            strategies: vec![StrategyEntry::new("WSHS(entropy)+mmr")],
        }],
        pool: Some(PoolSpec {
            representations: true,
            ..Default::default()
        }),
        ann: Some(AnnSpec {
            tables: Some(4),
            bits: None,
            probes: Some(1),
        }),
        ..Default::default()
    };
    let json = spec.to_json_pretty();
    let reparsed = ExperimentSpec::from_json(&json).expect("ann spec reparses");
    assert_eq!(reparsed.ann, spec.ann);
    assert_eq!(reparsed.to_json_pretty(), json);
    spec.validate().expect("ann spec validates");
}

/// `ner_beam` survives the JSON round trip on a spec where it is valid.
#[test]
fn ner_beam_round_trips() {
    let spec = ExperimentSpec {
        name: "bench-ner".into(),
        experiment: "bench-ner".into(),
        datasets: vec![DatasetEntry::new("conll2003-en")],
        ner_beam: Some(8.0),
        ..Default::default()
    };
    let json = spec.to_json_pretty();
    let reparsed = ExperimentSpec::from_json(&json).expect("beam spec reparses");
    assert_eq!(reparsed.ner_beam, Some(8.0));
    assert_eq!(reparsed.to_json_pretty(), json);
}

proptest! {
    /// `spec → JSON → spec → JSON` is idempotent: the reparsed spec
    /// equals the original and its serialization is byte-stable.
    #[test]
    fn json_round_trip_is_idempotent(original in spec()) {
        let json1 = original.to_json_pretty();
        let reparsed = match ExperimentSpec::from_json(&json1) {
            Ok(s) => s,
            Err(e) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "generated spec did not reparse: {e}\n{json1}"
                )))
            }
        };
        prop_assert_eq!(&original, &reparsed, "reparse changed the spec");
        prop_assert_eq!(json1, reparsed.to_json_pretty(), "serialization not byte-stable");
    }
}

/// Every checked-in spec file must parse, validate, and round-trip
/// byte-idempotently. Files declaring `"kind": "pool-scaling"` follow
/// the scaling-grid schema, `"kind": "transfer"` the transfer-matrix
/// schema; everything else is an [`ExperimentSpec`].
#[test]
fn checked_in_specs_parse_validate_and_round_trip() {
    use histal_bench::scaling::{is_pool_scaling_json, PoolScalingSpec};
    use histal_bench::transfer::{is_transfer_json, TransferSpec};

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("specs/ directory exists at the repo root")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut experiment_specs = 0usize;
    let mut scaling_specs = 0usize;
    let mut transfer_specs = 0usize;
    for path in paths {
        let body = std::fs::read_to_string(&path).unwrap();
        if is_pool_scaling_json(&body) {
            scaling_specs += 1;
            let spec = PoolScalingSpec::from_json(&body)
                .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: validate failed: {e}", path.display()));
            let json1 = spec.to_json_pretty();
            let spec2 = PoolScalingSpec::from_json(&json1).unwrap();
            assert_eq!(
                spec,
                spec2,
                "{}: round trip changed the spec",
                path.display()
            );
            continue;
        }
        if is_transfer_json(&body) {
            transfer_specs += 1;
            let spec = TransferSpec::from_json(&body)
                .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: validate failed: {e}", path.display()));
            let json1 = spec.to_json_pretty();
            let spec2 = TransferSpec::from_json(&json1).unwrap();
            assert_eq!(
                spec,
                spec2,
                "{}: round trip changed the spec",
                path.display()
            );
            assert_eq!(
                json1,
                spec2.to_json_pretty(),
                "{}: serialization not idempotent",
                path.display()
            );
            continue;
        }
        experiment_specs += 1;
        let spec = ExperimentSpec::from_json(&body)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: validate failed: {e}", path.display()));
        let json1 = spec.to_json_pretty();
        let spec2 = ExperimentSpec::from_json(&json1).unwrap();
        assert_eq!(
            spec,
            spec2,
            "{}: round trip changed the spec",
            path.display()
        );
        assert_eq!(
            json1,
            spec2.to_json_pretty(),
            "{}: serialization not idempotent",
            path.display()
        );
    }
    assert!(
        experiment_specs >= 7,
        "expected the seven checked-in experiment specs, found {experiment_specs}"
    );
    assert!(
        scaling_specs >= 1,
        "expected the checked-in pool-scaling spec, found {scaling_specs}"
    );
    assert!(
        transfer_specs >= 1,
        "expected the checked-in transfer spec, found {transfer_specs}"
    );
}

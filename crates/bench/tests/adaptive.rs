//! Golden tests of the adaptive (round-streamed, pruned) execution
//! path: pruned curves must be exact prefixes of exhaustive ones, and a
//! torn journal must resume to byte-identical output — including the
//! pruning decisions themselves.

use histal_bench::executor::{GridExecutor, GridOutcome};
use histal_bench::journal::JournalCtx;
use histal_bench::spec::ExperimentSpec;
use histal_bench::tasks::Scale;
use histal_core::driver::RunResult;

fn scale() -> Scale {
    // The spec pins its own scale; this only fills gaps.
    Scale {
        factor: 0.05,
        repeats: 2,
    }
}

fn adaptive_spec(prune: bool) -> ExperimentSpec {
    let mut spec = ExperimentSpec::from_json(
        r#"{
          "name": "adaptive-test",
          "experiment": "adaptive-test",
          "split_seed": 99,
          "datasets": ["mr"],
          "groups": [
            {"strategies": ["random", "entropy", "WSHS(entropy)", "FHS(entropy)"]}
          ],
          "scale": {"factor": 0.05, "repeats": 2},
          "prune": {"checkpoint": 1, "margin": 0.0}
        }"#,
    )
    .expect("test spec parses");
    if !prune {
        spec.prune = None;
    }
    spec
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("histal-adaptive-golden");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

/// Serialize every cell's repeats with the per-round wall-clock
/// diagnostics zeroed — independent executions agree on everything but
/// how long each phase took.
fn to_json_no_timings(outcome: &GridOutcome) -> Vec<String> {
    outcome
        .blocks
        .iter()
        .flat_map(|b| &b.cells)
        .flat_map(|c| {
            c.runs.iter().map(|r| {
                let mut r: RunResult = r.clone();
                for round in &mut r.rounds {
                    round.fit_ms = 0.0;
                    round.eval_ms = 0.0;
                    round.score_ms = 0.0;
                    round.select_ms = 0.0;
                }
                serde_json::to_string(&r).unwrap()
            })
        })
        .collect()
}

/// Every pruned cell's curve is an exact byte prefix of the same cell's
/// exhaustive curve, survivors run to full length and match exactly,
/// and the classic path reports no adaptive summary.
#[test]
fn pruned_curves_are_exact_prefixes_of_exhaustive_run() {
    let adaptive = GridExecutor::new(&adaptive_spec(true), &scale())
        .execute()
        .expect("adaptive grid runs");
    let exhaustive = GridExecutor::new(&adaptive_spec(false), &scale())
        .execute()
        .expect("exhaustive grid runs");
    assert!(exhaustive.adaptive.is_none(), "classic path has no summary");
    let summary = adaptive.adaptive.expect("adaptive path has a summary");
    assert!(summary.pruned_cells > 0, "margin 0 must prune something");
    assert!(summary.saved_cell_rounds() > 0);

    let point_json = |r: &RunResult| -> Vec<String> {
        r.curve
            .iter()
            .map(|p| serde_json::to_string(p).unwrap())
            .collect()
    };
    let full_points = exhaustive.blocks[0].config.rounds + 1;
    let mut truncated = 0usize;
    for (a_cell, e_cell) in adaptive.blocks[0]
        .cells
        .iter()
        .zip(&exhaustive.blocks[0].cells)
    {
        assert_eq!(a_cell.name, e_cell.name);
        for (a_run, e_run) in a_cell.runs.iter().zip(&e_cell.runs) {
            let (a_pts, e_pts) = (point_json(a_run), point_json(e_run));
            assert_eq!(e_pts.len(), full_points);
            assert!(a_pts.len() <= e_pts.len());
            assert_eq!(
                a_pts,
                e_pts[..a_pts.len()],
                "{}: streamed curve diverged from the run-to-completion curve",
                a_cell.name
            );
            if a_pts.len() < e_pts.len() {
                truncated += 1;
            }
        }
    }
    assert!(truncated > 0, "no run was actually cut short");
}

/// Kill an adaptive run at arbitrary byte offsets and resume: the
/// journal replays the completed (possibly truncated) slots, the
/// scheduler re-derives identical pruning decisions from them, and the
/// grid output — summary included — is byte-identical.
#[test]
fn adaptive_resume_from_torn_journal_is_byte_identical() {
    let spec = adaptive_spec(true);
    let path = tmp("adaptive-kill");
    let reference = {
        let ctx = JournalCtx::create(&path).unwrap();
        GridExecutor::new(&spec, &scale())
            .journal(Some(&ctx))
            .execute()
            .expect("journaled adaptive grid runs")
    };
    let ref_summary = reference.adaptive.expect("summary present");
    let full_len = std::fs::metadata(&path).unwrap().len();
    for cut in [full_len / 4, full_len / 2, full_len * 3 / 4, full_len - 7] {
        let bytes = std::fs::read(&path).unwrap();
        let torn = tmp(&format!("adaptive-cut-{cut}"));
        std::fs::write(&torn, &bytes[..cut as usize]).unwrap();
        let ctx = JournalCtx::resume(&torn).unwrap();
        let resumed = GridExecutor::new(&spec, &scale())
            .journal(Some(&ctx))
            .execute()
            .expect("resumed adaptive grid runs");
        assert_eq!(
            to_json_no_timings(&reference),
            to_json_no_timings(&resumed),
            "resume after cut at {cut}/{full_len} bytes diverged"
        );
        assert_eq!(
            resumed.adaptive.expect("summary present"),
            ref_summary,
            "pruning decisions changed across resume (cut at {cut} bytes)"
        );
        std::fs::remove_file(&torn).ok();
    }
    std::fs::remove_file(&path).ok();
}

//! Golden tests for the spec-driven experiment engine.
//!
//! The refactor contract: `histal-experiments fig5` / `fig3-text` (and
//! the same grids via `run --spec specs/<name>.json`) must produce
//! stdout and `results/*.json` byte-identical to the pre-refactor
//! harness, and a journal written by the pre-refactor binary must resume
//! byte-identically. The goldens under `tests/goldens/` were captured
//! from the hand-coded monolith at `--scale 0.02 --repeats 1` (debug).

use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_histal-experiments");

fn goldens() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn specs() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

/// Fresh scratch directory (the harness writes `results/` into its cwd).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("histal-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn golden(name: &str) -> String {
    let path = goldens().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {name}: {e}"))
}

/// Run the harness in `dir` at the golden scale, returning (stdout, stderr).
fn run(dir: &Path, args: &[&str]) -> (String, String) {
    let out = Command::new(BIN)
        .args(args)
        .args(["--scale", "0.02", "--repeats", "1"])
        .current_dir(dir)
        .output()
        .expect("spawn histal-experiments");
    assert!(
        out.status.success(),
        "{args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

fn results_json(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join("results").join(name))
        .unwrap_or_else(|e| panic!("harness did not write results/{name}: {e}"))
}

#[test]
fn fig5_matches_pre_refactor_golden_via_command_and_spec() {
    let dir = scratch("fig5");
    let (stdout, _) = run(&dir, &["fig5"]);
    assert_eq!(stdout, golden("fig5_s002_r1.stdout"), "fig5 stdout drifted");
    assert_eq!(
        results_json(&dir, "fig5.json"),
        golden("fig5_s002_r1.json"),
        "fig5 results JSON drifted"
    );

    // The declarative path must be the same bytes as the named command.
    let spec = specs().join("fig5.json");
    let (stdout, _) = run(&dir, &["run", "--spec", spec.to_str().unwrap()]);
    assert_eq!(
        stdout,
        golden("fig5_s002_r1.stdout"),
        "run --spec fig5 stdout drifted"
    );
    assert_eq!(
        results_json(&dir, "fig5.json"),
        golden("fig5_s002_r1.json"),
        "run --spec fig5 results JSON drifted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig3_text_matches_pre_refactor_golden() {
    let dir = scratch("fig3t");
    let (stdout, _) = run(&dir, &["fig3-text"]);
    assert_eq!(
        stdout,
        golden("fig3_text_s002_r1.stdout"),
        "fig3-text stdout drifted"
    );
    assert_eq!(
        results_json(&dir, "fig3_text.json"),
        golden("fig3_text_s002_r1.json"),
        "fig3-text results JSON drifted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal written by the pre-refactor binary must replay: same cell
/// keys, same config hashes, byte-identical stdout, no cell re-run.
#[test]
fn fig5_resumes_pre_refactor_journal_byte_identically() {
    let dir = scratch("fig5-resume");
    let journal = dir.join("fig5.jsonl");
    std::fs::copy(goldens().join("fig5_s002_r1.jsonl"), &journal).expect("copy golden journal");
    let (stdout, stderr) = run(
        &dir,
        &["resume", "fig5", "--journal", journal.to_str().unwrap()],
    );
    assert!(
        stderr.contains("# resume: 6 completed cell(s) in journal"),
        "journal cells not recognized:\n{stderr}"
    );
    assert_eq!(
        stdout,
        golden("fig5_s002_r1.stdout"),
        "resumed fig5 stdout drifted from the pre-refactor golden"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same contract for the fig3-text grid, whose LHS cells now route
/// through the `histal_core::learned` subsystem: a pre-refactor journal
/// must replay byte-identically with every cell recognized.
#[test]
fn fig3_text_resumes_pre_refactor_journal_byte_identically() {
    let dir = scratch("fig3t-resume");
    let journal = dir.join("fig3_text.jsonl");
    std::fs::copy(goldens().join("fig3_text_s002_r1.jsonl"), &journal)
        .expect("copy golden journal");
    let (stdout, stderr) = run(
        &dir,
        &[
            "resume",
            "fig3-text",
            "--journal",
            journal.to_str().unwrap(),
        ],
    );
    assert!(
        stderr.contains("# resume: 42 completed cell(s) in journal"),
        "journal cells not recognized:\n{stderr}"
    );
    assert_eq!(
        stdout,
        golden("fig3_text_s002_r1.stdout"),
        "resumed fig3-text stdout drifted from the pre-refactor golden"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Serial-vs-parallel equivalence: one small Figure-3-style text cell
//! must produce a byte-identical `RunResult` whether the harness runs on
//! 1 worker thread or 4. Only the wall-clock diagnostics (`fit_ms`,
//! `eval_ms`, `select_ms`) may differ — they are zeroed before
//! comparing; curve, selections and score diagnostics are compared
//! bit-for-bit through their JSON encoding.

use histal_bench::tasks::{Scale, TextTask};
use histal_core::driver::{PoolConfig, RunResult};
use histal_core::strategy::{BaseStrategy, DensityConfig, HistoryPolicy, MmrConfig, Strategy};
use histal_data::TextSpec;

fn run_cell() -> Vec<RunResult> {
    let scale = Scale {
        factor: 0.05,
        repeats: 2,
    };
    let task = TextTask::build(&TextSpec::mr(), &scale, 0xE0);
    let config = PoolConfig {
        batch_size: 10,
        rounds: 4,
        init_labeled: 10,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let strategies = [
        Strategy::new(BaseStrategy::Entropy),
        Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 }),
    ];
    // Fan the (strategy × repeat) grid out exactly like the harness does.
    let cells: Vec<(usize, u64)> = (0..strategies.len())
        .flat_map(|s| (0..2u64).map(move |r| (s, 0xE0_0000 + r)))
        .collect();
    rayon::run_indexed(cells.len(), |c| {
        let (s, seed) = cells[c];
        task.run(strategies[s].clone(), None, &config, seed)
    })
}

/// A diversity-combinator cell: density weighting plus MMR selection
/// over the cached pool geometry, the paths that reuse per-round
/// similarity scratch buffers.
fn run_diversity_cell() -> Vec<RunResult> {
    let scale = Scale {
        factor: 0.05,
        repeats: 2,
    };
    let task = TextTask::build(&TextSpec::mr(), &scale, 0xE1);
    let config = PoolConfig {
        batch_size: 10,
        rounds: 4,
        init_labeled: 10,
        history_max_len: None,
        record_history: false,
        ann: None,
    };
    let strategy = Strategy::new(BaseStrategy::Entropy)
        .with_history(HistoryPolicy::Wshs { l: 3 })
        .with_density(DensityConfig::default())
        .with_mmr(MmrConfig::default());
    rayon::run_indexed(2, |r| {
        task.run_with_representations(strategy.clone(), &config, 0xE1_0000 + r as u64)
    })
}

/// JSON encoding with the legitimately nondeterministic wall-clock
/// fields zeroed out.
fn canonical_json(mut results: Vec<RunResult>) -> String {
    for r in &mut results {
        for round in &mut r.rounds {
            round.fit_ms = 0.0;
            round.eval_ms = 0.0;
            round.score_ms = 0.0;
            round.select_ms = 0.0;
        }
    }
    serde_json::to_string(&results).expect("RunResult serializes")
}

#[test]
fn one_thread_and_four_threads_are_byte_identical() {
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("1-thread pool");
    let pool4 = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("4-thread pool");

    let serial = canonical_json(pool1.install(run_cell));
    let parallel = canonical_json(pool4.install(run_cell));

    assert!(
        !serial.is_empty() && serial.contains("curve"),
        "cell produced no output"
    );
    assert_eq!(
        serial, parallel,
        "RunResult JSON must be byte-identical at 1 vs 4 threads"
    );
}

#[test]
fn diversity_combinators_are_byte_identical_across_threads() {
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("1-thread pool");
    let pool4 = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("4-thread pool");

    let serial = canonical_json(pool1.install(run_diversity_cell));
    let parallel = canonical_json(pool4.install(run_diversity_cell));

    assert!(
        !serial.is_empty() && serial.contains("curve"),
        "diversity cell produced no output"
    );
    assert_eq!(
        serial, parallel,
        "density + MMR RunResult JSON must be byte-identical at 1 vs 4 threads"
    );
}

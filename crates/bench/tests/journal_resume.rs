//! Golden tests of the crash-safe run journal: replayed cells must
//! reproduce their `RunResult` byte-for-byte, and a grid killed at an
//! arbitrary byte offset must resume to output identical to an
//! uninterrupted run.

use histal_bench::journal::JournalCtx;
use histal_bench::tasks::{Scale, TextTask};
use histal_core::driver::{PoolConfig, RunResult};
use histal_core::strategy::{BaseStrategy, HistoryPolicy, Strategy};
use histal_data::TextSpec;

fn scale() -> Scale {
    Scale {
        factor: 0.05,
        repeats: 1,
    }
}

fn config() -> PoolConfig {
    PoolConfig {
        batch_size: 25,
        rounds: 4,
        init_labeled: 25,
        history_max_len: None,
        record_history: false,
        ann: None,
    }
}

fn grid() -> Vec<(String, Strategy)> {
    let wshs = |l| Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l });
    vec![
        (
            "g/MR/entropy/r0".to_string(),
            Strategy::new(BaseStrategy::Entropy),
        ),
        ("g/MR/WSHS-l2/r0".to_string(), wshs(2)),
        ("g/MR/WSHS-l3/r0".to_string(), wshs(3)),
        (
            "g/MR/random/r0".to_string(),
            Strategy::new(BaseStrategy::Random),
        ),
    ]
}

fn run_grid(task: &TextTask, ctx: Option<&JournalCtx>) -> Vec<RunResult> {
    let config = config();
    grid()
        .into_iter()
        .enumerate()
        .map(|(i, (cell, strategy))| {
            let seed = 1000 + i as u64;
            match ctx {
                Some(ctx) => ctx.run_cell(&cell, i as u64, seed, |j| {
                    task.run_journaled(strategy.clone(), None, &config, seed, j)
                }),
                None => task.run(strategy.clone(), None, &config, seed),
            }
        })
        .collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("histal-journal-golden");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

fn to_json(results: &[RunResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect()
}

/// JSON with the per-round wall-clock diagnostics zeroed: two
/// *independent executions* agree on everything except how long each
/// phase happened to take. Replay comparisons don't need this — a cached
/// cell carries the original timings and matches byte-for-byte.
fn to_json_no_timings(results: &[RunResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| {
            let mut r = r.clone();
            for round in &mut r.rounds {
                round.fit_ms = 0.0;
                round.eval_ms = 0.0;
                round.score_ms = 0.0;
                round.select_ms = 0.0;
            }
            serde_json::to_string(&r).unwrap()
        })
        .collect()
}

/// A journaled cell replayed on resume is byte-identical to the original
/// run — the JSON writer's exact `f64` round-trip makes the embedded
/// `RunResult` lossless.
#[test]
fn replay_reproduces_run_result_byte_identically() {
    let task = TextTask::build(&TextSpec::mr(), &scale(), 0x60);
    let path = tmp("replay");
    let fresh = {
        let ctx = JournalCtx::create(&path).unwrap();
        run_grid(&task, Some(&ctx))
    };
    let replayed = {
        let ctx = JournalCtx::resume(&path).unwrap();
        assert_eq!(ctx.resumed, grid().len());
        // Every cell must come from the journal: the run closure would
        // produce a detectably different result if it executed at all.
        let config = config();
        grid()
            .into_iter()
            .enumerate()
            .map(|(i, (cell, strategy))| {
                let mut executed = false;
                let r = ctx.run_cell(&cell, i as u64, 1000 + i as u64, |j| {
                    executed = true;
                    task.run_journaled(strategy.clone(), None, &config, 999, j)
                });
                assert!(!executed, "cell {cell} re-ran instead of replaying");
                r
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(to_json(&fresh), to_json(&replayed));
    // And both match an unjournaled run of the same grid (timings aside —
    // wall clocks differ between independent executions).
    assert_eq!(
        to_json_no_timings(&fresh),
        to_json_no_timings(&run_grid(&task, None))
    );
    std::fs::remove_file(&path).ok();
}

/// Kill the harness at an arbitrary point — here, truncate the journal
/// mid-record after cell k — and `resume` must complete the grid with
/// output identical to an uninterrupted run, re-running only the cells
/// whose completion record was lost.
#[test]
fn kill_at_round_k_resume_completes_grid() {
    let task = TextTask::build(&TextSpec::mr(), &scale(), 0x61);
    let reference = run_grid(&task, None);
    let path = tmp("kill");
    {
        let ctx = JournalCtx::create(&path).unwrap();
        run_grid(&task, Some(&ctx));
    }
    let full_len = std::fs::metadata(&path).unwrap().len();
    // Chop at several offsets, including mid-line (a torn write): resume
    // must repair the tail and still complete the whole grid.
    for cut in [full_len / 4, full_len / 2, full_len * 3 / 4, full_len - 7] {
        let bytes = std::fs::read(&path).unwrap();
        let torn = tmp(&format!("kill-cut-{cut}"));
        std::fs::write(&torn, &bytes[..cut as usize]).unwrap();
        let ctx = JournalCtx::resume(&torn).unwrap();
        assert!(
            ctx.resumed < grid().len(),
            "cut at {cut}/{full_len} bytes lost no cells"
        );
        let resumed = run_grid(&task, Some(&ctx));
        assert_eq!(
            to_json_no_timings(&reference),
            to_json_no_timings(&resumed),
            "resume after cut at {cut} bytes diverged"
        );
        // A second resume of the now-complete journal replays everything.
        drop(ctx);
        let ctx = JournalCtx::resume(&torn).unwrap();
        assert_eq!(ctx.resumed, grid().len());
        std::fs::remove_file(&torn).ok();
    }
    std::fs::remove_file(&path).ok();
}

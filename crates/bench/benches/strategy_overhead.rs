//! Table 2 — per-iteration overhead of the history-aware strategies.
//!
//! The paper argues (§4.6) that WSHS/FHS/LHS add only `O(1)` work on top
//! of the evaluation pass every strategy already performs, since the
//! historical scores are reused rather than recomputed. This bench
//! measures exactly that: the time to fold a pool's histories into
//! selection scores under each policy, plus the LHS ranking path, for a
//! 10 000-sample pool — directly comparable against the base strategy's
//! "current score only" fold.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_core::eval::SampleEval;
use histal_core::history::HistoryStore;
use histal_core::lhs::{candidate_set, LhsFeatureConfig};
use histal_core::strategy::combinators::{apply_density, mmr_select, SimScratch};
use histal_core::strategy::{kcenter_select, DensityConfig, HistoryPolicy, MmrConfig};
use histal_ltr::{LambdaMart, LambdaMartConfig, QueryGroup, Ranker, RankingDataset};
use histal_text::{PoolGeometry, SparseVec};
use histal_tseries::ArPredictor;

const POOL: usize = 10_000;
const ITERS: usize = 10;

fn build_history() -> HistoryStore {
    build_history_with(HistoryStore::new(POOL))
}

fn build_history_rolling(window: usize) -> HistoryStore {
    build_history_with(HistoryStore::new(POOL).with_rolling(window))
}

fn build_history_with(mut h: HistoryStore) -> HistoryStore {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for _ in 0..ITERS {
        for id in 0..POOL {
            h.append(id, rng.gen());
        }
    }
    h
}

fn build_evals() -> Vec<SampleEval> {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    (0..POOL)
        .map(|_| {
            let p: f64 = rng.gen();
            SampleEval::from_probs(vec![p, 1.0 - p])
        })
        .collect()
}

const POLICIES: [(&str, HistoryPolicy); 4] = [
    ("basic_current_only", HistoryPolicy::CurrentOnly),
    ("HUS_k3", HistoryPolicy::Hus { k: 3 }),
    ("WSHS_l3", HistoryPolicy::Wshs { l: 3 }),
    (
        "FHS_l3",
        HistoryPolicy::Fhs {
            l: 3,
            w_score: 0.5,
            w_fluct: 0.5,
        },
    ),
];

fn bench_history_policies(c: &mut Criterion) {
    let history = build_history();
    let mut group = c.benchmark_group("table2_selection_scoring");
    // From-scratch fold: rescan the retained window per sample.
    for (name, policy) in POLICIES {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                let mut acc = 0.0;
                for id in 0..POOL {
                    history.seq(id).copy_into(&mut buf);
                    acc += policy.final_score(&buf);
                }
                black_box(acc)
            })
        });
    }
    // O(1) rolling-statistics fold of the same histories.
    for (name, policy) in POLICIES {
        let history = build_history_rolling(policy.window());
        group.bench_function(
            BenchmarkId::from_parameter(format!("{name}_rolling")),
            |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for id in 0..POOL {
                        acc += policy.rolling_score(history.rolling(id).expect("rolling enabled"));
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn bench_lhs_path(c: &mut Criterion) {
    let history = build_history();
    let evals = build_evals();
    // A small trained ranker + predictor, as the deployed LHS would hold.
    let mut ds = RankingDataset::new();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for _ in 0..8 {
        let feats: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..9).map(|_| rng.gen()).collect())
            .collect();
        let rels: Vec<f64> = (0..20).map(|i| (i % 4) as f64).collect();
        ds.push(QueryGroup::new(feats, rels));
    }
    let ranker = LambdaMart::fit(
        &ds,
        &LambdaMartConfig {
            n_trees: 30,
            ..Default::default()
        },
    );
    let predictor = ArPredictor::fit(&[(0..20).map(|i| i as f64 / 20.0).collect()], 3);
    let features = LhsFeatureConfig {
        window: 3,
        ..Default::default()
    };

    c.bench_function("table2_LHS_candidate_rank", |b| {
        b.iter(|| {
            let candidates = candidate_set(&evals, 75);
            let rows: Vec<Vec<f64>> = candidates
                .iter()
                .map(|&pos| features.extract(&history.seq(pos).to_vec(), &evals[pos], &predictor))
                .collect();
            black_box(ranker.score_batch(&rows))
        })
    });
}

/// Reference MMR over raw `SparseVec`s — `SparseVec::cosine` recomputes
/// both norms (a full pass and a square root each) per pair, which is
/// what every round paid before `PoolGeometry` cached them.
fn mmr_select_uncached(
    scores: &[f64],
    unlabeled: &[usize],
    reps: &[SparseVec],
    batch_size: usize,
    config: &MmrConfig,
) -> Vec<usize> {
    let n = unlabeled.len();
    let k = batch_size.min(n);
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut taken = vec![false; n];
    let mut max_sim = vec![0.0f64; n];
    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for pos in 0..n {
            if taken[pos] {
                continue;
            }
            let value = config.lambda * scores[pos] - (1.0 - config.lambda) * max_sim[pos];
            if best.map_or(true, |(_, b)| value > b) {
                best = Some((pos, value));
            }
        }
        let (pos, _) = match best {
            Some(b) => b,
            None => break,
        };
        taken[pos] = true;
        selected.push(pos);
        let new_rep = &reps[unlabeled[pos]];
        for other in 0..n {
            if !taken[other] {
                let s = new_rep.cosine(&reps[unlabeled[other]]);
                if s > max_sim[other] {
                    max_sim[other] = s;
                }
            }
        }
    }
    selected
}

/// Reference density weighting over raw `SparseVec`s with the linear
/// `contains` membership scan the mask replaced.
fn density_uncached(
    scores: &mut [f64],
    unlabeled: &[usize],
    reps: &[SparseVec],
    reference: &[usize],
    beta: f64,
) {
    for (score, &id) in scores.iter_mut().zip(unlabeled) {
        let mut sim_sum = 0.0;
        for &other in reference {
            if other != id {
                sim_sum += reps[id].cosine(&reps[other]);
            }
        }
        let denom = reference
            .len()
            .saturating_sub(usize::from(reference.contains(&id)));
        let density = if denom == 0 {
            0.0
        } else {
            sim_sum / denom as f64
        };
        *score *= density.max(0.0).powf(beta);
    }
}

fn bench_batch_selectors(c: &mut Criterion) {
    // 1 000-candidate pool with sparse reps, batch of 25.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let n = 1_000;
    let reps: Vec<SparseVec> = (0..n)
        .map(|_| {
            let pairs: Vec<(u32, f32)> =
                (0..30).map(|_| (rng.gen_range(0..4096u32), 1.0)).collect();
            SparseVec::from_pairs(pairs)
        })
        .collect();
    let unlabeled: Vec<usize> = (0..n).collect();
    let scores: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
    let geom = PoolGeometry::build(&reps);
    c.bench_function("mmr_select_1000x25", |b| {
        let mut scratch = SimScratch::default();
        b.iter(|| {
            black_box(mmr_select(
                &scores,
                &unlabeled,
                &geom,
                None,
                25,
                &MmrConfig::default(),
                &mut scratch,
            ))
        })
    });
    c.bench_function("mmr_select_1000x25_uncached", |b| {
        b.iter(|| {
            black_box(mmr_select_uncached(
                &scores,
                &unlabeled,
                &reps,
                25,
                &MmrConfig::default(),
            ))
        })
    });
    c.bench_function("kcenter_select_1000x25", |b| {
        let mut scratch = SimScratch::default();
        b.iter(|| {
            black_box(kcenter_select(
                &scores,
                &unlabeled,
                &geom,
                None,
                25,
                &mut scratch,
            ))
        })
    });
    let density_cfg = DensityConfig::default();
    c.bench_function("density_1000x256", |b| {
        let mut scratch = SimScratch::default();
        b.iter(|| {
            let mut s = scores.clone();
            let mut drng = ChaCha8Rng::seed_from_u64(6);
            apply_density(
                &mut s,
                &unlabeled,
                &geom,
                None,
                &density_cfg,
                &mut drng,
                &mut scratch,
            );
            black_box(s)
        })
    });
    c.bench_function("density_1000x256_uncached", |b| {
        // Same reference subset the cached path draws.
        use rand::seq::SliceRandom;
        let mut drng = ChaCha8Rng::seed_from_u64(6);
        let reference: Vec<usize> = unlabeled
            .choose_multiple(&mut drng, density_cfg.sample_size)
            .copied()
            .collect();
        b.iter(|| {
            let mut s = scores.clone();
            density_uncached(&mut s, &unlabeled, &reps, &reference, density_cfg.beta);
            black_box(s)
        })
    });
}

fn bench_history_append(c: &mut Criterion) {
    c.bench_function("table2_history_append_pool", |b| {
        b.iter(|| {
            let mut h = HistoryStore::with_max_len(POOL, 3);
            for id in 0..POOL {
                h.append(id, black_box(0.5));
            }
            black_box(h.recorded_len(0))
        })
    });
}

criterion_group!(
    benches,
    bench_history_policies,
    bench_lhs_path,
    bench_batch_selectors,
    bench_history_append
);
criterion_main!(benches);

//! Table 2 — per-iteration overhead of the history-aware strategies.
//!
//! The paper argues (§4.6) that WSHS/FHS/LHS add only `O(1)` work on top
//! of the evaluation pass every strategy already performs, since the
//! historical scores are reused rather than recomputed. This bench
//! measures exactly that: the time to fold a pool's histories into
//! selection scores under each policy, plus the LHS ranking path, for a
//! 10 000-sample pool — directly comparable against the base strategy's
//! "current score only" fold.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_core::eval::SampleEval;
use histal_core::history::HistoryStore;
use histal_core::lhs::{candidate_set, LhsFeatureConfig};
use histal_core::strategy::combinators::mmr_select;
use histal_core::strategy::{kcenter_select, HistoryPolicy, MmrConfig};
use histal_ltr::{LambdaMart, LambdaMartConfig, QueryGroup, Ranker, RankingDataset};
use histal_text::SparseVec;
use histal_tseries::ArPredictor;

const POOL: usize = 10_000;
const ITERS: usize = 10;

fn build_history() -> HistoryStore {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut h = HistoryStore::new(POOL);
    for _ in 0..ITERS {
        for id in 0..POOL {
            h.append(id, rng.gen());
        }
    }
    h
}

fn build_evals() -> Vec<SampleEval> {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    (0..POOL)
        .map(|_| {
            let p: f64 = rng.gen();
            SampleEval::from_probs(vec![p, 1.0 - p])
        })
        .collect()
}

fn bench_history_policies(c: &mut Criterion) {
    let history = build_history();
    let mut group = c.benchmark_group("table2_selection_scoring");
    for (name, policy) in [
        ("basic_current_only", HistoryPolicy::CurrentOnly),
        ("HUS_k3", HistoryPolicy::Hus { k: 3 }),
        ("WSHS_l3", HistoryPolicy::Wshs { l: 3 }),
        (
            "FHS_l3",
            HistoryPolicy::Fhs {
                l: 3,
                w_score: 0.5,
                w_fluct: 0.5,
            },
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for id in 0..POOL {
                    acc += policy.final_score(history.seq(id));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_lhs_path(c: &mut Criterion) {
    let history = build_history();
    let evals = build_evals();
    // A small trained ranker + predictor, as the deployed LHS would hold.
    let mut ds = RankingDataset::new();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for _ in 0..8 {
        let feats: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..9).map(|_| rng.gen()).collect())
            .collect();
        let rels: Vec<f64> = (0..20).map(|i| (i % 4) as f64).collect();
        ds.push(QueryGroup::new(feats, rels));
    }
    let ranker = LambdaMart::fit(
        &ds,
        &LambdaMartConfig {
            n_trees: 30,
            ..Default::default()
        },
    );
    let predictor = ArPredictor::fit(&[(0..20).map(|i| i as f64 / 20.0).collect()], 3);
    let features = LhsFeatureConfig {
        window: 3,
        ..Default::default()
    };

    c.bench_function("table2_LHS_candidate_rank", |b| {
        b.iter(|| {
            let candidates = candidate_set(&evals, 75);
            let rows: Vec<Vec<f64>> = candidates
                .iter()
                .map(|&pos| features.extract(history.seq(pos), &evals[pos], &predictor))
                .collect();
            black_box(ranker.score_batch(&rows))
        })
    });
}

fn bench_batch_selectors(c: &mut Criterion) {
    // 1 000-candidate pool with sparse reps, batch of 25.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let n = 1_000;
    let reps: Vec<SparseVec> = (0..n)
        .map(|_| {
            let pairs: Vec<(u32, f32)> =
                (0..30).map(|_| (rng.gen_range(0..4096u32), 1.0)).collect();
            SparseVec::from_pairs(pairs)
        })
        .collect();
    let unlabeled: Vec<usize> = (0..n).collect();
    let scores: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
    c.bench_function("mmr_select_1000x25", |b| {
        b.iter(|| {
            black_box(mmr_select(
                &scores,
                &unlabeled,
                &reps,
                25,
                &MmrConfig::default(),
            ))
        })
    });
    c.bench_function("kcenter_select_1000x25", |b| {
        b.iter(|| black_box(kcenter_select(&scores, &unlabeled, &reps, 25)))
    });
}

fn bench_history_append(c: &mut Criterion) {
    c.bench_function("table2_history_append_pool", |b| {
        b.iter(|| {
            let mut h = HistoryStore::with_max_len(POOL, 3);
            for id in 0..POOL {
                h.append(id, black_box(0.5));
            }
            black_box(h.recorded_len(0))
        })
    });
}

criterion_group!(
    benches,
    bench_history_policies,
    bench_lhs_path,
    bench_batch_selectors,
    bench_history_append
);
criterion_main!(benches);

//! Selection-primitive micro-benches for the million-sample pool work:
//! the bounded-heap `select_k` (vs. the full sort it replaced) and an
//! LSH neighbor probe, each at 10k and 1M rows.
//!
//! `select_k` is the driver's per-round batch pick and MMR's inner
//! argmax; at k ≪ n it runs O(n log k) against the old O(n log n) sort.
//! The LSH probe is what the ANN-indexed combinators pay per reference
//! row instead of an O(n) sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use histal_core::driver::{select_k, top_k};
use histal_data::synth_pool;
use histal_text::{AnnConfig, AnnScratch, LshIndex, NeighborIndex, PoolGeometry};

/// Deterministic pseudo-random scores without an RNG dependency here:
/// splitmix64 folded into (0, 1].
fn scores(n: usize) -> Vec<f64> {
    (0..n as u64)
        .map(|i| {
            let mut h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5ca1ab1e;
            h ^= h >> 30;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 27;
            ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64
        })
        .collect()
}

fn bench_select_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_k");
    for &n in &[10_000usize, 1_000_000] {
        let s = scores(n);
        group.bench_function(BenchmarkId::new("heap_k64", n), |b| {
            b.iter(|| black_box(select_k(black_box(&s), 64)))
        });
        // `top_k` now routes through `select_k`; timing it too keeps the
        // delegation visibly free.
        group.bench_function(BenchmarkId::new("top_k_k64", n), |b| {
            b.iter(|| black_box(top_k(black_box(&s), 64)))
        });
    }
    group.finish();
}

fn bench_lsh_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsh_probe");
    for &n in &[10_000usize, 1_000_000] {
        // 8 nnz/row keeps the 1M resident build in a few hundred MB.
        let reps = synth_pool(0xB5, n, 8, 8);
        let geom = PoolGeometry::build(&reps);
        let index = LshIndex::build(&geom, &AnnConfig::default(), 0xB5);
        let mut scratch = AnnScratch::default();
        let mut out = Vec::new();
        group.bench_function(BenchmarkId::new("neighbors", n), |b| {
            let mut row = 0usize;
            b.iter(|| {
                index.neighbors_into(row % n, &mut scratch, &mut out);
                row = row.wrapping_add(7919);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_select_k, bench_lsh_probe);
criterion_main!(benches);

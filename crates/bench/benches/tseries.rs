//! Microbenchmarks for the historical-sequence feature kit — the per-
//! sample constants behind the Table 2 overhead argument.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_tseries::{
    autocorrelation, exp_weighted_sum, mann_kendall, window_variance, ArPredictor, HoltPredictor,
    LstmConfig, LstmPredictor, SequencePredictor,
};

fn bench_features(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let seq: Vec<f64> = (0..20).map(|_| rng.gen()).collect();
    c.bench_function("wshs_window3", |b| {
        b.iter(|| black_box(exp_weighted_sum(&seq, 3)))
    });
    c.bench_function("fluctuation_window3", |b| {
        b.iter(|| black_box(window_variance(&seq, 3)))
    });
    c.bench_function("mann_kendall_20", |b| {
        b.iter(|| black_box(mann_kendall(&seq)))
    });
    c.bench_function("autocorrelation_lag1", |b| {
        b.iter(|| black_box(autocorrelation(&seq, 1)))
    });
}

fn bench_predictors(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let train: Vec<Vec<f64>> = (0..50)
        .map(|_| (0..20).map(|_| rng.gen()).collect())
        .collect();
    let seq: Vec<f64> = (0..20).map(|_| rng.gen()).collect();

    let ar = ArPredictor::fit(&train, 3);
    c.bench_function("ar3_predict_next", |b| {
        b.iter(|| black_box(ar.predict_next(&seq)))
    });

    let lstm = LstmPredictor::fit(
        &train,
        LstmConfig {
            epochs: 3,
            ..Default::default()
        },
        &mut rng,
    );
    c.bench_function("lstm_predict_next", |b| {
        b.iter(|| black_box(lstm.predict_next(&seq)))
    });
    let holt = HoltPredictor::fit(&train);
    c.bench_function("holt_predict_next", |b| {
        b.iter(|| black_box(holt.predict_next(&seq)))
    });
    c.bench_function("lstm_fit_50seqs", |b| {
        b.iter(|| {
            let mut r = ChaCha8Rng::seed_from_u64(31);
            black_box(LstmPredictor::fit(
                &train,
                LstmConfig {
                    epochs: 2,
                    ..Default::default()
                },
                &mut r,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_features, bench_predictors
}
criterion_main!(benches);

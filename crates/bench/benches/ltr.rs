//! Microbenchmarks for the learning-to-rank stack behind LHS: LambdaMART
//! training (the offline cost §4.6 mentions) and per-sample scoring (the
//! online cost folded into Table 2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_ltr::{LambdaMart, LambdaMartConfig, QueryGroup, Ranker, RankingDataset};

fn dataset(groups: usize, docs: usize, feats: usize) -> RankingDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let mut ds = RankingDataset::new();
    for _ in 0..groups {
        let features: Vec<Vec<f64>> = (0..docs)
            .map(|_| (0..feats).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let relevance: Vec<f64> = features.iter().map(|f| (f[0] * 4.0).floor()).collect();
        ds.push(QueryGroup::new(features, relevance));
    }
    ds
}

fn bench_lambdamart(c: &mut Criterion) {
    let ds = dataset(20, 24, 11);
    c.bench_function("lambdamart_fit_20x24", |b| {
        b.iter(|| {
            black_box(LambdaMart::fit(
                &ds,
                &LambdaMartConfig {
                    n_trees: 50,
                    ..Default::default()
                },
            ))
        })
    });
    let model = LambdaMart::fit(&ds, &LambdaMartConfig::default());
    let row: Vec<f64> = (0..11).map(|i| i as f64 / 11.0).collect();
    c.bench_function("lambdamart_score", |b| {
        b.iter(|| black_box(model.score(&row)))
    });
    let rows: Vec<Vec<f64>> = (0..75).map(|_| row.clone()).collect();
    c.bench_function("lambdamart_score_candidates75", |b| {
        b.iter(|| black_box(model.score_batch(&rows)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lambdamart
}
criterion_main!(benches);

//! Microbenchmarks for the model substrates: classifier fit/eval and CRF
//! inference — the `O(T)` evaluation cost that dominates every strategy
//! in Table 2.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_core::eval::EvalCaps;
use histal_core::model::Model;
use histal_data::{NerSpec, TextSpec};
use histal_models::{
    CrfConfig, CrfTagger, Document, NaiveBayes, NaiveBayesConfig, Sentence, TextClassifier,
    TextClassifierConfig,
};
use histal_text::FeatureHasher;

fn text_fixture() -> (TextClassifier, Vec<Document>, Vec<usize>) {
    let data = histal_data::TextDataset::generate(&TextSpec::tiny(2, 400, 1));
    let hasher = FeatureHasher::new(1 << 16);
    let docs: Vec<Document> = data
        .docs
        .iter()
        .map(|t| Document::from_tokens(t, &hasher))
        .collect();
    let mut model = TextClassifier::new(TextClassifierConfig {
        n_classes: 2,
        epochs: 1,
        ..Default::default()
    });
    let s: Vec<&Document> = docs.iter().collect();
    let l: Vec<&usize> = data.labels.iter().collect();
    model.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(7));
    (model, docs, data.labels)
}

fn bench_classifier(c: &mut Criterion) {
    let (model, docs, labels) = text_fixture();
    c.bench_function("classifier_fit_epoch_400", |b| {
        b.iter(|| {
            let mut m = model.clone();
            let s: Vec<&Document> = docs.iter().collect();
            let l: Vec<&usize> = labels.iter().collect();
            m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(9));
            black_box(m.predict(&docs[0]))
        })
    });
    c.bench_function("classifier_predict_proba", |b| {
        b.iter(|| black_box(model.predict_proba(&docs[0])))
    });
    let caps = EvalCaps {
        egl: true,
        egl_word: true,
        ..Default::default()
    };
    c.bench_function("classifier_eval_egl", |b| {
        b.iter(|| black_box(model.eval_sample(&docs[0], &caps, 3)))
    });
    let bald_caps = EvalCaps {
        bald: true,
        ..Default::default()
    };
    c.bench_function("classifier_eval_bald16", |b| {
        b.iter(|| black_box(model.eval_sample(&docs[0], &bald_caps, 3)))
    });
}

fn crf_fixture() -> (CrfTagger, Vec<Sentence>, Vec<Vec<u16>>) {
    let data = histal_data::NerDataset::generate(&NerSpec::tiny(120, 2));
    let hasher = FeatureHasher::new(1 << 16);
    let sents: Vec<Sentence> = data
        .train
        .iter()
        .map(|s| Sentence::featurize(&s.tokens, &hasher))
        .collect();
    let tags: Vec<Vec<u16>> = data.train.iter().map(|s| s.tags.clone()).collect();
    let mut model = CrfTagger::new(CrfConfig {
        epochs: 1,
        ..Default::default()
    });
    let s: Vec<&Sentence> = sents.iter().collect();
    let l: Vec<&Vec<u16>> = tags.iter().collect();
    model.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(11));
    (model, sents, tags)
}

fn bench_crf(c: &mut Criterion) {
    let (model, sents, tags) = crf_fixture();
    c.bench_function("crf_fit_epoch_120", |b| {
        b.iter(|| {
            let mut m = model.clone();
            let s: Vec<&Sentence> = sents.iter().collect();
            let l: Vec<&Vec<u16>> = tags.iter().collect();
            m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(13));
            black_box(m.n_labels())
        })
    });
    c.bench_function("crf_viterbi", |b| {
        b.iter(|| black_box(model.viterbi(&sents[0])))
    });
    c.bench_function("crf_viterbi2_margin", |b| {
        b.iter(|| black_box(model.sequence_margin(&sents[0])))
    });
    c.bench_function("crf_marginals", |b| {
        b.iter(|| black_box(model.marginals(&sents[0])))
    });
    let caps = EvalCaps {
        mnlp: true,
        ..Default::default()
    };
    c.bench_function("crf_eval_mnlp", |b| {
        b.iter(|| black_box(model.eval_sample(&sents[0], &caps, 5)))
    });
}

fn bench_naive_bayes(c: &mut Criterion) {
    let (_, docs, labels) = text_fixture();
    let mut model = NaiveBayes::new(NaiveBayesConfig::default());
    let s: Vec<&Document> = docs.iter().collect();
    let l: Vec<&usize> = labels.iter().collect();
    model.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(17));
    c.bench_function("nb_fit_400", |b| {
        b.iter(|| {
            let mut m = NaiveBayes::new(NaiveBayesConfig::default());
            m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(19));
            black_box(m.predict(&docs[0]))
        })
    });
    c.bench_function("nb_predict_proba", |b| {
        b.iter(|| black_box(model.predict_proba(&docs[0])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classifier, bench_crf, bench_naive_bayes
}
criterion_main!(benches);

//! Microbenchmarks for the model substrates: classifier fit/eval and CRF
//! inference — the `O(T)` evaluation cost that dominates every strategy
//! in Table 2.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_core::eval::EvalCaps;
use histal_core::model::Model;
use histal_data::{NerSpec, TextSpec};
use histal_models::kernels::{self, KernelMode};
use histal_models::{
    CrfConfig, CrfTagger, Document, NaiveBayes, NaiveBayesConfig, Sentence, TextClassifier,
    TextClassifierConfig,
};
use histal_text::FeatureHasher;

fn text_fixture() -> (TextClassifier, Vec<Document>, Vec<usize>) {
    let data = histal_data::TextDataset::generate(&TextSpec::tiny(2, 400, 1));
    let hasher = FeatureHasher::new(1 << 16);
    let docs: Vec<Document> = data
        .docs
        .iter()
        .map(|t| Document::from_tokens(t, &hasher))
        .collect();
    let mut model = TextClassifier::new(TextClassifierConfig {
        n_classes: 2,
        epochs: 1,
        ..Default::default()
    });
    let s: Vec<&Document> = docs.iter().collect();
    let l: Vec<&usize> = data.labels.iter().collect();
    model.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(7));
    (model, docs, data.labels)
}

fn bench_classifier(c: &mut Criterion) {
    let (model, docs, labels) = text_fixture();
    c.bench_function("classifier_fit_epoch_400", |b| {
        b.iter(|| {
            let mut m = model.clone();
            let s: Vec<&Document> = docs.iter().collect();
            let l: Vec<&usize> = labels.iter().collect();
            m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(9));
            black_box(m.predict(&docs[0]))
        })
    });
    c.bench_function("classifier_predict_proba", |b| {
        b.iter(|| black_box(model.predict_proba(&docs[0])))
    });
    let caps = EvalCaps {
        egl: true,
        egl_word: true,
        ..Default::default()
    };
    c.bench_function("classifier_eval_egl", |b| {
        b.iter(|| black_box(model.eval_sample(&docs[0], &caps, 3)))
    });
    let bald_caps = EvalCaps {
        bald: true,
        ..Default::default()
    };
    c.bench_function("classifier_eval_bald16", |b| {
        b.iter(|| black_box(model.eval_sample(&docs[0], &bald_caps, 3)))
    });
}

fn crf_fixture() -> (CrfTagger, Vec<Sentence>, Vec<Vec<u16>>) {
    crf_fixture_with(None)
}

fn crf_fixture_with(score_beam: Option<f64>) -> (CrfTagger, Vec<Sentence>, Vec<Vec<u16>>) {
    let data = histal_data::NerDataset::generate(&NerSpec::tiny(120, 2));
    let hasher = FeatureHasher::new(1 << 16);
    let sents: Vec<Sentence> = data
        .train
        .iter()
        .map(|s| Sentence::featurize(&s.tokens, &hasher))
        .collect();
    let tags: Vec<Vec<u16>> = data.train.iter().map(|s| s.tags.clone()).collect();
    let mut model = CrfTagger::new(CrfConfig {
        epochs: 1,
        score_beam,
        ..Default::default()
    });
    let s: Vec<&Sentence> = sents.iter().collect();
    let l: Vec<&Vec<u16>> = tags.iter().collect();
    model.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(11));
    (model, sents, tags)
}

fn bench_crf(c: &mut Criterion) {
    let (model, sents, tags) = crf_fixture();
    c.bench_function("crf_fit_epoch_120", |b| {
        b.iter(|| {
            let mut m = model.clone();
            let s: Vec<&Sentence> = sents.iter().collect();
            let l: Vec<&Vec<u16>> = tags.iter().collect();
            m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(13));
            black_box(m.n_labels())
        })
    });
    c.bench_function("crf_viterbi", |b| {
        b.iter(|| black_box(model.viterbi(&sents[0])))
    });
    c.bench_function("crf_viterbi2_margin", |b| {
        b.iter(|| black_box(model.sequence_margin(&sents[0])))
    });
    c.bench_function("crf_marginals", |b| {
        b.iter(|| black_box(model.marginals(&sents[0])))
    });
    let caps = EvalCaps {
        mnlp: true,
        ..Default::default()
    };
    c.bench_function("crf_eval_mnlp", |b| {
        b.iter(|| black_box(model.eval_sample(&sents[0], &caps, 5)))
    });
}

/// Raw kernel micro-ops (scalar reference vs lane dispatch) and the
/// lattice passes they feed: exact forward, beam-pruned forward, and the
/// full scoring pass (forward + backward entropy), per DESIGN.md §5.7.
fn bench_kernels(c: &mut Criterion) {
    // Row widths: 17 is the CoNLL label count (the CRF's inner-loop
    // trip count); 1024 shows the kernels' asymptotic throughput.
    for (tag, n) in [("17", 17usize), ("1k", 1024)] {
        let a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.01 - 1.0).collect();
        let bvec: Vec<f64> = a.iter().map(|x| 1.5 - x).collect();
        let mut out = vec![0.0; n];
        for (mode_tag, mode) in [("scalar", KernelMode::Scalar), ("lanes", KernelMode::Lanes)] {
            kernels::set_mode(mode);
            c.bench_function(format!("kernel_add2_{tag}_{mode_tag}"), |b| {
                b.iter(|| {
                    kernels::add2(&mut out, black_box(&a), black_box(&bvec));
                    black_box(out[0])
                })
            });
            c.bench_function(format!("kernel_axpy_{tag}_{mode_tag}"), |b| {
                b.iter(|| {
                    kernels::axpy(&mut out, black_box(&a), black_box(0.37));
                    black_box(out[0])
                })
            });
            c.bench_function(format!("kernel_max_index_{tag}_{mode_tag}"), |b| {
                b.iter(|| black_box(kernels::max_index(black_box(&a))))
            });
        }
    }
    kernels::set_mode(KernelMode::Lanes);

    let (exact, sents, tags) = crf_fixture();
    let (beamed, _, _) = crf_fixture_with(Some(8.0));

    // Forward-only log-partition: lanes vs scalar dispatch vs δ=8 beam.
    c.bench_function("crf_logz_exact_lanes", |b| {
        b.iter(|| black_box(exact.log_partition(&sents[0])))
    });
    kernels::set_mode(KernelMode::Scalar);
    c.bench_function("crf_logz_exact_scalar", |b| {
        b.iter(|| black_box(exact.log_partition(&sents[0])))
    });
    kernels::set_mode(KernelMode::Lanes);
    c.bench_function("crf_logz_beam8", |b| {
        b.iter(|| black_box(beamed.log_partition(&sents[0])))
    });

    // Full scoring pass (forward + backward entropy), exact vs beamed.
    let caps = EvalCaps {
        entropy: true,
        ..Default::default()
    };
    c.bench_function("crf_eval_entropy_exact", |b| {
        b.iter(|| black_box(exact.eval_sample(&sents[0], &caps, 5)))
    });
    c.bench_function("crf_eval_entropy_beam8", |b| {
        b.iter(|| black_box(beamed.eval_sample(&sents[0], &caps, 5)))
    });

    // Whole fit epoch under the scalar reference kernels — pairs with
    // crf_fit_epoch_120 (lane dispatch) to isolate the kernel layer's
    // contribution on the fit path.
    kernels::set_mode(KernelMode::Scalar);
    c.bench_function("crf_fit_epoch_120_scalar", |b| {
        b.iter(|| {
            let mut m = exact.clone();
            let s: Vec<&Sentence> = sents.iter().collect();
            let l: Vec<&Vec<u16>> = tags.iter().collect();
            m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(13));
            black_box(m.n_labels())
        })
    });
    kernels::set_mode(KernelMode::Lanes);
}

fn bench_naive_bayes(c: &mut Criterion) {
    let (_, docs, labels) = text_fixture();
    let mut model = NaiveBayes::new(NaiveBayesConfig::default());
    let s: Vec<&Document> = docs.iter().collect();
    let l: Vec<&usize> = labels.iter().collect();
    model.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(17));
    c.bench_function("nb_fit_400", |b| {
        b.iter(|| {
            let mut m = NaiveBayes::new(NaiveBayesConfig::default());
            m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(19));
            black_box(m.predict(&docs[0]))
        })
    });
    c.bench_function("nb_predict_proba", |b| {
        b.iter(|| black_box(model.predict_proba(&docs[0])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classifier, bench_crf, bench_kernels, bench_naive_bayes
}
criterion_main!(benches);

//! The session store: journal-backed state for every hosted session.
//!
//! Each session owns one JSONL journal under the store's state
//! directory: a `create` record carrying the normalized
//! [`SessionConfig`], followed by one `labels` record per accepted
//! submission chunk. Because the live session is a deterministic replay
//! of its label events (see `histal_core::live`), that journal *is* the
//! session: [`Store::open`] rebuilds every session by re-resolving the
//! config and re-submitting the recorded chunks, landing byte-identical
//! to the pre-crash state — same RNG position, same pending ticket,
//! same partially-filled batch. A torn tail line (kill -9 mid-append)
//! is dropped by the journal reader and truncated on re-open, costing
//! at most the one chunk that never finished writing.
//!
//! Ordering makes the journal safe: a chunk is applied to the session
//! *first* and journaled only after it was accepted, so the journal
//! never holds a chunk the pipeline would reject. A crash between
//! apply and append loses that chunk — the client's retry is absorbed
//! as duplicates by the first-write-wins submit semantics.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use histal_core::error::Error;
use histal_core::live::{SessionStatus, SessionStep, SubmitOutcome};
use histal_core::pipeline::Ticket;
use histal_core::pool::SampleId;
use histal_obs::{Journal, JournalReader, MetricsRegistry, ShardedMetrics};

use crate::config::{SessionConfig, TaskCache};
use crate::session::{AnySession, BatchView, LabelValue};

/// Hard cap on distinct tenants (one metrics shard each).
pub const MAX_TENANTS: usize = 64;

/// Journal record written once at session creation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CreateRecord {
    kind: String,
    id: String,
    config: SessionConfig,
}

/// Journal record written per accepted submission chunk.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LabelsRecord {
    kind: String,
    ticket: Ticket,
    labels: Vec<(SampleId, LabelValue)>,
}

/// A session's status plus its serving identity, as listed to clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusView {
    /// Session id, e.g. `"s000017"`.
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// `"external"` or `"simulated"`.
    pub oracle: String,
    /// The live pipeline status.
    pub status: SessionStatus,
}

/// One hosted session: the live pipeline behind a mutex, plus its
/// journal. The mutex is the coalescing point — concurrent
/// get-next-batch calls serialize here, and every caller after the
/// first finds the ticket already issued and returns it without
/// re-entering the pipeline.
pub struct SessionEntry {
    /// Session id (also the journal file stem).
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Normalized creation config.
    pub config: SessionConfig,
    session: Mutex<AnySession>,
    journal: Journal,
}

impl SessionEntry {
    fn status_view(&self) -> StatusView {
        StatusView {
            id: self.id.clone(),
            tenant: self.tenant.clone(),
            oracle: self.config.oracle.clone(),
            status: self.session.lock().unwrap().status(),
        }
    }
}

/// The multi-tenant session store.
pub struct Store {
    state_dir: PathBuf,
    sessions: Mutex<BTreeMap<String, Arc<SessionEntry>>>,
    tenants: Mutex<Vec<String>>,
    metrics: ShardedMetrics,
    tasks: TaskCache,
    next_id: AtomicU64,
}

impl Store {
    /// Open (or create) a store over `state_dir`, replaying every
    /// session journal found there.
    pub fn open(state_dir: impl AsRef<Path>) -> Result<Store, Error> {
        let state_dir = state_dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&state_dir).map_err(Error::journal)?;
        let store = Store {
            state_dir: state_dir.clone(),
            sessions: Mutex::new(BTreeMap::new()),
            tenants: Mutex::new(Vec::new()),
            metrics: ShardedMetrics::new(MAX_TENANTS),
            tasks: TaskCache::new(),
            next_id: AtomicU64::new(0),
        };

        let mut paths: Vec<PathBuf> = std::fs::read_dir(&state_dir)
            .map_err(Error::journal)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            store.replay(&path)?;
        }
        Ok(store)
    }

    /// The state directory sessions journal into.
    pub fn state_dir(&self) -> &Path {
        &self.state_dir
    }

    /// Rebuild one session from its journal and register it.
    fn replay(&self, path: &Path) -> Result<(), Error> {
        let reader = JournalReader::load(path).map_err(Error::journal)?;
        let Some(create) = reader.records::<CreateRecord>().into_iter().next() else {
            // Empty or headerless journal: a crash before the create
            // record landed. Nothing to resume.
            return Ok(());
        };
        let config = create.config;
        let shard = self.tenant_shard(&config.tenant)?;
        let mut session = config.build_session(&self.tasks, shard)?;
        for record in reader.records::<LabelsRecord>() {
            session.step()?;
            session.submit(record.ticket, &record.labels).map_err(|e| {
                Error::invariant(format!(
                    "journal {} replays a chunk the pipeline rejects: {e}",
                    path.display()
                ))
            })?;
        }
        // Re-open truncates any torn tail so future appends are clean.
        let journal = Journal::append_to(path).map_err(Error::journal)?;

        if let Some(n) = create
            .id
            .strip_prefix('s')
            .and_then(|n| n.parse::<u64>().ok())
        {
            self.next_id.fetch_max(n + 1, Ordering::SeqCst);
        }
        let entry = Arc::new(SessionEntry {
            id: create.id.clone(),
            tenant: config.tenant.clone(),
            config,
            session: Mutex::new(session),
            journal,
        });
        self.sessions.lock().unwrap().insert(create.id, entry);
        Ok(())
    }

    /// The metrics shard for `tenant`, allocating one for first-seen
    /// names. A full tenant table is a 503 ([`Error::busy`]).
    pub fn tenant_shard(&self, tenant: &str) -> Result<Arc<MetricsRegistry>, Error> {
        let mut tenants = self.tenants.lock().unwrap();
        if let Some(i) = tenants.iter().position(|t| t == tenant) {
            return Ok(self.metrics.shard_handle(i));
        }
        if tenants.len() >= MAX_TENANTS {
            return Err(Error::busy(format!(
                "tenant table is full ({MAX_TENANTS} tenants)"
            )));
        }
        tenants.push(tenant.to_string());
        Ok(self.metrics.shard_handle(tenants.len() - 1))
    }

    /// Create a session from a request config: resolve, journal the
    /// `create` record, register. Returns the id and initial status.
    pub fn create_session(&self, config: SessionConfig) -> Result<StatusView, Error> {
        let config = config.normalized();
        let shard = self.tenant_shard(&config.tenant)?;
        let session = config.build_session(&self.tasks, Arc::clone(&shard))?;

        let id = format!("s{:06}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let journal =
            Journal::create(self.state_dir.join(format!("{id}.jsonl"))).map_err(Error::journal)?;
        journal
            .append(&CreateRecord {
                kind: "create".into(),
                id: id.clone(),
                config: config.clone(),
            })
            .map_err(Error::journal)?;
        shard.counter_add("serve.sessions.created", 1);

        let entry = Arc::new(SessionEntry {
            id: id.clone(),
            tenant: config.tenant.clone(),
            config,
            session: Mutex::new(session),
            journal,
        });
        let view = entry.status_view();
        self.sessions.lock().unwrap().insert(id, entry);
        Ok(view)
    }

    fn entry(&self, id: &str) -> Result<Arc<SessionEntry>, Error> {
        self.sessions
            .lock()
            .unwrap()
            .get(id)
            .cloned()
            .ok_or_else(|| Error::not_found("session", id))
    }

    /// Status of every session, in id order.
    pub fn list(&self) -> Vec<StatusView> {
        let entries: Vec<Arc<SessionEntry>> =
            self.sessions.lock().unwrap().values().cloned().collect();
        entries.iter().map(|e| e.status_view()).collect()
    }

    /// Status of one session.
    pub fn status(&self, id: &str) -> Result<StatusView, Error> {
        Ok(self.entry(id)?.status_view())
    }

    /// Get (or compute) the session's next label batch. Advances the
    /// pipeline when no ticket is outstanding; concurrent callers
    /// coalesce on the session mutex and share the one computed ticket.
    pub fn next_batch(&self, id: &str) -> Result<BatchView, Error> {
        let entry = self.entry(id)?;
        let mut session = entry.session.lock().unwrap();
        session.step()?;
        Ok(session.batch_view())
    }

    /// Submit a chunk of labels against a ticket: apply through the
    /// pipeline's first-write-wins semantics, then journal the accepted
    /// chunk.
    pub fn submit(
        &self,
        id: &str,
        ticket: Ticket,
        labels: Vec<(SampleId, LabelValue)>,
    ) -> Result<SubmitOutcome, Error> {
        let entry = self.entry(id)?;
        let mut session = entry.session.lock().unwrap();
        // Make sure the ticket the client is answering has actually been
        // issued on this side (a restart may not have re-stepped yet).
        session.step()?;
        let outcome = session.submit(ticket, &labels)?;
        if outcome.accepted > 0 {
            entry
                .journal
                .append(&LabelsRecord {
                    kind: "labels".into(),
                    ticket,
                    labels,
                })
                .map_err(Error::journal)?;
        }
        let shard = self.tenant_shard(&entry.tenant)?;
        shard.counter_add("serve.labels.accepted", outcome.accepted as u64);
        shard.counter_add("serve.labels.duplicate", outcome.duplicates as u64);
        Ok(outcome)
    }

    /// Drive a simulated-oracle session to completion, journaling every
    /// chunk as if a client had submitted it. External-oracle sessions
    /// are refused with a conflict: their labels must arrive over HTTP.
    pub fn run_to_completion(&self, id: &str) -> Result<StatusView, Error> {
        let entry = self.entry(id)?;
        if !entry.config.is_simulated() {
            return Err(Error::conflict(format!(
                "session {id} has an external oracle; labels must be submitted, not simulated"
            )));
        }
        let mut session = entry.session.lock().unwrap();
        loop {
            match session.step()? {
                SessionStep::Done => break,
                SessionStep::AwaitingLabels => {
                    let (ticket, labels) = session
                        .answer_from_hidden()
                        .ok_or_else(|| Error::invariant("awaiting ticket with no hidden labels"))?;
                    let outcome = session.submit(ticket, &labels)?;
                    if outcome.accepted > 0 {
                        entry
                            .journal
                            .append(&LabelsRecord {
                                kind: "labels".into(),
                                ticket,
                                labels,
                            })
                            .map_err(Error::journal)?;
                    }
                }
            }
        }
        let shard = self.tenant_shard(&entry.tenant)?;
        shard.counter_add("serve.sessions.completed", 1);
        drop(session);
        Ok(entry.status_view())
    }

    /// The session's snapshot JSON (the byte-identity witness used by
    /// the crash/resume tests).
    pub fn snapshot_json(&self, id: &str) -> Result<String, Error> {
        let entry = self.entry(id)?;
        let session = entry.session.lock().unwrap();
        Ok(session.snapshot_json())
    }

    /// Render every tenant's metrics shard as one text block.
    pub fn metrics_text(&self) -> String {
        let tenants = self.tenants.lock().unwrap().clone();
        let mut out = String::new();
        for (i, tenant) in tenants.iter().enumerate() {
            out.push_str(&format!("# tenant {tenant}\n"));
            for line in self.metrics.shard(i).render().lines() {
                out.push_str(&format!("{tenant}.{line}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(tenant: &str, oracle: &str) -> SessionConfig {
        SessionConfig {
            tenant: tenant.into(),
            dataset: "mr".into(),
            strategy: "entropy".into(),
            scale: 0.05,
            batch_size: 5,
            rounds: 2,
            init_labeled: 10,
            oracle: oracle.into(),
            ..SessionConfig::default()
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histal-serve-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_submit_and_reopen() {
        let dir = tmp_dir("reopen");
        let snapshot_before;
        let id;
        {
            let store = Store::open(&dir).unwrap();
            let view = store
                .create_session(tiny_config("acme", "external"))
                .unwrap();
            id = view.id.clone();
            let batch = store.next_batch(&id).unwrap();
            assert_eq!(batch.state, "awaiting");
            // Answer only part of the batch: the partial state must
            // survive the reopen.
            let labels: Vec<(SampleId, LabelValue)> = batch.indices[..2]
                .iter()
                .map(|&i| (i, LabelValue::Class(0)))
                .collect();
            let outcome = store.submit(&id, batch.ticket, labels).unwrap();
            assert_eq!(outcome.accepted, 2);
            assert!(!outcome.batch_complete);
            snapshot_before = store.snapshot_json(&id).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.snapshot_json(&id).unwrap(), snapshot_before);
        let status = store.status(&id).unwrap();
        assert_eq!(status.tenant, "acme");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulated_run_completes_and_external_run_refused() {
        let dir = tmp_dir("run");
        let store = Store::open(&dir).unwrap();
        let sim = store
            .create_session(tiny_config("t1", "simulated"))
            .unwrap();
        let done = store.run_to_completion(&sim.id).unwrap();
        assert!(done.status.done);
        let ext = store.create_session(tiny_config("t1", "external")).unwrap();
        let err = store.run_to_completion(&ext.id).unwrap_err();
        assert_eq!(err.kind.http_status(), 409);
        let metrics = store.metrics_text();
        assert!(
            metrics.contains("t1.serve.sessions.completed = 1"),
            "{metrics}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_session_is_not_found() {
        let dir = tmp_dir("404");
        let store = Store::open(&dir).unwrap();
        let err = store.next_batch("s999999").unwrap_err();
        assert_eq!(err.kind.http_status(), 404);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

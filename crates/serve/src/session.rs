//! Type-erased served sessions and the wire-level label encoding.
//!
//! The core [`Session`](histal_core::live::Session) is generic over the
//! model, so its label type differs per task family (class index for
//! text, tag sequence for NER). HTTP clients need one encoding for
//! both: [`LabelValue`] is that sum type — a bare integer or a sequence
//! of integers — and [`AnySession`] is the enum that erases the model
//! parameter and converts at the boundary. A label of the wrong shape
//! for the session's task is a 400 ([`ErrorKind::Spec`]), never a
//! panic.
//!
//! [`ErrorKind::Spec`]: histal_core::error::ErrorKind::Spec

use serde::{DeError, Deserialize, Serialize, Value};

use histal_core::error::Error;
use histal_core::live::{Session, SessionStatus, SessionStep, SubmitOutcome};
use histal_core::pipeline::{LabelResponse, Ticket};
use histal_core::pool::SampleId;
use histal_models::{CrfTagger, TextClassifier};

/// A label as it travels over the wire: a class index (text tasks) or a
/// per-token tag sequence (NER tasks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelValue {
    /// Class index, e.g. `1`.
    Class(usize),
    /// Tag sequence, e.g. `[0, 3, 3, 0]`.
    Tags(Vec<u16>),
}

impl Serialize for LabelValue {
    fn to_value(&self) -> Value {
        match self {
            LabelValue::Class(c) => Value::U64(*c as u64),
            LabelValue::Tags(tags) => {
                Value::Seq(tags.iter().map(|&t| Value::U64(t as u64)).collect())
            }
        }
    }
}

impl Deserialize for LabelValue {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        fn int(v: &Value) -> Option<u64> {
            match v {
                Value::U64(x) => Some(*x),
                Value::I64(x) if *x >= 0 => Some(*x as u64),
                _ => None,
            }
        }
        if let Some(c) = int(v) {
            return Ok(LabelValue::Class(c as usize));
        }
        if let Some(items) = v.as_seq() {
            let tags = items
                .iter()
                .map(|i| {
                    int(i)
                        .and_then(|x| u16::try_from(x).ok())
                        .ok_or_else(|| DeError::custom("tag must be an integer in u16 range"))
                })
                .collect::<Result<Vec<u16>, _>>()?;
            return Ok(LabelValue::Tags(tags));
        }
        Err(DeError::custom(
            "label must be a class index or a tag sequence",
        ))
    }
}

/// The outstanding work of a session, as served to clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchView {
    /// `"awaiting"` (labels wanted) or `"done"` (run complete).
    pub state: String,
    /// Ticket to echo back in submissions (0 when done).
    #[serde(default)]
    pub ticket: Ticket,
    /// Pool ids to label (empty when done).
    #[serde(default)]
    pub indices: Vec<SampleId>,
}

/// A served session with the model parameter erased: text-classification
/// sessions carry class labels, NER sessions tag sequences.
pub enum AnySession {
    /// Logistic text classifier over class labels.
    Text(Session<TextClassifier>),
    /// CRF tagger over tag-sequence labels.
    Ner(Session<CrfTagger>),
}

impl AnySession {
    /// Advance as far as labels allow; see
    /// [`Session::step`](histal_core::live::Session::step).
    pub fn step(&mut self) -> Result<SessionStep, Error> {
        match self {
            AnySession::Text(s) => s.step(),
            AnySession::Ner(s) => s.step(),
        }
    }

    /// The outstanding batch, shaped for the wire.
    pub fn batch_view(&self) -> BatchView {
        let pending = match self {
            AnySession::Text(s) => s.pending().cloned(),
            AnySession::Ner(s) => s.pending().cloned(),
        };
        match pending {
            Some(request) => BatchView {
                state: "awaiting".into(),
                ticket: request.ticket,
                indices: request.indices,
            },
            None => BatchView {
                state: "done".into(),
                ticket: 0,
                indices: Vec::new(),
            },
        }
    }

    /// Cheap serializable status.
    pub fn status(&self) -> SessionStatus {
        match self {
            AnySession::Text(s) => s.status(),
            AnySession::Ner(s) => s.status(),
        }
    }

    /// Submit wire labels, converting to the session's label type. A
    /// label of the wrong shape is a spec error (HTTP 400) before any
    /// state changes.
    pub fn submit(
        &mut self,
        ticket: Ticket,
        labels: &[(SampleId, LabelValue)],
    ) -> Result<SubmitOutcome, Error> {
        match self {
            AnySession::Text(s) => {
                let labels = labels
                    .iter()
                    .map(|(id, label)| match label {
                        LabelValue::Class(c) => Ok((*id, *c)),
                        LabelValue::Tags(_) => Err(Error::spec(format!(
                            "sample {id}: this session labels classes, got a tag sequence"
                        ))),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                s.submit(&LabelResponse { ticket, labels })
            }
            AnySession::Ner(s) => {
                let labels = labels
                    .iter()
                    .map(|(id, label)| match label {
                        LabelValue::Tags(tags) => Ok((*id, tags.clone())),
                        LabelValue::Class(_) => Err(Error::spec(format!(
                            "sample {id}: this session labels tag sequences, got a class"
                        ))),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                s.submit(&LabelResponse { ticket, labels })
            }
        }
    }

    /// Answer the pending ticket from the session's hidden gold labels
    /// (simulated-oracle sessions), shaped for [`Self::submit`].
    pub fn answer_from_hidden(&self) -> Option<(Ticket, Vec<(SampleId, LabelValue)>)> {
        match self {
            AnySession::Text(s) => s.answer_from_hidden().map(|r| {
                (
                    r.ticket,
                    r.labels
                        .into_iter()
                        .map(|(id, c)| (id, LabelValue::Class(c)))
                        .collect(),
                )
            }),
            AnySession::Ner(s) => s.answer_from_hidden().map(|r| {
                (
                    r.ticket,
                    r.labels
                        .into_iter()
                        .map(|(id, tags)| (id, LabelValue::Tags(tags)))
                        .collect(),
                )
            }),
        }
    }

    /// The session's durable state rendered to JSON — the byte-identity
    /// witness the crash/resume tests compare.
    pub fn snapshot_json(&self) -> String {
        match self {
            AnySession::Text(s) => {
                serde_json::to_string(&s.snapshot()).expect("snapshot serializes")
            }
            AnySession::Ner(s) => {
                serde_json::to_string(&s.snapshot()).expect("snapshot serializes")
            }
        }
    }
}

// The store shares sessions across server threads behind a mutex; this
// fails to compile if a pipeline stage loses its Send bound.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<AnySession>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_value_json_roundtrip() {
        for label in [LabelValue::Class(3), LabelValue::Tags(vec![0, 2, 2, 1])] {
            let json = serde_json::to_string(&label).unwrap();
            let back: LabelValue = serde_json::from_str(&json).unwrap();
            assert_eq!(back, label);
        }
        assert_eq!(serde_json::to_string(&LabelValue::Class(3)).unwrap(), "3");
        let seq: LabelValue = serde_json::from_str("[1,2]").unwrap();
        assert_eq!(seq, LabelValue::Tags(vec![1, 2]));
        assert!(serde_json::from_str::<LabelValue>("\"x\"").is_err());
        assert!(serde_json::from_str::<LabelValue>("[70000]").is_err());
    }

    #[test]
    fn batch_view_roundtrip() {
        let view = BatchView {
            state: "awaiting".into(),
            ticket: 4,
            indices: vec![9, 1, 5],
        };
        let json = serde_json::to_string(&view).unwrap();
        assert_eq!(serde_json::from_str::<BatchView>(&json).unwrap(), view);
    }
}

//! # histal-serve — multi-tenant active-learning session service
//!
//! An HTTP service hosting many concurrent interactive AL sessions over
//! the `histal_core::live` request/fulfill pipeline. Each session is
//! configured with the same dataset/strategy token grammar the bench
//! grids use, issues ticketed label requests, absorbs out-of-order /
//! duplicate / partial label submissions, and journals every accepted
//! chunk so a `kill -9` + restart resumes byte-identically.
//!
//! Everything is built on `std` plus the workspace's vendored crates:
//! the HTTP layer is a deliberately small HTTP/1.1 subset over
//! `std::net::TcpListener`, and concurrency is a fixed thread pool —
//! see [`http`] and [`executor`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use histal_serve::{Server, Store};
//!
//! let store = Arc::new(Store::open("/tmp/histal-serve").unwrap());
//! let server = Server::bind("127.0.0.1:8437", store, 8).unwrap();
//! server.run().unwrap();
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod executor;
pub mod http;
pub mod server;
pub mod session;
pub mod store;

pub use config::{SessionConfig, TaskCache};
pub use server::{Server, SubmitRequest};
pub use session::{AnySession, BatchView, LabelValue};
pub use store::{SessionEntry, StatusView, Store, MAX_TENANTS};

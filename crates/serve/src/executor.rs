//! A minimal fixed-size thread pool for connection handling.
//!
//! The workspace vendors its dependencies, so there is no tokio to lean
//! on; the service's concurrency needs are modest anyway — each
//! connection is one short request/response exchange, and the expensive
//! work (pool evaluation) already fans out through the shared rayon
//! pool inside the session pipeline. A handful of blocking workers
//! pulling jobs from one queue is the whole story.
//!
//! Shutdown is cooperative: dropping the pool closes the channel, each
//! worker drains what it holds and exits, and `Drop` joins them — so a
//! server that returns from its accept loop finishes in-flight requests
//! before the process exits (the "clean shutdown" the smoke test
//! scrapes for).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed worker pool: `execute` enqueues, workers run jobs FIFO.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` workers (at least one).
    pub fn new(size: usize) -> ThreadPool {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Enqueue a job. Returns `false` if the pool is already shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(sender) => sender.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while dequeuing, never while running a job.
        let job = match receiver.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: pool dropped
        };
        job();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the queue, then wait for the workers to drain it.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_before_drop_returns() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                assert!(pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_size_is_clamped() {
        let pool = ThreadPool::new(0);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }
}

//! `histal-serve` — run or smoke-test the AL session service.
//!
//! ```text
//! histal-serve serve --addr 127.0.0.1:8437 --state-dir ./serve-state --threads 8
//! histal-serve smoke --addr 127.0.0.1:8437
//! ```
//!
//! `serve` hosts the HTTP API until `POST /shutdown`. `smoke` exercises
//! a running server end to end — creates an external-oracle session,
//! fetches a ticket, submits labels, runs a simulated session to
//! completion, scrapes `/metrics` — and prints `serve smoke OK`.

use std::process::ExitCode;
use std::sync::Arc;

use histal_serve::http::http_request;
use histal_serve::{Server, Store};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  histal-serve serve [--addr A] [--state-dir D] [--threads N]\n  histal-serve smoke --addr A"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("smoke") => smoke(&args[1..]),
        _ => usage(),
    }
}

fn serve(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8437".into());
    let state_dir = flag_value(args, "--state-dir").unwrap_or_else(|| "serve-state".into());
    let threads: usize = match flag_value(args, "--threads").as_deref() {
        None => 8,
        Some(n) => match n.parse() {
            Ok(n) => n,
            Err(_) => return usage(),
        },
    };

    let store = match Store::open(&state_dir) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            eprintln!("histal-serve: open state dir {state_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n_sessions = store.list().len();
    let server = match Server::bind(&addr, store, threads) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("histal-serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "histal-serve listening on {} (state {state_dir}, {n_sessions} sessions resumed, {threads} threads)",
        server.addr()
    );
    match server.run() {
        Ok(()) => {
            println!("histal-serve: shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("histal-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One end-to-end pass against a running server. Panics (non-zero exit)
/// on any unexpected response so CI fails loudly.
fn smoke(args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, "--addr") else {
        return usage();
    };
    let request = |method: &str, path: &str, body: Option<&str>| {
        let (status, body) = http_request(&addr, method, path, body)
            .unwrap_or_else(|e| panic!("{method} {path}: {e}"));
        (status, body)
    };

    let (status, body) = request("GET", "/healthz", None);
    assert_eq!(status, 200, "healthz: {body}");

    // External-oracle session: fetch a ticket, answer it ourselves.
    let config = r#"{"tenant":"smoke","dataset":"mr","strategy":"WSHS{l=3}(entropy)",
        "scale":0.05,"batch_size":5,"rounds":2,"init_labeled":10,"oracle":"external"}"#;
    let (status, body) = request("POST", "/sessions", Some(config));
    assert_eq!(status, 200, "create: {body}");
    let id = body
        .split("\"id\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("create response carries an id")
        .to_string();

    let (status, batch) = request("GET", &format!("/sessions/{id}/batch"), None);
    assert_eq!(status, 200, "batch: {batch}");
    assert!(batch.contains("awaiting"), "batch: {batch}");
    let ticket = batch
        .split("\"ticket\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .expect("batch carries a ticket")
        .trim()
        .to_string();
    let indices: Vec<usize> = batch
        .split("\"indices\":[")
        .nth(1)
        .and_then(|s| s.split(']').next())
        .expect("batch carries indices")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    assert!(!indices.is_empty(), "batch has indices: {batch}");
    let labels: Vec<String> = indices.iter().map(|i| format!("[{i},0]")).collect();
    let submit = format!("{{\"ticket\":{ticket},\"labels\":[{}]}}", labels.join(","));
    let (status, body) = request("POST", &format!("/sessions/{id}/labels"), Some(&submit));
    assert_eq!(status, 200, "labels: {body}");
    assert!(body.contains("\"batch_complete\":true"), "labels: {body}");
    // Re-submitting the same chunk must be absorbed as duplicates.
    let (status, body) = request("POST", &format!("/sessions/{id}/labels"), Some(&submit));
    assert_eq!(status, 200, "duplicate labels: {body}");
    assert!(body.contains("\"accepted\":0"), "duplicate labels: {body}");

    // Simulated-oracle session driven to completion server-side.
    let config = r#"{"tenant":"smoke","dataset":"mr","strategy":"entropy",
        "scale":0.05,"batch_size":5,"rounds":2,"init_labeled":10,"oracle":"simulated"}"#;
    let (status, body) = request("POST", "/sessions", Some(config));
    assert_eq!(status, 200, "create simulated: {body}");
    let sim_id = body
        .split("\"id\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("create response carries an id")
        .to_string();
    let (status, body) = request("POST", &format!("/sessions/{sim_id}/run"), None);
    assert_eq!(status, 200, "run: {body}");
    assert!(body.contains("\"done\":true"), "run: {body}");

    let (status, metrics) = request("GET", "/metrics", None);
    assert_eq!(status, 200, "metrics: {metrics}");
    assert!(
        metrics.contains("smoke.al.rounds"),
        "per-tenant round counter missing from metrics:\n{metrics}"
    );
    assert!(
        metrics.contains("smoke.serve.sessions.completed = 1"),
        "completion counter missing from metrics:\n{metrics}"
    );

    println!("serve smoke OK");
    ExitCode::SUCCESS
}

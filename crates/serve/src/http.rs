//! Just enough HTTP/1.1 over `std::net` for a JSON API.
//!
//! One request per connection (`Connection: close`), bounded body size,
//! and a matching blocking client used by the smoke subcommand and the
//! integration tests. Anything beyond the subset the service needs —
//! chunked encoding, keep-alive, continuations — is rejected rather
//! than half-implemented.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Reject request bodies larger than this (16 MiB): a label submission
/// for even a million-row batch fits comfortably.
pub const MAX_BODY: usize = 16 << 20;

/// A parsed request: method, path (query string split off), body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased HTTP method.
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Raw body bytes (UTF-8 JSON for every route this service has).
    pub body: Vec<u8>,
}

impl Request {
    /// Body as UTF-8, or an error string for invalid encodings.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not UTF-8".to_string())
    }
}

/// Read one request from the stream. Returns `None` for an immediately
/// closed connection (e.g. a health-probe connect), an error string for
/// malformed requests (the caller turns it into a 400).
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(format!("read request line: {e}")),
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(format!("malformed request line: {line:?}"));
    };
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("read header: {e}")),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length: {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds {MAX_BODY}"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
    }
    Ok(Some(Request { method, path, body }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response and flush. Connection is always closed by
/// the caller afterwards.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot client: send `method path` with an optional JSON
/// body, return `(status, body)`. Used by the smoke subcommand, the CI
/// script and the integration tests — the service is exercised through
/// the same parser real clients would hit.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {status_line:?}")))?;
    let mut content_length = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8_lossy(&buf).into_owned();
        }
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap().unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            let body = req.body_str().unwrap().to_string();
            write_response(&mut stream, 200, "application/json", &body).unwrap();
        });
        let (status, body) = http_request(addr, "POST", "/echo?q=1", Some("{\"x\":1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"x\":1}");
        server.join().unwrap();
    }

    #[test]
    fn empty_connection_reads_as_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream).unwrap().is_none());
        });
        drop(TcpStream::connect(addr).unwrap());
        server.join().unwrap();
    }
}

//! Session configuration: the create-session request body.
//!
//! [`SessionConfig`] is deliberately shaped like one cell of a bench
//! [`ExperimentSpec`](histal_bench::spec): the same dataset and
//! strategy tokens, the same scale knob — resolved through the same
//! `histal_bench::registry` grammar, so anything a grid can run a
//! client can serve (with two deliberate exceptions: `LHS(...)` tokens
//! need an offline selector-training phase, and `?noise=` corrupts
//! gold labels, which only makes sense for simulated oracles — both
//! are rejected with a 400 rather than silently approximated).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use histal_bench::registry::{parse_dataset, parse_strategy, DatasetDef};
use histal_bench::tasks::{NerTask, Scale, TextTask};
use histal_core::error::Error;
use histal_core::strategy::BaseStrategy;
use histal_core::{ActiveLearner, PoolConfig};
use histal_obs::MetricsRegistry;

use crate::session::AnySession;

/// Default per-round batch size when the request leaves it zero.
pub const DEFAULT_BATCH: usize = 25;
/// Default round count when the request leaves it zero.
pub const DEFAULT_ROUNDS: usize = 20;
/// Default initial labeled-set size when the request leaves it zero.
pub const DEFAULT_INIT: usize = 25;

/// Who answers tickets: an external client over HTTP, or the session's
/// own hidden gold labels via `POST /sessions/{id}/run`.
pub const ORACLE_EXTERNAL: &str = "external";
/// See [`ORACLE_EXTERNAL`].
pub const ORACLE_SIMULATED: &str = "simulated";

/// The create-session request body. Every field has a serving default,
/// but `dataset` and `strategy` must be non-empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Tenant name the session's metrics are accounted under.
    #[serde(default)]
    pub tenant: String,
    /// Dataset token from the bench registry grammar, e.g. `"mr"` or
    /// `"conll2003-en"`.
    #[serde(default)]
    pub dataset: String,
    /// Strategy token from the bench registry grammar, e.g.
    /// `"WSHS{l=3}(entropy)"` or `"margin+mmr"`.
    #[serde(default)]
    pub strategy: String,
    /// Deterministic seed: split, shuffle and every RNG draw.
    #[serde(default)]
    pub seed: u64,
    /// Dataset scale factor in `(0, 1]`; `0` means full size.
    #[serde(default)]
    pub scale: f64,
    /// Samples per label ticket; `0` means [`DEFAULT_BATCH`].
    #[serde(default)]
    pub batch_size: usize,
    /// Selection rounds; `0` means [`DEFAULT_ROUNDS`].
    #[serde(default)]
    pub rounds: usize,
    /// Initial random labeled set; `0` means [`DEFAULT_INIT`].
    #[serde(default)]
    pub init_labeled: usize,
    /// `"external"` (default) or `"simulated"`; see [`ORACLE_EXTERNAL`].
    #[serde(default)]
    pub oracle: String,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            tenant: String::new(),
            dataset: String::new(),
            strategy: String::new(),
            seed: 0,
            scale: 0.0,
            batch_size: 0,
            rounds: 0,
            init_labeled: 0,
            oracle: String::new(),
        }
    }
}

impl SessionConfig {
    /// Fill serving defaults into zero/empty fields. The normalized
    /// form is what gets journaled, so a replayed session resolves the
    /// same config even if defaults change between releases.
    pub fn normalized(mut self) -> SessionConfig {
        if self.tenant.is_empty() {
            self.tenant = "default".into();
        }
        if self.oracle.is_empty() {
            self.oracle = ORACLE_EXTERNAL.into();
        }
        if self.scale == 0.0 {
            self.scale = 1.0;
        }
        if self.batch_size == 0 {
            self.batch_size = DEFAULT_BATCH;
        }
        if self.rounds == 0 {
            self.rounds = DEFAULT_ROUNDS;
        }
        if self.init_labeled == 0 {
            self.init_labeled = DEFAULT_INIT;
        }
        self
    }

    /// `true` when `POST /sessions/{id}/run` may answer this session's
    /// tickets from hidden gold labels.
    pub fn is_simulated(&self) -> bool {
        self.oracle == ORACLE_SIMULATED
    }

    /// The core loop configuration this request resolves to.
    pub fn pool_config(&self) -> PoolConfig {
        PoolConfig {
            batch_size: self.batch_size,
            rounds: self.rounds,
            init_labeled: self.init_labeled,
            ..PoolConfig::default()
        }
    }

    /// Validate fields that don't need the registry.
    fn validate(&self) -> Result<(), Error> {
        if self.dataset.is_empty() {
            return Err(Error::spec("session config needs a dataset token"));
        }
        if self.strategy.is_empty() {
            return Err(Error::spec("session config needs a strategy token"));
        }
        if !(self.scale > 0.0 && self.scale <= 1.0) {
            return Err(Error::spec(format!(
                "scale must be in (0, 1], got {}",
                self.scale
            )));
        }
        match self.oracle.as_str() {
            ORACLE_EXTERNAL | ORACLE_SIMULATED => Ok(()),
            other => Err(Error::spec(format!(
                "oracle must be {ORACLE_EXTERNAL:?} or {ORACLE_SIMULATED:?}, got {other:?}"
            ))),
        }
    }

    /// Resolve the config through the bench registry and build the
    /// live session. `metrics` is the tenant's shard.
    pub fn build_session(
        &self,
        tasks: &TaskCache,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<AnySession, Error> {
        self.validate()?;
        let resolved = parse_strategy(&self.strategy)?;
        if resolved.lhs.is_some() {
            return Err(Error::spec(
                "LHS(...) strategies need an offline selector-training phase; \
                 train with `histal-bench` and serve the base strategy instead",
            ));
        }
        let strategy = resolved.strategy;
        let wants_representations =
            strategy.density.is_some() || strategy.mmr.is_some() || strategy.kcenter;
        let config = self.pool_config();

        match parse_dataset(&self.dataset)? {
            DatasetDef::Text { spec, noise } => {
                if noise.is_some() {
                    return Err(Error::spec(
                        "?noise= corrupts hidden gold labels and is bench-only; \
                         submit noisy labels through the oracle API instead",
                    ));
                }
                let committee = if strategy.base == BaseStrategy::QbcKl {
                    4
                } else {
                    0
                };
                let task = tasks.text(&spec, self.scale, self.seed);
                let mut builder = ActiveLearner::builder(task.model(committee))
                    .pool(task.pool_docs.clone(), task.pool_labels.clone())
                    .test(task.test_docs.clone(), task.test_labels.clone())
                    .strategy(strategy)
                    .config(config)
                    .seed(self.seed)
                    .metrics(metrics);
                if wants_representations {
                    let reps = task.pool_docs.iter().map(|d| d.features.clone()).collect();
                    builder = builder.representations(reps);
                }
                Ok(AnySession::Text(builder.build_session()))
            }
            DatasetDef::Ner { spec } => {
                if wants_representations {
                    return Err(Error::spec(
                        "density/MMR/k-center need sparse representations, \
                         which NER tasks don't carry",
                    ));
                }
                let task = tasks.ner(&spec, self.scale, self.seed);
                let builder = ActiveLearner::builder(task.model())
                    .pool(task.pool.clone(), task.pool_tags.clone())
                    .test(task.test.clone(), task.test_tags.clone())
                    .strategy(strategy)
                    .config(config)
                    .seed(self.seed)
                    .metrics(metrics);
                Ok(AnySession::Ner(builder.build_session()))
            }
        }
    }
}

/// Cache of featurized tasks keyed by `(spec, scale, seed)`: a thousand
/// sessions over the same corpus share one pool build instead of
/// re-generating and re-featurizing it a thousand times. (Sessions
/// still clone the documents out of the shared task — the pool itself
/// is mutated as labels arrive.)
#[derive(Default)]
pub struct TaskCache {
    text: Mutex<HashMap<String, Arc<TextTask>>>,
    ner: Mutex<HashMap<String, Arc<NerTask>>>,
}

impl TaskCache {
    /// Fresh, empty cache.
    pub fn new() -> TaskCache {
        TaskCache::default()
    }

    fn scale(factor: f64) -> Scale {
        Scale { factor, repeats: 1 }
    }

    /// The shared text task for `(spec, scale, seed)`.
    pub fn text(&self, spec: &histal_data::TextSpec, scale: f64, seed: u64) -> Arc<TextTask> {
        let key = format!("{spec:?}|{scale}|{seed}");
        let mut cache = self.text.lock().unwrap();
        Arc::clone(
            cache
                .entry(key)
                .or_insert_with(|| Arc::new(TextTask::build(spec, &Self::scale(scale), seed))),
        )
    }

    /// The shared NER task for `(spec, scale, seed)`. (NER corpora are
    /// generated from the spec's own seed; `seed` stays in the key so
    /// the cache contract matches [`TaskCache::text`].)
    pub fn ner(&self, spec: &histal_data::NerSpec, scale: f64, seed: u64) -> Arc<NerTask> {
        let key = format!("{spec:?}|{scale}|{seed}");
        let mut cache = self.ner.lock().unwrap();
        Arc::clone(
            cache
                .entry(key)
                .or_insert_with(|| Arc::new(NerTask::build(spec, &Self::scale(scale)))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text_config() -> SessionConfig {
        SessionConfig {
            dataset: "mr".into(),
            strategy: "entropy".into(),
            scale: 0.05,
            batch_size: 5,
            rounds: 2,
            init_labeled: 10,
            oracle: ORACLE_SIMULATED.into(),
            ..SessionConfig::default()
        }
        .normalized()
    }

    #[test]
    fn normalized_fills_defaults() {
        let c = SessionConfig {
            dataset: "mr".into(),
            strategy: "entropy".into(),
            ..SessionConfig::default()
        }
        .normalized();
        assert_eq!(c.tenant, "default");
        assert_eq!(c.oracle, ORACLE_EXTERNAL);
        assert_eq!(c.batch_size, DEFAULT_BATCH);
        assert_eq!(c.rounds, DEFAULT_ROUNDS);
        assert_eq!(c.init_labeled, DEFAULT_INIT);
        assert_eq!(c.scale, 1.0);
    }

    #[test]
    fn builds_a_text_session() {
        let tasks = TaskCache::new();
        let session = text_config()
            .build_session(&tasks, Arc::new(MetricsRegistry::new()))
            .unwrap();
        assert!(matches!(session, AnySession::Text(_)));
    }

    #[test]
    fn rejects_lhs_noise_and_bad_oracle() {
        let tasks = TaskCache::new();
        let metrics = || Arc::new(MetricsRegistry::new());
        let mut c = text_config();
        c.strategy = "LHS(entropy)".into();
        assert!(c.build_session(&tasks, metrics()).is_err());
        let mut c = text_config();
        c.dataset = "mr?noise=0.1".into();
        assert!(c.build_session(&tasks, metrics()).is_err());
        let mut c = text_config();
        c.oracle = "psychic".into();
        assert!(c.build_session(&tasks, metrics()).is_err());
    }

    #[test]
    fn task_cache_shares_builds() {
        let tasks = TaskCache::new();
        let spec = histal_data::TextSpec::by_name("mr").unwrap();
        let a = tasks.text(&spec, 0.05, 7);
        let b = tasks.text(&spec, 0.05, 7);
        assert!(Arc::ptr_eq(&a, &b));
        let c = tasks.text(&spec, 0.05, 8);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}

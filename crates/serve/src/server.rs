//! The HTTP server: routing, JSON encoding, error mapping.
//!
//! Routes (all bodies JSON):
//!
//! | method & path                 | action                                   |
//! |-------------------------------|------------------------------------------|
//! | `GET /healthz`                | liveness probe                           |
//! | `GET /metrics`                | per-tenant metrics text                  |
//! | `POST /sessions`              | create a session ([`SessionConfig`])     |
//! | `GET /sessions`               | list session statuses                    |
//! | `GET /sessions/{id}`          | one session's status                     |
//! | `GET /sessions/{id}/batch`    | issue / fetch the pending label ticket   |
//! | `POST /sessions/{id}/labels`  | submit labels ([`SubmitRequest`])        |
//! | `POST /sessions/{id}/run`     | drive a simulated session to completion  |
//! | `GET /sessions/{id}/snapshot` | durable-state snapshot JSON              |
//! | `POST /shutdown`              | stop accepting, drain, exit              |
//!
//! Every pipeline error carries an [`ErrorKind`], and
//! [`ErrorKind::http_status`] is the single mapping from error space to
//! status space — handlers never pick status codes ad hoc.
//!
//! [`ErrorKind`]: histal_core::error::ErrorKind
//! [`ErrorKind::http_status`]: histal_core::error::ErrorKind::http_status

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize, Value};

use histal_core::error::Error;
use histal_core::pipeline::Ticket;
use histal_core::pool::SampleId;

use crate::config::SessionConfig;
use crate::executor::ThreadPool;
use crate::http::{read_request, write_response, Request};
use crate::session::LabelValue;
use crate::store::Store;

/// The submit-labels request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Ticket being answered (from the batch response).
    #[serde(default)]
    pub ticket: Ticket,
    /// `[sample_id, label]` pairs; any subset of the ticket, any order.
    #[serde(default)]
    pub labels: Vec<(SampleId, LabelValue)>,
}

/// A JSON `{"error": ...}` body.
fn error_body(message: &str) -> String {
    serde_json::to_string(&Value::Map(vec![(
        "error".to_string(),
        Value::Str(message.to_string()),
    )]))
    .expect("error body serializes")
}

/// A handler's outcome: status + JSON (or plain-text) body.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Reply {
    fn json(body: String) -> Reply {
        Reply {
            status: 200,
            content_type: "application/json",
            body,
        }
    }

    fn text(body: String) -> Reply {
        Reply {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    fn bad_request(message: &str) -> Reply {
        Reply {
            status: 400,
            content_type: "application/json",
            body: error_body(message),
        }
    }

    fn from_error(e: &Error) -> Reply {
        Reply {
            status: e.kind.http_status(),
            content_type: "application/json",
            body: error_body(&e.to_string()),
        }
    }
}

fn ok_or_reply<T: Serialize>(result: Result<T, Error>) -> Reply {
    match result {
        Ok(v) => Reply::json(serde_json::to_string(&v).expect("response serializes")),
        Err(e) => Reply::from_error(&e),
    }
}

fn parse_body<T: Deserialize>(req: &Request) -> Result<T, Reply> {
    let body = req.body_str().map_err(|e| Reply::bad_request(&e))?;
    let body = if body.trim().is_empty() { "{}" } else { body };
    serde_json::from_str(body).map_err(|e| Reply::bad_request(&format!("bad request body: {e}")))
}

fn route(store: &Store, shutdown: &AtomicBool, req: &Request) -> Reply {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Reply::text("ok\n".into()),
        ("GET", ["metrics"]) => Reply::text(store.metrics_text()),
        ("POST", ["shutdown"]) => {
            shutdown.store(true, Ordering::SeqCst);
            Reply::json("{\"shutting_down\":true}".into())
        }
        ("POST", ["sessions"]) => match parse_body::<SessionConfig>(req) {
            Ok(config) => ok_or_reply(store.create_session(config)),
            Err(reply) => reply,
        },
        ("GET", ["sessions"]) => ok_or_reply(Ok(store.list())),
        ("GET", ["sessions", id]) => ok_or_reply(store.status(id)),
        ("GET", ["sessions", id, "batch"]) => ok_or_reply(store.next_batch(id)),
        ("GET", ["sessions", id, "snapshot"]) => match store.snapshot_json(id) {
            Ok(json) => Reply::json(json),
            Err(e) => Reply::from_error(&e),
        },
        ("POST", ["sessions", id, "labels"]) => match parse_body::<SubmitRequest>(req) {
            Ok(submit) => ok_or_reply(store.submit(id, submit.ticket, submit.labels)),
            Err(reply) => reply,
        },
        ("POST", ["sessions", id, "run"]) => ok_or_reply(store.run_to_completion(id)),
        _ => Reply {
            status: 404,
            content_type: "application/json",
            body: error_body(&format!("no route for {} {}", req.method, req.path)),
        },
    }
}

fn handle_connection(store: &Store, shutdown: &AtomicBool, mut stream: TcpStream) {
    let reply = match read_request(&mut stream) {
        Ok(Some(req)) => route(store, shutdown, &req),
        Ok(None) => return, // probe connect, nothing to answer
        Err(message) => Reply::bad_request(&message),
    };
    let _ = write_response(&mut stream, reply.status, reply.content_type, &reply.body);
}

/// The accept loop plus its worker pool.
pub struct Server {
    store: Arc<Store>,
    listener: TcpListener,
    addr: SocketAddr,
    threads: usize,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) over `store`.
    pub fn bind(addr: &str, store: Arc<Store>, threads: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            store,
            listener,
            addr,
            threads,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A flag that stops the accept loop when set (the `/shutdown`
    /// route sets the same flag).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until shutdown, then drain in-flight requests and return.
    pub fn run(self) -> std::io::Result<()> {
        let pool = ThreadPool::new(self.threads);
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let store = Arc::clone(&self.store);
            let shutdown = Arc::clone(&self.shutdown);
            let addr = self.addr;
            pool.execute(move || {
                handle_connection(&store, &shutdown, stream);
                if shutdown.load(Ordering::SeqCst) {
                    // Wake the accept loop so it notices the flag.
                    let _ = TcpStream::connect(addr);
                }
            });
        }
        // ThreadPool::drop joins the workers, finishing in-flight work.
        drop(pool);
        Ok(())
    }

    /// Run on a background thread; returns the bound address and the
    /// join handle. Used by the tests and the smoke subcommand.
    pub fn spawn(self) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
        let addr = self.addr;
        let handle = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || self.run())
            .expect("spawn accept thread");
        (addr, handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_request;

    #[test]
    fn health_metrics_and_unknown_route() {
        let dir = std::env::temp_dir().join(format!("histal-serve-srv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let server = Server::bind("127.0.0.1:0", store, 2).unwrap();
        let (addr, handle) = server.spawn();

        let (status, body) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _) = http_request(addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let (status, body) = http_request(addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("error"));
        let (status, body) = http_request(addr, "POST", "/sessions", Some("{not json")).unwrap();
        assert_eq!(status, 400, "{body}");

        let (status, _) = http_request(addr, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

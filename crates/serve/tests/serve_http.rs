//! End-to-end service tests: the full HTTP surface, crash/resume
//! byte-identity under arbitrary journal truncation, and the
//! many-concurrent-sessions load shape the service exists for.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use histal_serve::http::http_request;
use histal_serve::{Server, SessionConfig, Store};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("histal-serve-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_config(tenant: &str, oracle: &str, seed: u64) -> SessionConfig {
    SessionConfig {
        tenant: tenant.into(),
        dataset: "mr".into(),
        strategy: "WSHS{l=3}(entropy)".into(),
        seed,
        scale: 0.05,
        batch_size: 5,
        rounds: 2,
        init_labeled: 10,
        oracle: oracle.into(),
    }
}

fn spawn_server(
    dir: &Path,
    threads: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let store = Arc::new(Store::open(dir).unwrap());
    Server::bind("127.0.0.1:0", store, threads).unwrap().spawn()
}

fn shutdown(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let (status, _) = http_request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    handle.join().unwrap().unwrap();
}

fn json_str(body: &str, key: &str) -> String {
    body.split(&format!("\"{key}\":\""))
        .nth(1)
        .and_then(|s| s.split('"').next())
        .unwrap_or_else(|| panic!("no string field {key} in {body}"))
        .to_string()
}

fn json_u64(body: &str, key: &str) -> u64 {
    body.split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("no numeric field {key} in {body}"))
}

fn json_indices(body: &str) -> Vec<usize> {
    body.split("\"indices\":[")
        .nth(1)
        .and_then(|s| s.split(']').next())
        .unwrap_or_else(|| panic!("no indices in {body}"))
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect()
}

/// The whole external-oracle lifecycle over real HTTP: create, ticket,
/// out-of-order partial submissions with duplicate redelivery, error
/// statuses, status/snapshot endpoints.
#[test]
fn external_oracle_lifecycle_over_http() {
    let dir = tmp_dir("lifecycle");
    let (addr, handle) = spawn_server(&dir, 4);

    let config = serde_json::to_string(&tiny_config("acme", "external", 7)).unwrap();
    let (status, body) = http_request(addr, "POST", "/sessions", Some(&config)).unwrap();
    assert_eq!(status, 200, "{body}");
    let id = json_str(&body, "id");

    // Unknown session and unknown route are 404s.
    let (status, _) = http_request(addr, "GET", "/sessions/s999999/batch", None).unwrap();
    assert_eq!(status, 404);

    let (status, batch) =
        http_request(addr, "GET", &format!("/sessions/{id}/batch"), None).unwrap();
    assert_eq!(status, 200, "{batch}");
    let ticket = json_u64(&batch, "ticket");
    let indices = json_indices(&batch);
    assert_eq!(indices.len(), 10, "initial ticket covers init_labeled");

    // A second batch request returns the same ticket (coalescing).
    let (_, batch2) = http_request(addr, "GET", &format!("/sessions/{id}/batch"), None).unwrap();
    assert_eq!(batch, batch2);

    // Submit in reverse order, split into two chunks, with the first
    // chunk redelivered in between.
    let chunk = |ids: &[usize]| {
        let labels: Vec<String> = ids.iter().map(|i| format!("[{i},1]")).collect();
        format!("{{\"ticket\":{ticket},\"labels\":[{}]}}", labels.join(","))
    };
    let mut reversed = indices.clone();
    reversed.reverse();
    let first = chunk(&reversed[..4]);
    let labels_path = format!("/sessions/{id}/labels");
    let (status, body) = http_request(addr, "POST", &labels_path, Some(&first)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_u64(&body, "accepted"), 4);
    assert_eq!(json_u64(&body, "remaining"), 6);
    // Redelivery of the same chunk: all duplicates, no error.
    let (status, body) = http_request(addr, "POST", &labels_path, Some(&first)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_u64(&body, "accepted"), 0);
    assert_eq!(json_u64(&body, "duplicates"), 4);
    // Conflicting label for an already-filled slot is a 409.
    let conflicting = format!("{{\"ticket\":{ticket},\"labels\":[[{},0]]}}", reversed[0]);
    let (status, body) = http_request(addr, "POST", &labels_path, Some(&conflicting)).unwrap();
    assert_eq!(status, 409, "{body}");
    // Wrong-shaped label (tags for a text session) is a 400.
    let wrong_shape = format!(
        "{{\"ticket\":{ticket},\"labels\":[[{},[1,2]]]}}",
        reversed[5]
    );
    let (status, body) = http_request(addr, "POST", &labels_path, Some(&wrong_shape)).unwrap();
    assert_eq!(status, 400, "{body}");
    // Unissued ticket is a 404.
    let future = format!(
        "{{\"ticket\":{},\"labels\":[[{},1]]}}",
        ticket + 50,
        reversed[5]
    );
    let (status, body) = http_request(addr, "POST", &labels_path, Some(&future)).unwrap();
    assert_eq!(status, 404, "{body}");

    let rest = chunk(&reversed[4..]);
    let (status, body) = http_request(addr, "POST", &labels_path, Some(&rest)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"batch_complete\":true"), "{body}");

    // The next batch is the first selection round's ticket.
    let (status, batch) =
        http_request(addr, "GET", &format!("/sessions/{id}/batch"), None).unwrap();
    assert_eq!(status, 200, "{batch}");
    assert_eq!(json_u64(&batch, "ticket"), ticket + 1);
    assert_eq!(
        json_indices(&batch).len(),
        5,
        "round ticket covers batch_size"
    );

    let (status, body) = http_request(addr, "GET", &format!("/sessions/{id}"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_str(&body, "tenant"), "acme");
    let (status, snapshot) =
        http_request(addr, "GET", &format!("/sessions/{id}/snapshot"), None).unwrap();
    assert_eq!(status, 200);
    assert!(snapshot.contains("\"tickets\""), "{snapshot}");

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill -9 at an arbitrary journal offset, restart, and the session
/// resumes byte-identically: the reopened snapshot equals the snapshot
/// the live session had after exactly the chunks that survived in the
/// (possibly torn) journal prefix.
#[test]
fn crash_at_arbitrary_journal_offset_resumes_byte_identically() {
    let dir = tmp_dir("crash");
    let id;
    // `snapshots[k]` is the live session's snapshot after k accepted
    // chunks.
    let mut snapshots = Vec::new();
    {
        let store = Store::open(&dir).unwrap();
        let view = store
            .create_session(tiny_config("acme", "external", 11))
            .unwrap();
        id = view.id.clone();
        snapshots.push(store.snapshot_json(&id).unwrap());
        // Drive a few rounds one single-label chunk at a time so the
        // journal has many records and truncation can land mid-batch.
        loop {
            let batch = store.next_batch(&id).unwrap();
            if batch.state == "done" || snapshots.len() > 20 {
                break;
            }
            for &i in &batch.indices {
                store
                    .submit(
                        &id,
                        batch.ticket,
                        vec![(i, histal_serve::LabelValue::Class(0))],
                    )
                    .unwrap();
                snapshots.push(store.snapshot_json(&id).unwrap());
            }
        }
    }

    let journal_path = dir.join(format!("{id}.jsonl"));
    let full = std::fs::read(&journal_path).unwrap();
    let create_len = full
        .iter()
        .position(|&b| b == b'\n')
        .expect("journal has a create line")
        + 1;
    assert!(full.len() > create_len + 100, "journal long enough to cut");

    // Cut points: mid-journal quarters plus a torn final line.
    for cut in [
        create_len + (full.len() - create_len) / 4,
        create_len + (full.len() - create_len) / 2,
        create_len + 3 * (full.len() - create_len) / 4,
        full.len() - 7,
    ] {
        let case_dir = tmp_dir(&format!("crash-cut-{cut}"));
        std::fs::create_dir_all(&case_dir).unwrap();
        std::fs::write(case_dir.join(format!("{id}.jsonl")), &full[..cut]).unwrap();
        // Chunks that survive = complete lines after the create record.
        let survived = full[create_len..cut]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();

        let store = Store::open(&case_dir).unwrap();
        assert_eq!(
            store.snapshot_json(&id).unwrap(),
            snapshots[survived],
            "cut at byte {cut} ({survived} chunks survived)"
        );
        // The reopened store keeps serving: the journal tail was
        // repaired, so the next chunk appends cleanly.
        let batch = store.next_batch(&id).unwrap();
        if batch.state == "awaiting" {
            store
                .submit(
                    &id,
                    batch.ticket,
                    vec![(batch.indices[0], histal_serve::LabelValue::Class(0))],
                )
                .unwrap();
        }
        let _ = std::fs::remove_dir_all(&case_dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The load shape the service is for: many concurrent simulated-oracle
/// sessions across tenants, driven over HTTP in parallel, all landing
/// complete with per-tenant counters visible at /metrics.
///
/// The session count scales with `HISTAL_SERVE_SESSIONS` (default 200
/// to keep the suite quick; the acceptance bar of 1000 is exercised by
/// `ci.sh` setting the variable).
#[test]
fn concurrent_simulated_sessions_complete_with_tenant_metrics() {
    let n_sessions: usize = std::env::var("HISTAL_SERVE_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let n_tenants = 8;
    let dir = tmp_dir("load");
    let (addr, handle) = spawn_server(&dir, 8);

    // Same dataset/scale/seed for every session: the featurized task is
    // built once and shared through the task cache; sessions differ by
    // tenant only (identical pipelines, which is fine for a load test).
    let mut ids = Vec::with_capacity(n_sessions);
    for i in 0..n_sessions {
        let config =
            serde_json::to_string(&tiny_config(&format!("t{}", i % n_tenants), "simulated", 3))
                .unwrap();
        let (status, body) = http_request(addr, "POST", "/sessions", Some(&config)).unwrap();
        assert_eq!(status, 200, "{body}");
        ids.push(json_str(&body, "id"));
    }

    // Fire the runs from a bounded set of client threads.
    let ids = Arc::new(std::sync::Mutex::new(ids));
    let workers: Vec<_> = (0..16)
        .map(|_| {
            let ids = Arc::clone(&ids);
            std::thread::spawn(move || {
                let mut done = 0usize;
                loop {
                    let Some(id) = ids.lock().unwrap().pop() else {
                        return done;
                    };
                    let (status, body) =
                        http_request(addr, "POST", &format!("/sessions/{id}/run"), None).unwrap();
                    assert_eq!(status, 200, "{body}");
                    assert!(body.contains("\"done\":true"), "{body}");
                    done += 1;
                }
            })
        })
        .collect();
    let completed: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(completed, n_sessions);

    let (status, metrics) = http_request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let mut total = 0u64;
    for t in 0..n_tenants {
        let needle = format!("t{t}.serve.sessions.completed = ");
        let count: u64 = metrics
            .lines()
            .find_map(|l| l.strip_prefix(&needle))
            .unwrap_or_else(|| panic!("tenant t{t} missing from metrics:\n{metrics}"))
            .trim()
            .parse()
            .unwrap();
        assert!(count > 0, "tenant t{t} completed nothing");
        total += count;
    }
    assert_eq!(total, n_sessions as u64, "completions across tenants");

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sessions survive a clean restart too: a mid-flight external session
/// keeps its exact state across close + reopen, through HTTP.
#[test]
fn restart_preserves_sessions_over_http() {
    let dir = tmp_dir("restart");
    let snapshot_before;
    let id;
    {
        let (addr, handle) = spawn_server(&dir, 2);
        let config = serde_json::to_string(&tiny_config("acme", "external", 5)).unwrap();
        let (_, body) = http_request(addr, "POST", "/sessions", Some(&config)).unwrap();
        id = json_str(&body, "id");
        let (_, batch) = http_request(addr, "GET", &format!("/sessions/{id}/batch"), None).unwrap();
        let ticket = json_u64(&batch, "ticket");
        let indices = json_indices(&batch);
        let labels: Vec<String> = indices[..3].iter().map(|i| format!("[{i},0]")).collect();
        let submit = format!("{{\"ticket\":{ticket},\"labels\":[{}]}}", labels.join(","));
        let (status, body) = http_request(
            addr,
            "POST",
            &format!("/sessions/{id}/labels"),
            Some(&submit),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let (_, snap) =
            http_request(addr, "GET", &format!("/sessions/{id}/snapshot"), None).unwrap();
        snapshot_before = snap;
        shutdown(addr, handle);
    }
    let (addr, handle) = spawn_server(&dir, 2);
    let (status, snap) =
        http_request(addr, "GET", &format!("/sessions/{id}/snapshot"), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(snap, snapshot_before);
    // And the listing still shows it.
    let (_, list) = http_request(addr, "GET", "/sessions", None).unwrap();
    assert!(list.contains(&id), "{list}");
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

//! N-gram expansion for bag-of-n-grams features.

/// Produce all contiguous word n-grams of order `1..=max_n`, joined with
/// `"_"`. Unigrams are the tokens themselves.
///
/// ```
/// use histal_text::ngrams;
/// let toks = ["a", "b", "c"].map(String::from);
/// assert_eq!(
///     ngrams(&toks, 2),
///     vec!["a", "b", "c", "a_b", "b_c"].into_iter().map(String::from).collect::<Vec<_>>()
/// );
/// ```
pub fn ngrams(tokens: &[String], max_n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(tokens.len() * max_n.max(1));
    for n in 1..=max_n.max(1) {
        if n > tokens.len() {
            break;
        }
        for window in tokens.windows(n) {
            out.push(window.join("_"));
        }
    }
    out
}

/// Character n-grams of a single token, padded with `^`/`$` boundary marks.
/// Used as sub-word features for the CRF emission templates (the paper's
/// BiLSTM-CNNs-CRF uses character CNNs for the same purpose).
pub fn char_ngrams(token: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let padded: Vec<char> = std::iter::once('^')
        .chain(token.chars())
        .chain(std::iter::once('$'))
        .collect();
    if padded.len() < n {
        return vec![padded.iter().collect()];
    }
    padded
        .windows(n)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unigrams_only() {
        assert_eq!(ngrams(&toks(&["x", "y"]), 1), toks(&["x", "y"]));
    }

    #[test]
    fn bigrams_appended_after_unigrams() {
        assert_eq!(
            ngrams(&toks(&["a", "b", "c"]), 2),
            toks(&["a", "b", "c", "a_b", "b_c"])
        );
    }

    #[test]
    fn order_capped_by_length() {
        assert_eq!(ngrams(&toks(&["a"]), 3), toks(&["a"]));
    }

    #[test]
    fn max_n_zero_treated_as_one() {
        assert_eq!(ngrams(&toks(&["a", "b"]), 0), toks(&["a", "b"]));
    }

    #[test]
    fn empty_tokens() {
        assert!(ngrams(&[], 2).is_empty());
    }

    #[test]
    fn char_trigrams_with_boundaries() {
        assert_eq!(char_ngrams("ab", 3), vec!["^ab", "ab$"]);
    }

    #[test]
    fn char_ngrams_short_token_single_window() {
        assert_eq!(char_ngrams("", 3), vec!["^$"]);
    }

    #[test]
    fn char_ngrams_zero_n() {
        assert!(char_ngrams("abc", 0).is_empty());
    }
}

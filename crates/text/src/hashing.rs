//! The signed feature-hashing trick.
//!
//! The paper's text models embed an open vocabulary (Table 3 reports 9k–21k
//! types per dataset) into a fixed-width parameter matrix. We reproduce that
//! with feature hashing: token → FNV-1a 64-bit hash → bucket index, with a
//! second bit of the hash providing a ±1 sign that keeps the inner products
//! unbiased (Weinberger et al., 2009).

use crate::sparse::SparseVec;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a byte string. Deterministic across runs and platforms,
/// which keeps experiments reproducible (unlike `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes string features into a fixed number of signed buckets.
///
/// ```
/// use histal_text::FeatureHasher;
/// let hasher = FeatureHasher::new(1 << 16);
/// let v = hasher.hash_bag_normalized(["great", "movie", "great"]);
/// assert!((v.norm() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct FeatureHasher {
    n_buckets: u32,
    /// Mixed into the hash so different feature *namespaces* (e.g. unigram
    /// vs. bigram vs. CRF emission template) do not collide systematically.
    namespace_salt: u64,
}

impl FeatureHasher {
    /// Create a hasher with `n_buckets` output dimensions.
    ///
    /// # Panics
    /// Panics if `n_buckets == 0`.
    pub fn new(n_buckets: u32) -> Self {
        Self::with_namespace(n_buckets, 0)
    }

    /// Create a hasher whose outputs are decorrelated from hashers with a
    /// different `namespace` value.
    pub fn with_namespace(n_buckets: u32, namespace: u64) -> Self {
        assert!(n_buckets > 0, "feature hasher needs at least one bucket");
        Self {
            n_buckets,
            namespace_salt: namespace.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Output dimensionality.
    pub fn n_buckets(&self) -> u32 {
        self.n_buckets
    }

    /// Bucket index and sign for one feature string.
    pub fn bucket(&self, feature: &str) -> (u32, f32) {
        let h = fnv1a(feature.as_bytes()) ^ self.namespace_salt;
        let idx = (h % self.n_buckets as u64) as u32;
        // Use a high bit (independent of the low bits used for the index)
        // for the sign.
        let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
        (idx, sign)
    }

    /// Hash a bag of features into a sparse vector, summing signed
    /// collisions. `value` is the weight each feature contributes (1.0 for
    /// plain counts).
    pub fn hash_bag<'a, I>(&self, features: I) -> SparseVec
    where
        I: IntoIterator<Item = &'a str>,
    {
        let pairs: Vec<(u32, f32)> = features.into_iter().map(|f| self.bucket(f)).collect();
        SparseVec::from_pairs(pairs)
    }

    /// Hash a bag and L2-normalize the result, a cheap stand-in for the
    /// length normalization TextCNN gets from pooling.
    pub fn hash_bag_normalized<'a, I>(&self, features: I) -> SparseVec
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut v = self.hash_bag(features);
        let n = v.norm();
        if n > 0.0 {
            v.scale((1.0 / n) as f32);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_values() {
        // Reference vectors for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn bucket_is_deterministic_and_in_range() {
        let h = FeatureHasher::new(128);
        let (i1, s1) = h.bucket("hello");
        let (i2, s2) = h.bucket("hello");
        assert_eq!((i1, s1), (i2, s2));
        assert!(i1 < 128);
        assert!(s1 == 1.0 || s1 == -1.0);
    }

    #[test]
    fn namespaces_decorrelate() {
        let a = FeatureHasher::with_namespace(1 << 16, 1);
        let b = FeatureHasher::with_namespace(1 << 16, 2);
        let words = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let same = words
            .iter()
            .filter(|w| a.bucket(w).0 == b.bucket(w).0)
            .count();
        assert!(
            same < words.len(),
            "all buckets identical across namespaces"
        );
    }

    #[test]
    fn hash_bag_counts_duplicates() {
        let h = FeatureHasher::new(1 << 12);
        let v = h.hash_bag(["x", "x", "y"]);
        // "x" appears twice: its bucket must carry weight ±2.
        let (xi, xs) = h.bucket("x");
        let found = v.iter().find(|&(i, _)| i == xi).expect("x bucket present");
        assert!((found.1 - 2.0 * xs).abs() < 1e-6);
    }

    #[test]
    fn normalized_bag_has_unit_norm() {
        let h = FeatureHasher::new(1 << 12);
        let v = h.hash_bag_normalized(["a", "b", "c"]);
        assert!((v.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_bag_is_empty_vec() {
        let h = FeatureHasher::new(16);
        assert!(h.hash_bag(std::iter::empty()).is_empty());
        assert!(h.hash_bag_normalized(std::iter::empty()).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = FeatureHasher::new(0);
    }
}

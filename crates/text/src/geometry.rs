//! Pool geometry cache for similarity-based combinators.
//!
//! Density weighting, MMR and k-center selection compute cosine
//! similarities between pool samples on every round. Going through
//! [`SparseVec::cosine`] recomputes both Euclidean norms — two passes and
//! two square roots — per pair, every call, even though the pool
//! representations never change during a run. [`PoolGeometry`] snapshots
//! the pool once: all rows in one CSR-style contiguous arena (one
//! `indices` + one `values` buffer, row offsets) plus a cached norm per
//! row, so a cosine is a single sparse dot and one division.
//!
//! The stored values are deliberately *not* pre-scaled to unit length:
//! dividing the `f32` values by the norm would round each entry and
//! perturb similarities by a few ULPs, which could flip greedy selection
//! ties. Keeping the raw values and dividing the `f64` dot by the cached
//! norm product reproduces `SparseVec::cosine` bit for bit — the
//! determinism contract extends to the cached path (see the property
//! tests in `tests/geometry_props.rs`).

use crate::sparse::SparseVec;

/// Row-store abstraction over a pool's sparse representations.
///
/// [`PoolGeometry`] (resident CSR) is the canonical implementation; the
/// out-of-core memory-mapped pool in `histal-data` is the second. All
/// similarity math lives in the provided methods so every backing store
/// shares one accumulation order — the bit-identity contract of the
/// combinators holds regardless of where the rows live.
pub trait Geometry {
    /// Number of rows.
    fn len(&self) -> usize;

    /// One past the largest stored index (0 for an all-empty pool) — the
    /// length a dense scatter buffer needs.
    fn dim(&self) -> usize;

    /// The cached Euclidean norm of row `i`.
    fn norm(&self, i: usize) -> f64;

    /// Row `i` as parallel `(indices, values)` slices.
    fn row(&self, i: usize) -> (&[u32], &[f32]);

    /// True when the store holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sparse dot product of rows `a` and `b` — the same single-pass merge
    /// and `f64` accumulation as [`SparseVec::dot`].
    fn dot(&self, a: usize, b: usize) -> f64 {
        let (ai, av) = self.row(a);
        let (bi, bv) = self.row(b);
        let (mut x, mut y) = (0, 0);
        let mut acc = 0.0;
        while x < ai.len() && y < bi.len() {
            match ai[x].cmp(&bi[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    acc += av[x] as f64 * bv[y] as f64;
                    x += 1;
                    y += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity of rows `a` and `b` via the cached norms; zero
    /// when either row is all-zero. Bit-identical to
    /// [`SparseVec::cosine`] on the same vectors.
    fn cosine(&self, a: usize, b: usize) -> f64 {
        let denom = self.norm(a) * self.norm(b);
        if denom == 0.0 {
            0.0
        } else {
            self.dot(a, b) / denom
        }
    }

    /// Scatter row `a`'s widened values into `dense` (grown to
    /// [`Self::dim`] on first use) for repeated one-vs-many dots. Pair
    /// with [`Self::unscatter`] to zero the entries again in O(nnz).
    fn scatter(&self, a: usize, dense: &mut Vec<f64>) {
        if dense.len() < self.dim() {
            dense.resize(self.dim(), 0.0);
        }
        let (ai, av) = self.row(a);
        for (&i, &v) in ai.iter().zip(av) {
            dense[i as usize] = v as f64;
        }
    }

    /// Zero row `a`'s entries in a buffer filled by [`Self::scatter`].
    fn unscatter(&self, a: usize, dense: &mut [f64]) {
        let (ai, _) = self.row(a);
        for &i in ai {
            dense[i as usize] = 0.0;
        }
    }

    /// Dot of row `b` against a row scattered into `dense` — a linear
    /// gather instead of the branchy two-pointer merge, and still
    /// bit-identical to [`Self::dot`]: shared indices contribute the same
    /// products in the same ascending order, and non-shared indices
    /// contribute `±0.0`, which cannot change the accumulator (it is
    /// never `-0.0`: it starts at `+0.0`, and round-to-nearest addition
    /// yields `-0.0` only from `-0.0 + -0.0`).
    fn dot_scattered(&self, dense: &[f64], b: usize) -> f64 {
        let (bi, bv) = self.row(b);
        let mut acc = 0.0;
        for (&i, &v) in bi.iter().zip(bv) {
            acc += dense[i as usize] * v as f64;
        }
        acc
    }

    /// Cosine of rows `a` (already scattered into `dense`) and `b`;
    /// bit-identical to [`Self::cosine`] of the same rows.
    fn cosine_scattered(&self, dense: &[f64], a: usize, b: usize) -> f64 {
        let denom = self.norm(a) * self.norm(b);
        if denom == 0.0 {
            0.0
        } else {
            self.dot_scattered(dense, b) / denom
        }
    }
}

/// Immutable CSR snapshot of a pool's sparse representations with cached
/// per-row norms.
#[derive(Debug, Clone, Default)]
pub struct PoolGeometry {
    /// Row `i` occupies `indices[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    /// Euclidean norm of each row, computed once at build time with the
    /// same accumulation order as [`SparseVec::norm`].
    norms: Vec<f64>,
    /// One past the largest stored index — the length a dense scatter
    /// buffer needs.
    dim: usize,
}

impl PoolGeometry {
    /// Snapshot `reps` into contiguous storage. `reps[i]` becomes row `i`.
    ///
    /// Everything is pre-sized from one counting pass (`dim` folds into
    /// the fill loop) and the final capacities are asserted, so a
    /// million-row build performs exactly four arena allocations instead
    /// of thrashing the allocator with amortised regrowth.
    pub fn build(reps: &[SparseVec]) -> Self {
        let nnz: usize = reps.iter().map(|r| r.nnz()).sum();
        let mut offsets = Vec::with_capacity(reps.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let mut norms = Vec::with_capacity(reps.len());
        let (indices_cap, values_cap, offsets_cap) =
            (indices.capacity(), values.capacity(), offsets.capacity());
        let mut dim = 0usize;
        offsets.push(0);
        for rep in reps {
            indices.extend_from_slice(rep.indices());
            values.extend_from_slice(rep.values());
            offsets.push(indices.len());
            norms.push(rep.norm());
            // Indices are sorted ascending within a row, so the last one
            // is the row's maximum.
            if let Some(&last) = rep.indices().last() {
                dim = dim.max(last as usize + 1);
            }
        }
        assert_eq!(indices.len(), nnz, "counting pass disagrees with fill");
        assert_eq!(
            indices.capacity(),
            indices_cap,
            "CSR index arena reallocated during fill"
        );
        assert_eq!(
            values.capacity(),
            values_cap,
            "CSR value arena reallocated during fill"
        );
        assert_eq!(
            offsets.capacity(),
            offsets_cap,
            "offset table reallocated during fill"
        );
        Self {
            offsets,
            indices,
            values,
            norms,
            dim,
        }
    }

    /// One past the largest stored index (0 for an all-empty pool).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// True when the geometry holds no rows.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// The cached Euclidean norm of row `i`.
    pub fn norm(&self, i: usize) -> f64 {
        self.norms[i]
    }

    /// Row `i` as parallel `(indices, values)` slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Sparse dot product of rows `a` and `b` — the same single-pass merge
    /// and `f64` accumulation as [`SparseVec::dot`].
    pub fn dot(&self, a: usize, b: usize) -> f64 {
        Geometry::dot(self, a, b)
    }

    /// Cosine similarity of rows `a` and `b` via the cached norms; zero
    /// when either row is all-zero. Bit-identical to
    /// [`SparseVec::cosine`] on the same vectors.
    pub fn cosine(&self, a: usize, b: usize) -> f64 {
        Geometry::cosine(self, a, b)
    }

    /// Scatter row `a`'s widened values into `dense` (grown to
    /// [`Self::dim`] on first use) for repeated one-vs-many dots. Pair
    /// with [`Self::unscatter`] to zero the entries again in O(nnz).
    pub fn scatter(&self, a: usize, dense: &mut Vec<f64>) {
        Geometry::scatter(self, a, dense)
    }

    /// Zero row `a`'s entries in a buffer filled by [`Self::scatter`].
    pub fn unscatter(&self, a: usize, dense: &mut [f64]) {
        Geometry::unscatter(self, a, dense)
    }

    /// Dot of row `b` against a row scattered into `dense`; bit-identical
    /// to [`Self::dot`] (see [`Geometry::dot_scattered`]).
    pub fn dot_scattered(&self, dense: &[f64], b: usize) -> f64 {
        Geometry::dot_scattered(self, dense, b)
    }

    /// Cosine of rows `a` (already scattered into `dense`) and `b`;
    /// bit-identical to [`Self::cosine`] of the same rows.
    pub fn cosine_scattered(&self, dense: &[f64], a: usize, b: usize) -> f64 {
        Geometry::cosine_scattered(self, dense, a, b)
    }
}

impl Geometry for PoolGeometry {
    fn len(&self) -> usize {
        self.norms.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn norm(&self, i: usize) -> f64 {
        self.norms[i]
    }

    fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn build_preserves_rows_and_norms() {
        let reps = vec![sv(&[(1, 1.0), (4, 2.0)]), sv(&[]), sv(&[(0, 3.0)])];
        let g = PoolGeometry::build(&reps);
        assert_eq!(g.len(), 3);
        assert_eq!(g.row(0), (&[1u32, 4][..], &[1.0f32, 2.0][..]));
        assert_eq!(g.row(1), (&[][..], &[][..]));
        for (i, r) in reps.iter().enumerate() {
            assert_eq!(g.norm(i).to_bits(), r.norm().to_bits());
        }
    }

    #[test]
    fn cosine_matches_sparsevec_bitwise() {
        let reps = vec![
            sv(&[(1, 1.0), (3, 2.0), (7, 1.0)]),
            sv(&[(3, 4.0), (7, 0.5), (9, 1.0)]),
            sv(&[(2, -1.5)]),
            sv(&[]),
        ];
        let g = PoolGeometry::build(&reps);
        for a in 0..reps.len() {
            for b in 0..reps.len() {
                assert_eq!(
                    g.cosine(a, b).to_bits(),
                    reps[a].cosine(&reps[b]).to_bits(),
                    "rows {a},{b}"
                );
            }
        }
    }

    #[test]
    fn empty_geometry() {
        let g = PoolGeometry::build(&[]);
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.dim(), 0);
    }

    #[test]
    fn scattered_dot_matches_merge_bitwise() {
        // Includes negative values and an explicit 0.0 entry so the
        // ±0.0-product argument is exercised.
        let reps = vec![
            sv(&[(1, 1.0), (3, -2.0), (7, 0.0)]),
            sv(&[(3, 4.0), (7, -0.5), (9, 1.0)]),
            sv(&[(2, -1.5), (3, 0.25)]),
            sv(&[]),
        ];
        let g = PoolGeometry::build(&reps);
        let mut dense = Vec::new();
        for a in 0..reps.len() {
            g.scatter(a, &mut dense);
            for b in 0..reps.len() {
                assert_eq!(
                    g.dot_scattered(&dense, b).to_bits(),
                    g.dot(a, b).to_bits(),
                    "dot rows {a},{b}"
                );
                assert_eq!(
                    g.cosine_scattered(&dense, a, b).to_bits(),
                    g.cosine(a, b).to_bits(),
                    "cosine rows {a},{b}"
                );
            }
            g.unscatter(a, &mut dense);
            assert!(dense.iter().all(|&v| v == 0.0), "unscatter must re-zero");
        }
    }
}

//! Text-processing substrate for the `histal` workspace.
//!
//! The paper's evaluation tasks (text classification with TextCNN, NER with
//! BiLSTM-CNNs-CRF) both consume tokenized sentences turned into feature
//! vectors. This crate provides the pieces shared by the model substrate and
//! the synthetic dataset generators:
//!
//! * [`tokenize`] — a deterministic whitespace/punctuation tokenizer,
//! * [`Vocab`] — a frequency-counted, prunable vocabulary,
//! * [`FeatureHasher`] — the signed hashing trick used to embed arbitrarily
//!   large vocabularies into a fixed-width weight matrix,
//! * [`SparseVec`] — an ordered sparse feature vector with the linear-algebra
//!   kernels (dot, cosine, axpy) the models need,
//! * [`ngrams()`] — n-gram expansion for bag-of-n-grams features.

pub mod ann;
pub mod geometry;
pub mod hashing;
pub mod ngrams;
pub mod sparse;
pub mod tfidf;
pub mod tokenizer;
pub mod vectorizer;
pub mod vocab;

pub use ann::{AnnConfig, AnnScratch, ExactNeighbors, LshIndex, NeighborIndex};
pub use geometry::{Geometry, PoolGeometry};
pub use hashing::FeatureHasher;
pub use ngrams::{char_ngrams, ngrams};
pub use sparse::SparseVec;
pub use tfidf::TfIdf;
pub use tokenizer::{tokenize, tokenize_lower};
pub use vectorizer::BowVectorizer;
pub use vocab::Vocab;

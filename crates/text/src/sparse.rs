//! Ordered sparse feature vectors.
//!
//! All models in this workspace are linear (softmax regression, linear-chain
//! CRF emissions) over hashed token features, so the single hot data
//! structure is a sparse vector of `(feature index, value)` pairs. Indices
//! are kept sorted and unique, which makes dot products and cosine
//! similarity single-pass merges.

use serde::{Deserialize, Serialize};

/// A sparse feature vector with sorted, unique `u32` indices.
///
/// Values are `f32`: feature values are counts or TF weights, and the models
/// accumulate in `f64`, so the storage precision is ample while halving the
/// memory traffic of pool-wide scoring.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseVec {
    /// Create an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unsorted, possibly duplicated `(index, value)` pairs.
    /// Duplicate indices are summed; zero results are kept (they are
    /// harmless and rare).
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f32> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if indices.last() == Some(&i) {
                *values.last_mut().expect("values parallel to indices") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        Self { indices, values }
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterate over `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// The sorted index slice.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The value slice, parallel to [`Self::indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Dot product with a dense weight slice; indices beyond `dense.len()`
    /// contribute zero.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            if let Some(w) = dense.get(i as usize) {
                acc += w * v as f64;
            }
        }
        acc
    }

    /// Sparse–sparse dot product (single-pass merge).
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b) = (0, 0);
        let mut acc = 0.0;
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[a] as f64 * other.values[b] as f64;
                    a += 1;
                    b += 1;
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.values
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Cosine similarity; zero when either vector is all-zero.
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// `dense[i] += scale * self[i]` for every stored entry. Indices beyond
    /// `dense.len()` are ignored.
    pub fn axpy_into(&self, scale: f64, dense: &mut [f64]) {
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            if let Some(w) = dense.get_mut(i as usize) {
                *w += scale * v as f64;
            }
        }
    }

    /// L1 norm of the stored values.
    pub fn l1(&self) -> f64 {
        self.values.iter().map(|&v| (v as f64).abs()).sum()
    }

    /// Scale every stored value in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.values {
            *v *= s;
        }
    }
}

impl FromIterator<(u32, f32)> for SparseVec {
    fn from_iter<T: IntoIterator<Item = (u32, f32)>>(iter: T) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = sv(&[(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.values(), &[2.0, 1.5]);
    }

    #[test]
    fn dot_dense_matches_manual() {
        let v = sv(&[(0, 1.0), (2, 3.0)]);
        let w = [0.5, 10.0, 2.0];
        assert!((v.dot_dense(&w) - (0.5 + 6.0)).abs() < 1e-12);
    }

    #[test]
    fn dot_dense_ignores_out_of_range() {
        let v = sv(&[(5, 1.0)]);
        assert_eq!(v.dot_dense(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn sparse_dot_merge() {
        let a = sv(&[(1, 1.0), (3, 2.0), (7, 1.0)]);
        let b = sv(&[(3, 4.0), (7, 0.5), (9, 1.0)]);
        assert!((a.dot(&b) - (8.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let a = sv(&[(1, 1.0), (2, 2.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_is_zero() {
        let a = sv(&[(1, 1.0)]);
        let b = sv(&[(2, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_with_empty_is_zero() {
        let a = sv(&[(1, 1.0)]);
        assert_eq!(a.cosine(&SparseVec::new()), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let v = sv(&[(0, 2.0), (2, 1.0)]);
        let mut d = vec![1.0, 1.0, 1.0];
        v.axpy_into(0.5, &mut d);
        assert_eq!(d, vec![2.0, 1.0, 1.5]);
    }

    #[test]
    fn norm_and_l1() {
        let v = sv(&[(0, 3.0), (1, -4.0)]);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((v.l1() - 7.0).abs() < 1e-12);
    }
}

//! Frequency-counted vocabulary with id assignment and pruning.
//!
//! The dataset generators use a [`Vocab`] both to *emit* tokens (sampling by
//! id) and to report the `|V|` statistics of Table 3; the CRF uses one to
//! map tokens to emission-template ids.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Reserved id for out-of-vocabulary tokens.
pub const UNK_ID: u32 = 0;
/// The string form of the OOV token.
pub const UNK_TOKEN: &str = "<unk>";

/// A bidirectional token ↔ id map with frequency counts.
///
/// Id 0 is always [`UNK_TOKEN`]. Ids are assigned in first-seen order, which
/// keeps vocabularies deterministic for a deterministic token stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
    counts: Vec<u64>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// An empty vocabulary containing only the `<unk>` entry.
    pub fn new() -> Self {
        let mut token_to_id = HashMap::new();
        token_to_id.insert(UNK_TOKEN.to_string(), UNK_ID);
        Self {
            token_to_id,
            id_to_token: vec![UNK_TOKEN.to_string()],
            counts: vec![0],
        }
    }

    /// Build a vocabulary from an iterator of token streams.
    pub fn from_corpus<'a, I, S>(sentences: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = &'a str>,
    {
        let mut v = Self::new();
        for sent in sentences {
            for tok in sent {
                v.add(tok);
            }
        }
        v
    }

    /// Insert one occurrence of `token`, assigning a fresh id on first
    /// sight. Returns the token's id.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_to_id.get(token) {
            self.counts[id as usize] += 1;
            return id;
        }
        let id = self.id_to_token.len() as u32;
        self.token_to_id.insert(token.to_string(), id);
        self.id_to_token.push(token.to_string());
        self.counts.push(1);
        id
    }

    /// Look up a token, returning [`UNK_ID`] for unknown tokens.
    pub fn get(&self, token: &str) -> u32 {
        self.token_to_id.get(token).copied().unwrap_or(UNK_ID)
    }

    /// True if `token` has been added.
    pub fn contains(&self, token: &str) -> bool {
        self.token_to_id.contains_key(token)
    }

    /// The token for an id; `None` if out of range.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.id_to_token.get(id as usize).map(String::as_str)
    }

    /// Occurrence count of an id (0 for out-of-range ids).
    pub fn count(&self, id: u32) -> u64 {
        self.counts.get(id as usize).copied().unwrap_or(0)
    }

    /// Number of entries including `<unk>`.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only `<unk>` is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Return a new vocabulary containing only tokens seen at least
    /// `min_count` times (plus `<unk>`). Ids are reassigned densely in the
    /// original order.
    pub fn pruned(&self, min_count: u64) -> Vocab {
        let mut v = Vocab::new();
        for id in 1..self.id_to_token.len() {
            if self.counts[id] >= min_count {
                let tok = &self.id_to_token[id];
                let new_id = v.add(tok);
                // `add` set the count to 1; restore the real count.
                v.counts[new_id as usize] = self.counts[id];
            }
        }
        v
    }

    /// Iterate `(token, id, count)` over real (non-unk) entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32, u64)> + '_ {
        (1..self.id_to_token.len())
            .map(move |i| (self.id_to_token[i].as_str(), i as u32, self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_contains_only_unk() {
        let v = Vocab::new();
        assert_eq!(v.len(), 1);
        assert!(v.is_empty());
        assert_eq!(v.token(UNK_ID), Some(UNK_TOKEN));
    }

    #[test]
    fn add_assigns_sequential_ids() {
        let mut v = Vocab::new();
        assert_eq!(v.add("a"), 1);
        assert_eq!(v.add("b"), 2);
        assert_eq!(v.add("a"), 1);
        assert_eq!(v.count(1), 2);
        assert_eq!(v.count(2), 1);
    }

    #[test]
    fn get_unknown_is_unk() {
        let v = Vocab::new();
        assert_eq!(v.get("missing"), UNK_ID);
    }

    #[test]
    fn from_corpus_counts_everything() {
        let v = Vocab::from_corpus([["the", "cat"], ["the", "dog"]]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.count(v.get("the")), 2);
    }

    #[test]
    fn pruning_drops_rare_tokens_and_preserves_counts() {
        let mut v = Vocab::new();
        for _ in 0..3 {
            v.add("common");
        }
        v.add("rare");
        let p = v.pruned(2);
        assert!(p.contains("common"));
        assert!(!p.contains("rare"));
        assert_eq!(p.count(p.get("common")), 3);
    }

    #[test]
    fn iter_skips_unk() {
        let mut v = Vocab::new();
        v.add("x");
        let entries: Vec<_> = v.iter().collect();
        assert_eq!(entries, vec![("x", 1, 1)]);
    }

    #[test]
    fn token_out_of_range_is_none() {
        let v = Vocab::new();
        assert_eq!(v.token(42), None);
        assert_eq!(v.count(42), 0);
    }
}

//! Approximate nearest-neighbor indexing over pool geometry.
//!
//! The similarity combinators (density weighting, k-center, MMR) are
//! O(|U|²)-ish per round when every candidate is compared against every
//! other. [`NeighborIndex`] abstracts "which rows are worth comparing":
//! [`ExactNeighbors`] returns every row (the exhaustive sweep, used by
//! tests to pin equivalence with the inline exact path), while
//! [`LshIndex`] buckets rows by random-hyperplane signatures so a query
//! touches only the handful of buckets that can plausibly contain high
//! cosine-similarity neighbors.
//!
//! # LSH construction
//!
//! For table `t` and hyperplane `p`, the sign of feature `i` is bit `p`
//! of `mix(seed ^ (t << 32) ^ i)` — one 64-bit hash per `(feature,
//! table)` pair provides the sign bits for *all* planes of that table,
//! so signing a row costs `nnz × tables` hashes regardless of the
//! signature width. A row's signature packs the signs of its `bits`
//! projections; rows sharing a signature land in the same bucket
//! (flat-CSR per table: one offsets array over `2^bits` buckets plus a
//! row-id array).
//!
//! # Probe semantics
//!
//! `probes = q` means each table is queried at the row's own signature
//! plus `q` one-bit-flipped variants — the flips chosen at build time as
//! the planes with the smallest absolute projection, i.e. the planes the
//! row was closest to falling on the other side of. Neighbor sets are
//! the deduplicated union over all tables and probes, returned in
//! ascending row order so downstream accumulation order is deterministic.
//!
//! Build and query are sequential and seeded: the index — and therefore
//! every selection that consults it — is identical across thread counts.

use serde::{Deserialize, Serialize};

use crate::geometry::Geometry;

/// Tuning knobs for [`LshIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnConfig {
    /// Number of independent hash tables (more tables → higher recall,
    /// linearly more build time and memory).
    pub tables: usize,
    /// Signature width in bits; `0` picks `clamp(ceil(log2 n) - 6, 4,
    /// 16)` so the expected bucket occupancy stays near 64 rows.
    pub bits: usize,
    /// Extra one-bit-flip probes per table per query (0 = exact-bucket
    /// lookup only).
    pub probes: usize,
}

impl Default for AnnConfig {
    fn default() -> Self {
        Self {
            tables: 8,
            bits: 0,
            probes: 2,
        }
    }
}

/// Reusable query-time allocations for [`NeighborIndex::neighbors_into`].
#[derive(Debug, Default)]
pub struct AnnScratch {
    seen: Vec<bool>,
}

/// A source of candidate neighbor sets for similarity combinators.
pub trait NeighborIndex {
    /// Number of indexed rows.
    fn len(&self) -> usize;

    /// True when no rows are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collect the candidate neighbors of `row` into `out`: deduplicated,
    /// sorted ascending, and including `row` itself when it shares a
    /// bucket with the query (callers filter self-pairs as needed).
    fn neighbors_into(&self, row: usize, scratch: &mut AnnScratch, out: &mut Vec<usize>);
}

/// The exhaustive "index": every row is a candidate neighbor of every
/// other. Routing the combinators through this impl reproduces the
/// inline exact sweep bit for bit (pinned by the `ann_props` tests);
/// it exists to make that equivalence testable, not for speed.
#[derive(Debug, Clone, Copy)]
pub struct ExactNeighbors {
    n: usize,
}

impl ExactNeighbors {
    /// An exhaustive index over `n` rows.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl NeighborIndex for ExactNeighbors {
    fn len(&self) -> usize {
        self.n
    }

    fn neighbors_into(&self, _row: usize, _scratch: &mut AnnScratch, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..self.n);
    }
}

/// `splitmix64` finalizer: decorrelates consecutive `(feature, table)`
/// keys into independent sign-bit words.
#[inline]
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Multi-table random-hyperplane LSH over a [`Geometry`].
#[derive(Debug, Clone)]
pub struct LshIndex {
    n: usize,
    tables: usize,
    bits: u32,
    probes: usize,
    /// Row signatures, row-major: `sigs[row * tables + t]`.
    sigs: Vec<u32>,
    /// Probe flip positions per `(row, table)`, lowest `|projection|`
    /// first: `flips[(row * tables + t) * probes + j]`.
    flips: Vec<u8>,
    /// Per-table bucket CSR: `bucket_offsets[t]` has `2^bits + 1`
    /// entries; bucket `s` of table `t` holds
    /// `bucket_rows[t][offsets[s]..offsets[s + 1]]` (ascending row ids).
    bucket_offsets: Vec<Vec<u32>>,
    bucket_rows: Vec<Vec<u32>>,
}

impl LshIndex {
    /// The signature width used for a pool of `n` rows under `cfg_bits`
    /// (`0` = auto).
    pub fn effective_bits(n: usize, cfg_bits: usize) -> u32 {
        if cfg_bits > 0 {
            cfg_bits.min(20) as u32
        } else {
            let lg = (n.max(2) as f64).log2().ceil() as i64;
            (lg - 6).clamp(4, 16) as u32
        }
    }

    /// Build the index over every row of `geom`. Deterministic in
    /// `(geom, cfg, seed)`; single-threaded by design so results do not
    /// depend on the thread pool.
    pub fn build<G: Geometry + ?Sized>(geom: &G, cfg: &AnnConfig, seed: u64) -> Self {
        let n = geom.len();
        let tables = cfg.tables.clamp(1, 64);
        let bits = Self::effective_bits(n, cfg.bits);
        let probes = cfg.probes.min(bits as usize);
        let mut sigs = vec![0u32; n * tables];
        let mut flips = vec![0u8; n * tables * probes];
        let mut proj = vec![0.0f64; bits as usize];
        for row in 0..n {
            let (ri, rv) = geom.row(row);
            for t in 0..tables {
                proj.iter_mut().for_each(|p| *p = 0.0);
                let tkey = seed ^ ((t as u64) << 32);
                for (&i, &v) in ri.iter().zip(rv) {
                    let h = mix64(tkey ^ i as u64);
                    for (p, acc) in proj.iter_mut().enumerate() {
                        if (h >> p) & 1 == 1 {
                            *acc += v as f64;
                        } else {
                            *acc -= v as f64;
                        }
                    }
                }
                let mut sig = 0u32;
                for (p, &acc) in proj.iter().enumerate() {
                    if acc >= 0.0 {
                        sig |= 1 << p;
                    }
                }
                sigs[row * tables + t] = sig;
                // The `probes` planes with the smallest |projection|,
                // ties toward the lower plane, by repeated selection
                // (probes is tiny, bits ≤ 20).
                let base = (row * tables + t) * probes;
                let mut taken = 0u32;
                for j in 0..probes {
                    let mut best = usize::MAX;
                    let mut best_abs = f64::INFINITY;
                    for (p, &acc) in proj.iter().enumerate() {
                        if taken & (1 << p) == 0 && acc.abs() < best_abs {
                            best_abs = acc.abs();
                            best = p;
                        }
                    }
                    taken |= 1 << best;
                    flips[base + j] = best as u8;
                }
            }
        }
        // Counting-sort rows into per-table flat-CSR buckets; pushing
        // rows in ascending order keeps each bucket sorted.
        let n_buckets = 1usize << bits;
        let mut bucket_offsets = Vec::with_capacity(tables);
        let mut bucket_rows = Vec::with_capacity(tables);
        for t in 0..tables {
            let mut counts = vec![0u32; n_buckets + 1];
            for row in 0..n {
                counts[sigs[row * tables + t] as usize + 1] += 1;
            }
            for s in 0..n_buckets {
                counts[s + 1] += counts[s];
            }
            let mut rows = vec![0u32; n];
            let mut cursor = counts.clone();
            for row in 0..n {
                let s = sigs[row * tables + t] as usize;
                rows[cursor[s] as usize] = row as u32;
                cursor[s] += 1;
            }
            bucket_offsets.push(counts);
            bucket_rows.push(rows);
        }
        Self {
            n,
            tables,
            bits,
            probes,
            sigs,
            flips,
            bucket_offsets,
            bucket_rows,
        }
    }

    /// Signature width in use.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of hash tables in use.
    pub fn tables(&self) -> usize {
        self.tables
    }

    /// One-bit probes per table per query.
    pub fn probes(&self) -> usize {
        self.probes
    }
}

impl NeighborIndex for LshIndex {
    fn len(&self) -> usize {
        self.n
    }

    fn neighbors_into(&self, row: usize, scratch: &mut AnnScratch, out: &mut Vec<usize>) {
        out.clear();
        if scratch.seen.len() < self.n {
            scratch.seen.resize(self.n, false);
        }
        for t in 0..self.tables {
            let sig = self.sigs[row * self.tables + t];
            for j in 0..=self.probes {
                let s = if j == 0 {
                    sig
                } else {
                    sig ^ (1 << self.flips[(row * self.tables + t) * self.probes + (j - 1)])
                };
                let lo = self.bucket_offsets[t][s as usize] as usize;
                let hi = self.bucket_offsets[t][s as usize + 1] as usize;
                for &r in &self.bucket_rows[t][lo..hi] {
                    let r = r as usize;
                    if !scratch.seen[r] {
                        scratch.seen[r] = true;
                        out.push(r);
                    }
                }
            }
        }
        out.sort_unstable();
        for &r in out.iter() {
            scratch.seen[r] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PoolGeometry;
    use crate::sparse::SparseVec;

    fn pool(n: usize, seed: u64) -> PoolGeometry {
        // Two well-separated clusters: features 0..8 vs 100..108.
        let reps: Vec<SparseVec> = (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0 } else { 100 };
                let pairs: Vec<(u32, f32)> = (0..8)
                    .map(|k| {
                        let h = mix64(seed ^ (i as u64) << 8 ^ k as u64);
                        (base + k as u32, 1.0 + (h % 100) as f32 / 100.0)
                    })
                    .collect();
                SparseVec::from_pairs(pairs)
            })
            .collect();
        PoolGeometry::build(&reps)
    }

    #[test]
    fn exact_neighbors_is_everything() {
        let idx = ExactNeighbors::new(5);
        let mut scratch = AnnScratch::default();
        let mut out = Vec::new();
        idx.neighbors_into(3, &mut scratch, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lsh_neighbors_sorted_dedup_and_include_self() {
        let g = pool(64, 7);
        let idx = LshIndex::build(&g, &AnnConfig::default(), 42);
        let mut scratch = AnnScratch::default();
        let mut out = Vec::new();
        for row in 0..g.len() {
            idx.neighbors_into(row, &mut scratch, &mut out);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            assert!(out.binary_search(&row).is_ok(), "row {row} finds itself");
        }
    }

    #[test]
    fn lsh_clusters_recall_their_mates() {
        // Cluster mates are near-parallel; with 8 tables at small bit
        // widths essentially all of them must surface as neighbors.
        let g = pool(200, 3);
        let idx = LshIndex::build(&g, &AnnConfig::default(), 42);
        let mut scratch = AnnScratch::default();
        let mut out = Vec::new();
        let mut hit = 0usize;
        let mut total = 0usize;
        for row in 0..g.len() {
            idx.neighbors_into(row, &mut scratch, &mut out);
            for mate in (0..g.len()).filter(|m| m % 2 == row % 2 && *m != row) {
                total += 1;
                if out.binary_search(&mate).is_ok() {
                    hit += 1;
                }
            }
        }
        assert!(
            hit as f64 >= 0.95 * total as f64,
            "cluster recall {hit}/{total}"
        );
    }

    #[test]
    fn lsh_build_is_deterministic() {
        let g = pool(100, 11);
        let a = LshIndex::build(&g, &AnnConfig::default(), 42);
        let b = LshIndex::build(&g, &AnnConfig::default(), 42);
        assert_eq!(a.sigs, b.sigs);
        assert_eq!(a.flips, b.flips);
        assert_eq!(a.bucket_rows, b.bucket_rows);
    }

    #[test]
    fn effective_bits_clamps() {
        assert_eq!(LshIndex::effective_bits(0, 0), 4);
        assert_eq!(LshIndex::effective_bits(1_000, 0), 4);
        assert_eq!(LshIndex::effective_bits(10_000, 0), 8);
        assert_eq!(LshIndex::effective_bits(1_000_000, 0), 14);
        assert_eq!(LshIndex::effective_bits(1 << 30, 0), 16);
        assert_eq!(LshIndex::effective_bits(10, 12), 12);
        assert_eq!(LshIndex::effective_bits(10, 64), 20);
    }
}

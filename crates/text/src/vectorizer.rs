//! Exact (vocabulary-indexed) bag-of-n-grams vectorization.
//!
//! The hashing trick ([`crate::FeatureHasher`]) is collision-prone by
//! design; when the vocabulary fits in memory and exact, interpretable
//! feature indices matter (error analysis, per-word weight inspection),
//! a [`BowVectorizer`] built over a [`Vocab`] is the right tool. Both
//! produce [`SparseVec`]s, so the models accept either.

use serde::{Deserialize, Serialize};

use crate::ngrams::ngrams;
use crate::sparse::SparseVec;
use crate::vocab::{Vocab, UNK_ID};

/// Exact bag-of-n-grams vectorizer over a fitted vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BowVectorizer {
    vocab: Vocab,
    /// Maximum n-gram order.
    max_n: usize,
    /// Drop tokens not in the vocabulary instead of mapping them to the
    /// `<unk>` bucket.
    drop_unknown: bool,
}

impl BowVectorizer {
    /// Fit a vectorizer on a tokenized corpus: every n-gram up to
    /// `max_n` seen at least `min_count` times gets its own feature
    /// index.
    pub fn fit(corpus: &[Vec<String>], max_n: usize, min_count: u64) -> Self {
        let mut vocab = Vocab::new();
        for doc in corpus {
            for gram in ngrams(doc, max_n) {
                vocab.add(&gram);
            }
        }
        let vocab = if min_count > 1 {
            vocab.pruned(min_count)
        } else {
            vocab
        };
        Self {
            vocab,
            max_n,
            drop_unknown: true,
        }
    }

    /// Map unknown n-grams to the shared `<unk>` index instead of
    /// dropping them.
    pub fn with_unknown_bucket(mut self) -> Self {
        self.drop_unknown = false;
        self
    }

    /// Feature-space width (vocabulary size including `<unk>`).
    pub fn n_features(&self) -> u32 {
        self.vocab.len() as u32
    }

    /// The underlying vocabulary (for index → n-gram inspection).
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Vectorize one tokenized document: n-gram counts, L2-normalized.
    pub fn transform(&self, tokens: &[String]) -> SparseVec {
        let pairs: Vec<(u32, f32)> = ngrams(tokens, self.max_n)
            .into_iter()
            .filter_map(|g| {
                let id = self.vocab.get(&g);
                if id == UNK_ID && self.drop_unknown {
                    None
                } else {
                    Some((id, 1.0))
                }
            })
            .collect();
        let mut v = SparseVec::from_pairs(pairs);
        let n = v.norm();
        if n > 0.0 {
            v.scale((1.0 / n) as f32);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fit_transform_roundtrip() {
        let corpus = vec![doc(&["good", "movie"]), doc(&["bad", "movie"])];
        let v = BowVectorizer::fit(&corpus, 1, 1);
        assert_eq!(v.n_features(), 4); // <unk>, good, movie, bad
        let x = v.transform(&doc(&["good", "movie"]));
        assert_eq!(x.nnz(), 2);
        assert!((x.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn indices_are_interpretable() {
        let corpus = vec![doc(&["alpha", "beta"])];
        let v = BowVectorizer::fit(&corpus, 1, 1);
        let x = v.transform(&doc(&["alpha"]));
        let idx = x.indices()[0];
        assert_eq!(v.vocab().token(idx), Some("alpha"));
    }

    #[test]
    fn unknown_tokens_dropped_by_default() {
        let corpus = vec![doc(&["known"])];
        let v = BowVectorizer::fit(&corpus, 1, 1);
        assert!(v.transform(&doc(&["mystery"])).is_empty());
        let with_unk = v.with_unknown_bucket();
        let x = with_unk.transform(&doc(&["mystery"]));
        assert_eq!(x.indices(), &[UNK_ID]);
    }

    #[test]
    fn min_count_prunes_rare_grams() {
        let corpus = vec![doc(&["common", "rare"]), doc(&["common"])];
        let v = BowVectorizer::fit(&corpus, 1, 2);
        assert!(v.vocab().contains("common"));
        assert!(!v.vocab().contains("rare"));
    }

    #[test]
    fn bigrams_get_features() {
        let corpus = vec![doc(&["not", "good"]), doc(&["not", "good"])];
        let v = BowVectorizer::fit(&corpus, 2, 1);
        assert!(v.vocab().contains("not_good"));
        let x = v.transform(&doc(&["not", "good"]));
        assert_eq!(x.nnz(), 3); // not, good, not_good
    }

    #[test]
    fn empty_document_is_empty() {
        let v = BowVectorizer::fit(&[doc(&["a"])], 1, 1);
        assert!(v.transform(&[]).is_empty());
    }
}

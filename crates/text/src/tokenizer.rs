//! Deterministic rule-based tokenization.
//!
//! The synthetic corpora are generated token-by-token, so the tokenizer's
//! main job in this workspace is (a) round-tripping generated sentences and
//! (b) handling user-supplied text in the examples. It splits on whitespace,
//! detaches leading/trailing ASCII punctuation as standalone tokens, and
//! keeps internal punctuation (e.g. `don't`, `3.14`) intact.

/// Split `text` into tokens.
///
/// Rules:
/// * whitespace separates tokens;
/// * a maximal run of leading or trailing ASCII punctuation on a word is
///   emitted as its own token, one token per punctuation character;
/// * internal punctuation is preserved.
///
/// ```
/// use histal_text::tokenize;
/// assert_eq!(tokenize("Hello, world!"), vec!["Hello", ",", "world", "!"]);
/// assert_eq!(tokenize("don't stop"), vec!["don't", "stop"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for word in text.split_whitespace() {
        push_word(word, &mut out);
    }
    out
}

/// [`tokenize`] followed by ASCII lowercasing of every token.
pub fn tokenize_lower(text: &str) -> Vec<String> {
    let mut toks = tokenize(text);
    for t in &mut toks {
        t.make_ascii_lowercase();
    }
    toks
}

fn push_word(word: &str, out: &mut Vec<String>) {
    // Find the core of the word: strip leading/trailing ASCII punctuation.
    let bytes = word.as_bytes();
    let mut start = 0;
    while start < bytes.len() && bytes[start].is_ascii_punctuation() {
        start += 1;
    }
    let mut end = bytes.len();
    while end > start && bytes[end - 1].is_ascii_punctuation() {
        end -= 1;
    }
    // Leading punctuation, one token each.
    for &b in &bytes[..start] {
        out.push((b as char).to_string());
    }
    if start < end {
        out.push(word[start..end].to_string());
    }
    for &b in &bytes[end..] {
        out.push((b as char).to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(tokenize("a b  c\td"), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn detaches_trailing_punctuation() {
        assert_eq!(tokenize("end."), vec!["end", "."]);
        assert_eq!(tokenize("wow!!"), vec!["wow", "!", "!"]);
    }

    #[test]
    fn detaches_leading_punctuation() {
        assert_eq!(tokenize("\"quoted\""), vec!["\"", "quoted", "\""]);
    }

    #[test]
    fn keeps_internal_punctuation() {
        assert_eq!(tokenize("don't"), vec!["don't"]);
        assert_eq!(tokenize("3.14"), vec!["3.14"]);
        assert_eq!(tokenize("state-of-the-art"), vec!["state-of-the-art"]);
    }

    #[test]
    fn pure_punctuation_word() {
        assert_eq!(tokenize("..."), vec![".", ".", "."]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn lowercasing() {
        assert_eq!(tokenize_lower("Hello WORLD"), vec!["hello", "world"]);
    }

    #[test]
    fn unicode_words_survive() {
        // Non-ASCII characters are never treated as punctuation.
        assert_eq!(tokenize("naïve café"), vec!["naïve", "café"]);
    }
}

//! TF–IDF re-weighting of hashed feature vectors.
//!
//! Frequent background tokens dominate raw bag-of-words vectors and wash
//! out the class-indicative tail. The smoothed IDF
//! `ln((N + 1)/(df + 1)) + 1` learned over a corpus of hashed bags
//! re-weights buckets by informativeness; transformed vectors are
//! L2-normalized (the `sklearn`-compatible convention).

use serde::{Deserialize, Serialize};

use crate::sparse::SparseVec;

/// A fitted IDF table over hashed feature buckets.
///
/// ```
/// use histal_text::{FeatureHasher, TfIdf};
/// let h = FeatureHasher::new(1 << 12);
/// let corpus: Vec<_> = ["the cat", "the dog", "the fish"]
///     .iter()
///     .map(|s| h.hash_bag(s.split(' ')))
///     .collect();
/// let tfidf = TfIdf::fit(&corpus, 1 << 12);
/// // "the" appears everywhere → lower IDF than "cat".
/// assert!(tfidf.idf(h.bucket("the").0) < tfidf.idf(h.bucket("cat").0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdf {
    idf: Vec<f32>,
}

impl TfIdf {
    /// Fit bucket document frequencies over `corpus`. `n_buckets` must
    /// cover every index present in the corpus (indices beyond it are
    /// ignored at transform time).
    pub fn fit(corpus: &[SparseVec], n_buckets: u32) -> Self {
        let mut df = vec![0u32; n_buckets as usize];
        for v in corpus {
            for (idx, _) in v.iter() {
                if let Some(d) = df.get_mut(idx as usize) {
                    *d += 1;
                }
            }
        }
        let n = corpus.len() as f32;
        let idf = df
            .into_iter()
            .map(|d| ((n + 1.0) / (d as f32 + 1.0)).ln() + 1.0)
            .collect();
        Self { idf }
    }

    /// Number of buckets in the table.
    pub fn n_buckets(&self) -> usize {
        self.idf.len()
    }

    /// IDF weight of one bucket (1.0 + ln(N+1) for never-seen buckets;
    /// 0.0 for out-of-range indices).
    pub fn idf(&self, bucket: u32) -> f32 {
        self.idf.get(bucket as usize).copied().unwrap_or(0.0)
    }

    /// Re-weight and L2-normalize a vector.
    pub fn transform(&self, v: &SparseVec) -> SparseVec {
        let pairs: Vec<(u32, f32)> = v
            .iter()
            .map(|(idx, val)| (idx, val * self.idf(idx)))
            .collect();
        let mut out = SparseVec::from_pairs(pairs);
        let norm = out.norm();
        if norm > 0.0 {
            out.scale((1.0 / norm) as f32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn rare_buckets_outweigh_common_ones() {
        // Bucket 0 appears in every doc; bucket 1 in one.
        let corpus = vec![sv(&[(0, 1.0), (1, 1.0)]), sv(&[(0, 1.0)]), sv(&[(0, 1.0)])];
        let t = TfIdf::fit(&corpus, 4);
        assert!(t.idf(1) > t.idf(0));
    }

    #[test]
    fn transform_is_unit_norm() {
        let corpus = vec![sv(&[(0, 2.0), (1, 1.0)])];
        let t = TfIdf::fit(&corpus, 4);
        let out = t.transform(&sv(&[(0, 3.0), (1, 1.0)]));
        assert!((out.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_vector_stays_empty() {
        let t = TfIdf::fit(&[], 4);
        assert!(t.transform(&SparseVec::new()).is_empty());
    }

    #[test]
    fn unseen_bucket_gets_max_idf() {
        let corpus = vec![sv(&[(0, 1.0)]); 5];
        let t = TfIdf::fit(&corpus, 4);
        assert!(t.idf(3) > t.idf(0));
        // Out-of-range bucket contributes zero weight.
        assert_eq!(t.idf(99), 0.0);
        let out = t.transform(&sv(&[(99, 1.0)]));
        assert_eq!(out.norm(), 0.0);
    }

    #[test]
    fn idf_formula_hand_checked() {
        // N = 3, df = 1: ln(4/2) + 1
        let corpus = vec![sv(&[(0, 1.0)]), sv(&[(1, 1.0)]), sv(&[(1, 1.0)])];
        let t = TfIdf::fit(&corpus, 2);
        assert!((t.idf(0) - ((4.0f32 / 2.0).ln() + 1.0)).abs() < 1e-6);
        assert!((t.idf(1) - ((4.0f32 / 3.0).ln() + 1.0)).abs() < 1e-6);
    }
}

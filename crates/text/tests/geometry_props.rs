//! Property-based tests pinning the [`PoolGeometry`] cached-norm paths to
//! the [`SparseVec`] reference implementations, bit for bit. The cache
//! stores raw values plus precomputed norms (never pre-scaled unit
//! vectors) precisely so these identities hold to the last ULP — greedy
//! tie-breaking in MMR / k-center depends on it.

use proptest::prelude::*;

use histal_text::{PoolGeometry, SparseVec};

fn pairs_strategy() -> impl Strategy<Value = Vec<(u32, f32)>> {
    prop::collection::vec((0u32..600, -10.0f32..10.0), 0..40)
}

fn pool_strategy() -> impl Strategy<Value = Vec<SparseVec>> {
    prop::collection::vec(pairs_strategy(), 1..8)
        .prop_map(|rows| rows.into_iter().map(SparseVec::from_pairs).collect())
}

proptest! {
    /// Cached norms equal `SparseVec::norm` exactly.
    #[test]
    fn cached_norms_bitwise(pool in pool_strategy()) {
        let g = PoolGeometry::build(&pool);
        prop_assert_eq!(g.len(), pool.len());
        for (i, rep) in pool.iter().enumerate() {
            prop_assert_eq!(g.norm(i).to_bits(), rep.norm().to_bits(), "row {}", i);
        }
    }

    /// The arena dot product equals `SparseVec::dot` exactly for every
    /// row pair (same merge loop, same f64 accumulation order).
    #[test]
    fn dot_bitwise(pool in pool_strategy()) {
        let g = PoolGeometry::build(&pool);
        for a in 0..pool.len() {
            for b in 0..pool.len() {
                prop_assert_eq!(
                    g.dot(a, b).to_bits(),
                    pool[a].dot(&pool[b]).to_bits(),
                    "rows {},{}", a, b
                );
            }
        }
    }

    /// Cached-norm cosine equals `SparseVec::cosine` exactly for every
    /// row pair, including all-zero rows (both sides define it as 0).
    #[test]
    fn cosine_bitwise(pool in pool_strategy()) {
        let g = PoolGeometry::build(&pool);
        for a in 0..pool.len() {
            for b in 0..pool.len() {
                prop_assert_eq!(
                    g.cosine(a, b).to_bits(),
                    pool[a].cosine(&pool[b]).to_bits(),
                    "rows {},{}", a, b
                );
            }
        }
    }

    /// The scatter/gather dot and cosine equal the merge-based ones
    /// exactly, and unscatter restores an all-zero buffer.
    #[test]
    fn scattered_paths_bitwise(pool in pool_strategy()) {
        let g = PoolGeometry::build(&pool);
        let mut dense = Vec::new();
        for a in 0..pool.len() {
            g.scatter(a, &mut dense);
            for b in 0..pool.len() {
                prop_assert_eq!(
                    g.dot_scattered(&dense, b).to_bits(),
                    g.dot(a, b).to_bits(),
                    "dot rows {},{}", a, b
                );
                prop_assert_eq!(
                    g.cosine_scattered(&dense, a, b).to_bits(),
                    g.cosine(a, b).to_bits(),
                    "cosine rows {},{}", a, b
                );
            }
            g.unscatter(a, &mut dense);
            prop_assert!(dense.iter().all(|&v| v == 0.0));
        }
    }

    /// Round-tripping a row out of the arena reproduces the original
    /// index/value slices.
    #[test]
    fn rows_roundtrip(pool in pool_strategy()) {
        let g = PoolGeometry::build(&pool);
        for (i, rep) in pool.iter().enumerate() {
            let (idx, vals) = g.row(i);
            prop_assert_eq!(idx, rep.indices(), "row {}", i);
            prop_assert_eq!(vals, rep.values(), "row {}", i);
        }
    }
}

//! Quality and determinism contracts of the LSH neighbor index.
//!
//! The index is only useful if (a) its candidate sets actually contain
//! the true nearest neighbors on the clustered pools the combinators
//! see — pinned here as recall@k ≥ 0.9 at the default [`AnnConfig`] —
//! and (b) its output is a pure function of `(pool, config, seed)`,
//! independent of how many threads the host happens to run.

use histal_text::{AnnConfig, AnnScratch, LshIndex, NeighborIndex, PoolGeometry, SparseVec};

fn splitmix(h: &mut u64) -> u64 {
    *h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Clustered pool: `n` rows over `clusters` latent topics. Each row
/// draws most features from its cluster's 32-feature band plus one
/// shared global feature in four, mirroring the shape of real
/// bag-of-words pools (dense cores, sparse overlap).
fn clustered_pool(seed: u64, n: usize, clusters: usize) -> Vec<SparseVec> {
    let mut h = seed;
    (0..n)
        .map(|i| {
            let cluster = (i % clusters) as u32;
            let pairs: Vec<(u32, f32)> = (0..8)
                .map(|k| {
                    let r = splitmix(&mut h);
                    let feat = if k % 4 == 3 {
                        1 + clusters as u32 * 32 + (r % 32) as u32
                    } else {
                        1 + cluster * 32 + (r % 32) as u32
                    };
                    (feat, 0.25 + (r >> 32) as f32 / u32::MAX as f32)
                })
                .collect();
            SparseVec::from_pairs(pairs)
        })
        .collect()
}

/// True top-k cosine neighbors of `row` (self excluded), exact scan.
fn true_top_k(geom: &PoolGeometry, row: usize, k: usize) -> Vec<usize> {
    let mut scored: Vec<(f64, usize)> = (0..geom.len())
        .filter(|&j| j != row)
        .map(|j| (geom.cosine(row, j), j))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, j)| j).collect()
}

/// Recall@10 of the default-config LSH candidate sets, averaged over a
/// stride of query rows, on several seeded clustered pools.
#[test]
fn default_config_recall_at_10_is_high() {
    for seed in [1u64, 7, 42] {
        let reps = clustered_pool(seed, 2_000, 8);
        let geom = PoolGeometry::build(&reps);
        let index = LshIndex::build(&geom, &AnnConfig::default(), seed);
        let mut scratch = AnnScratch::default();
        let mut neigh = Vec::new();
        let (mut hit, mut want) = (0usize, 0usize);
        for row in (0..geom.len()).step_by(40) {
            index.neighbors_into(row, &mut scratch, &mut neigh);
            for t in true_top_k(&geom, row, 10) {
                want += 1;
                if neigh.binary_search(&t).is_ok() {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / want as f64;
        assert!(
            recall >= 0.9,
            "seed {seed}: recall@10 {recall:.3} below 0.9 ({hit}/{want})"
        );
    }
}

/// The index is a pure function of `(pool, config, seed)`: builds and
/// queries racing on several threads produce the same candidate sets as
/// a build on the main thread.
#[test]
fn build_and_query_are_thread_count_deterministic() {
    let reps = clustered_pool(11, 600, 4);
    let geom = PoolGeometry::build(&reps);
    let cfg = AnnConfig::default();

    let reference: Vec<Vec<usize>> = {
        let index = LshIndex::build(&geom, &cfg, 11);
        let mut scratch = AnnScratch::default();
        let mut neigh = Vec::new();
        (0..geom.len())
            .map(|row| {
                index.neighbors_into(row, &mut scratch, &mut neigh);
                neigh.clone()
            })
            .collect()
    };

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let index = LshIndex::build(&geom, &cfg, 11);
                let mut scratch = AnnScratch::default();
                let mut neigh = Vec::new();
                for (row, expect) in reference.iter().enumerate() {
                    index.neighbors_into(row, &mut scratch, &mut neigh);
                    assert_eq!(&neigh, expect, "row {row} diverged across threads");
                }
            });
        }
    });
}

/// Tightening `probes` can only shrink candidate sets; the self row is
/// always present regardless.
#[test]
fn probes_grow_candidate_sets_monotonically() {
    let reps = clustered_pool(5, 800, 8);
    let geom = PoolGeometry::build(&reps);
    let mut scratch = AnnScratch::default();
    let mut prev_total = 0usize;
    for probes in [0usize, 1, 2, 4] {
        let cfg = AnnConfig {
            probes,
            ..AnnConfig::default()
        };
        let index = LshIndex::build(&geom, &cfg, 5);
        let mut neigh = Vec::new();
        let mut total = 0usize;
        for row in 0..geom.len() {
            index.neighbors_into(row, &mut scratch, &mut neigh);
            assert!(
                neigh.binary_search(&row).is_ok(),
                "self missing at row {row}"
            );
            total += neigh.len();
        }
        assert!(
            total >= prev_total,
            "probes {probes}: total candidates {total} shrank from {prev_total}"
        );
        prev_total = total;
    }
}

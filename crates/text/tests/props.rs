//! Property-based tests for tokenization, hashing and sparse vectors.

use proptest::prelude::*;

use histal_text::{char_ngrams, ngrams, tokenize, tokenize_lower, FeatureHasher, SparseVec};

fn pairs_strategy() -> impl Strategy<Value = Vec<(u32, f32)>> {
    prop::collection::vec((0u32..1000, -10.0f32..10.0), 0..50)
}

proptest! {
    /// Tokens never contain whitespace and are never empty.
    #[test]
    fn tokens_are_clean(text in ".{0,120}") {
        for t in tokenize(&text) {
            prop_assert!(!t.is_empty());
            prop_assert!(!t.chars().any(char::is_whitespace), "token {t:?}");
        }
    }

    /// Lowercasing commutes with tokenization for ASCII inputs.
    #[test]
    fn lowercase_commutes(text in "[ -~]{0,80}") {
        let a = tokenize_lower(&text);
        let b = tokenize(&text.to_ascii_lowercase());
        prop_assert_eq!(a, b);
    }

    /// Token count of n-grams: n_unigrams + (n-1)-windows per order.
    #[test]
    fn ngram_counts(tokens in prop::collection::vec("[a-z]{1,5}", 0..12), max_n in 1usize..4) {
        let grams = ngrams(&tokens, max_n);
        let expected: usize = (1..=max_n)
            .map(|n| tokens.len().saturating_sub(n - 1))
            .take_while(|&c| c > 0)
            .sum();
        // When tokens is empty the sum is 0 for all orders.
        let expected = if tokens.is_empty() { 0 } else { expected };
        prop_assert_eq!(grams.len(), expected);
    }

    /// Char n-grams always cover the padded token.
    #[test]
    fn char_ngram_windows(token in "[a-z]{0,10}", n in 1usize..5) {
        let grams = char_ngrams(&token, n);
        prop_assert!(!grams.is_empty());
        let padded_len = token.chars().count() + 2;
        if padded_len >= n {
            prop_assert_eq!(grams.len(), padded_len - n + 1);
        }
    }

    /// Hash buckets are in range and deterministic.
    #[test]
    fn buckets_in_range(feature in ".{0,30}", log2_buckets in 1u32..16) {
        let h = FeatureHasher::new(1 << log2_buckets);
        let (i, s) = h.bucket(&feature);
        prop_assert!(i < (1 << log2_buckets));
        prop_assert!(s == 1.0 || s == -1.0);
        prop_assert_eq!(h.bucket(&feature), (i, s));
    }

    /// Normalized bags have unit norm (or are empty).
    #[test]
    fn normalized_bags(features in prop::collection::vec("[a-z]{1,6}", 0..30)) {
        let h = FeatureHasher::new(1 << 12);
        let v = h.hash_bag_normalized(features.iter().map(String::as_str));
        if v.is_empty() {
            prop_assert!(features.is_empty());
        } else {
            prop_assert!((v.norm() - 1.0).abs() < 1e-5);
        }
    }

    /// from_pairs produces sorted unique indices, preserving the total
    /// signed mass per index.
    #[test]
    fn from_pairs_invariants(pairs in pairs_strategy()) {
        let v = SparseVec::from_pairs(pairs.clone());
        let idx = v.indices();
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1], "indices must be strictly increasing");
        }
        // Mass conservation per index.
        for (&i, &val) in idx.iter().zip(v.values()) {
            let expected: f32 = pairs.iter().filter(|&&(j, _)| j == i).map(|&(_, x)| x).sum();
            prop_assert!((val - expected).abs() < 1e-3, "index {i}");
        }
    }

    /// Dot product is symmetric and cosine is bounded.
    #[test]
    fn dot_symmetry_cosine_bounds(a in pairs_strategy(), b in pairs_strategy()) {
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-6);
        let c = va.cosine(&vb);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c), "cosine {c}");
    }

    /// dot(x, dense) equals axpy-accumulated dot.
    #[test]
    fn dot_dense_matches_axpy(pairs in pairs_strategy()) {
        let v = SparseVec::from_pairs(pairs);
        let dense = vec![2.0f64; 1000];
        let direct = v.dot_dense(&dense);
        // axpy into zeros with scale 2.0 then sum.
        let mut acc = vec![0.0f64; 1000];
        v.axpy_into(2.0, &mut acc);
        let via_axpy: f64 = acc.iter().sum();
        prop_assert!((direct - via_axpy).abs() < 1e-6);
    }
}

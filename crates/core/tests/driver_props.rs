//! Property-based tests of the full active-learning driver, using a
//! deterministic mock model so the loop's structural invariants are
//! checked across random pool sizes, batch sizes and strategies.

use proptest::prelude::*;
use rand_chacha::ChaCha8Rng;

use histal_core::driver::{select_k, top_k, ActiveLearner, PoolConfig};
use histal_core::eval::{EvalCaps, SampleEval};
use histal_core::model::Model;
use histal_core::strategy::{BaseStrategy, HistoryPolicy, Strategy as AlStrategy};

/// Posterior fixed by the sample value; fit is a no-op.
#[derive(Clone)]
struct FixedModel;

impl Model for FixedModel {
    type Sample = f64;
    type Label = usize;

    fn fit(&mut self, _: &[&f64], _: &[&usize], _: &mut ChaCha8Rng) {}

    fn eval_sample(&self, sample: &f64, _: &EvalCaps, _: u64) -> SampleEval {
        let p = sample.clamp(0.0, 1.0);
        SampleEval::from_probs(vec![p, 1.0 - p])
    }

    fn metric(&self, samples: &[&f64], labels: &[&usize]) -> f64 {
        let correct = samples
            .iter()
            .zip(labels)
            .filter(|(&&x, &&y)| usize::from(x >= 0.5) == y)
            .count();
        correct as f64 / samples.len().max(1) as f64
    }
}

fn strategies() -> impl Strategy<Value = AlStrategy> {
    prop_oneof![
        Just(AlStrategy::new(BaseStrategy::Entropy)),
        Just(AlStrategy::new(BaseStrategy::LeastConfidence)),
        Just(AlStrategy::new(BaseStrategy::Random)),
        Just(AlStrategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 })),
        Just(
            AlStrategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Fhs {
                l: 3,
                w_score: 0.5,
                w_fluct: 0.5,
            })
        ),
        Just(AlStrategy::new(BaseStrategy::Entropy).with_hkld(3)),
    ]
}

fn run(
    n: usize,
    batch: usize,
    rounds: usize,
    strategy: AlStrategy,
    seed: u64,
) -> histal_core::RunResult {
    let pool: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
    let labels: Vec<usize> = pool.iter().map(|&x| usize::from(x >= 0.5)).collect();
    let mut learner = ActiveLearner::builder(FixedModel)
        .pool(pool, labels)
        .test(vec![0.1, 0.9], vec![0, 1])
        .strategy(strategy)
        .config(PoolConfig {
            batch_size: batch,
            rounds,
            init_labeled: batch,
            history_max_len: None,
            record_history: true,
            ann: None,
        })
        .seed(seed)
        .build();
    learner
        .run()
        .expect("mock model supports all chosen strategies")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Structural invariants hold for every pool/batch/strategy combo:
    /// no duplicate selections, monotone labeled counts, curve length
    /// bounded by rounds + 1, history lengths bounded by rounds.
    #[test]
    fn driver_invariants(
        n in 10usize..120,
        batch in 1usize..12,
        rounds in 1usize..8,
        strategy in strategies(),
        seed in 0u64..1000,
    ) {
        let r = run(n, batch, rounds, strategy, seed);
        prop_assert!(r.curve.len() <= rounds + 1);
        // Labeled counts strictly increase across curve points.
        for w in r.curve.windows(2) {
            prop_assert!(w[1].n_labeled > w[0].n_labeled);
            prop_assert!(w[1].n_labeled - w[0].n_labeled <= batch);
        }
        // No sample selected twice, and never one from the initial set.
        let mut seen = std::collections::HashSet::new();
        for round in &r.rounds {
            prop_assert!(round.selected.len() <= batch);
            for &id in &round.selected {
                prop_assert!(id < n);
                prop_assert!(seen.insert(id), "sample {id} selected twice");
            }
        }
        // Histories never exceed the number of selection rounds.
        for seq in &r.history {
            prop_assert!(seq.len() <= rounds);
        }
        // Total labeled never exceeds the pool.
        prop_assert!(r.curve.last().unwrap().n_labeled <= n);
    }

    /// Identical seeds reproduce runs exactly; different seeds change the
    /// random initial set.
    #[test]
    fn driver_determinism(
        n in 20usize..80,
        seed in 0u64..500,
        strategy in strategies(),
    ) {
        let a = run(n, 5, 3, strategy.clone(), seed);
        let b = run(n, 5, 3, strategy, seed);
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            prop_assert_eq!(&ra.selected, &rb.selected);
        }
        for (pa, pb) in a.curve.iter().zip(&b.curve) {
            prop_assert_eq!(pa.metric, pb.metric);
        }
    }

    /// `top_k`'s documented tie-break: equal scores resolve toward the
    /// lower index. Scores are drawn from a tiny discrete set so heavy
    /// ties are the common case, and the result must equal a stable
    /// descending sort (which preserves pool order within each tie
    /// class) truncated to `k`.
    #[test]
    fn top_k_breaks_ties_toward_lower_index(
        scores in prop::collection::vec(0u8..4, 0..60),
        k in 0usize..70,
    ) {
        let scores: Vec<f64> = scores.into_iter().map(f64::from).collect();
        let got = top_k(&scores, k);
        let mut expect: Vec<usize> = (0..scores.len()).collect();
        expect.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        expect.truncate(k);
        prop_assert_eq!(&got, &expect);
        // Membership restated directly: anything strictly better is in,
        // and within a tie class every lower index is in first.
        for &i in &got {
            for j in 0..scores.len() {
                let better = scores[j] > scores[i] || (scores[j] == scores[i] && j < i);
                if better {
                    prop_assert!(got.contains(&j), "index {j} beats {i} but was dropped");
                }
            }
        }
    }

    /// All-tied (and all-NaN) score vectors degrade to pool order.
    #[test]
    fn top_k_constant_scores_select_pool_order(
        n in 0usize..50,
        k in 0usize..60,
        nan in 0u8..2,
    ) {
        let v = if nan == 1 { f64::NAN } else { 0.25 };
        let got = top_k(&vec![v; n], k);
        let expect: Vec<usize> = (0..n.min(k)).collect();
        prop_assert_eq!(&got, &expect);
    }
}

/// The full-sort contract `select_k` must reproduce, stated as a total
/// key `(is_nan, score desc, index asc)`: indices by score descending,
/// `NaN` after every real score, ties (including between `NaN`s) toward
/// the lower index.
fn sort_oracle(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        let (sa, sb) = (scores[a], scores[b]);
        sa.is_nan()
            .cmp(&sb.is_nan())
            .then_with(|| sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

proptest! {
    /// `select_k` (the bounded-heap path) is extensionally equal to the
    /// full sort for every input: mixed magnitudes, heavy ties, and
    /// `NaN`s (which route to the sort fallback), at every `k` from
    /// under-full to over-full.
    #[test]
    fn select_k_matches_full_sort(
        raw in prop::collection::vec(
            // i32::MAX is mapped to NaN below; unweighted union keeps
            // NaN common enough to exercise the sort fallback.
            prop_oneof![-100i32..100, Just(i32::MAX)],
            0..80,
        ),
        k in 0usize..90,
    ) {
        let scores: Vec<f64> = raw
            .into_iter()
            .map(|v| if v == i32::MAX { f64::NAN } else { f64::from(v) / 8.0 })
            .collect();
        prop_assert_eq!(select_k(&scores, k), sort_oracle(&scores, k));
    }

    /// `NaN`-free vectors with heavy ties: the bounded-heap path proper
    /// (the union above yields `NaN` in half the draws, which routes to
    /// the sort fallback — this pins the heap against the oracle).
    #[test]
    fn select_k_matches_full_sort_finite(
        raw in prop::collection::vec(-20i32..20, 0..80),
        k in 0usize..90,
    ) {
        let scores: Vec<f64> = raw.into_iter().map(|v| f64::from(v) / 4.0).collect();
        prop_assert_eq!(select_k(&scores, k), sort_oracle(&scores, k));
    }

    /// All-tied vectors exercise the heap's pure tie-break path (no
    /// `NaN` fallback): every pick must come out in pool order.
    #[test]
    fn select_k_all_tied_is_pool_order(
        n in 0usize..60,
        k in 0usize..70,
        v in -5.0f64..5.0,
    ) {
        let got = select_k(&vec![v; n], k);
        let expect: Vec<usize> = (0..n.min(k)).collect();
        prop_assert_eq!(&got, &expect);
    }
}

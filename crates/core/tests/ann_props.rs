//! Property tests of the ANN-indexed combinator paths.
//!
//! The contract (DESIGN.md §5.8) has two layers:
//!
//! 1. **`ann = off` ⇒ byte-identical**: with `index = None` the
//!    combinators run their pre-ANN loops verbatim. Routing an
//!    *exhaustive* index ([`ExactNeighbors`], which returns every row)
//!    through the ANN branch must then reproduce those bits exactly —
//!    same float accumulation order, same tie-breaks, same picks. This
//!    is what makes the ANN code path testable without trusting it.
//! 2. **LSH is a documented approximation**: with a real [`LshIndex`]
//!    the outputs may differ, but must stay well-formed (finite scores,
//!    right batch shape, no duplicate picks).
//!
//! Both layers are exercised over random sparse pools, scores, and
//! batch sizes.

use proptest::prelude::*;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_core::strategy::combinators::{
    apply_density, kcenter_select, mmr_select, DensityConfig, MmrConfig, SimScratch,
};
use histal_text::{AnnConfig, ExactNeighbors, LshIndex, NeighborIndex, PoolGeometry, SparseVec};

/// A random sparse pool: `n` rows, each with 1..6 entries over a small
/// feature space so rows genuinely collide and overlap.
fn pools() -> impl Strategy<Value = Vec<SparseVec>> {
    prop::collection::vec(prop::collection::vec((0u32..24, 1u32..16), 1..6), 1..24).prop_map(
        |rows| {
            rows.into_iter()
                .map(|pairs| {
                    SparseVec::from_pairs(
                        pairs
                            .into_iter()
                            .map(|(i, v)| (i, v as f32 / 4.0))
                            .collect(),
                    )
                })
                .collect()
        },
    )
}

fn scores_for(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let mut h = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64
        })
        .collect()
}

proptest! {
    /// Density weighting through an exhaustive index is bit-identical
    /// to the un-indexed loop, including the subsampled reference path.
    #[test]
    fn density_exact_index_is_bit_identical(
        reps in pools(),
        seed in 0u64..64,
        sample_size in 0usize..12,
    ) {
        let geom = PoolGeometry::build(&reps);
        let unlabeled: Vec<usize> = (0..reps.len()).collect();
        let config = DensityConfig { sample_size, beta: 1.0 };
        let base = scores_for(reps.len(), seed);

        let mut plain = base.clone();
        apply_density(
            &mut plain, &unlabeled, &geom, None, &config,
            &mut ChaCha8Rng::seed_from_u64(seed), &mut SimScratch::default(),
        );
        let exact = ExactNeighbors::new(geom.len());
        let mut indexed = base;
        apply_density(
            &mut indexed, &unlabeled, &geom, Some(&exact), &config,
            &mut ChaCha8Rng::seed_from_u64(seed), &mut SimScratch::default(),
        );
        for (i, (p, x)) in plain.iter().zip(&indexed).enumerate() {
            prop_assert_eq!(p.to_bits(), x.to_bits(), "score {} diverged", i);
        }
    }

    /// Greedy k-center through an exhaustive index picks the identical
    /// batch in the identical order.
    #[test]
    fn kcenter_exact_index_is_identical(
        reps in pools(),
        seed in 0u64..64,
        batch in 1usize..8,
    ) {
        let geom = PoolGeometry::build(&reps);
        let unlabeled: Vec<usize> = (0..reps.len()).collect();
        let scores = scores_for(reps.len(), seed);
        let plain = kcenter_select(
            &scores, &unlabeled, &geom, None, batch, &mut SimScratch::default(),
        );
        let exact = ExactNeighbors::new(geom.len());
        let indexed = kcenter_select(
            &scores, &unlabeled, &geom, Some(&exact), batch, &mut SimScratch::default(),
        );
        prop_assert_eq!(plain, indexed);
    }

    /// MMR through an exhaustive index picks the identical batch in the
    /// identical order.
    #[test]
    fn mmr_exact_index_is_identical(
        reps in pools(),
        seed in 0u64..64,
        batch in 1usize..8,
    ) {
        let geom = PoolGeometry::build(&reps);
        let unlabeled: Vec<usize> = (0..reps.len()).collect();
        let scores = scores_for(reps.len(), seed);
        let config = MmrConfig::default();
        let plain = mmr_select(
            &scores, &unlabeled, &geom, None, batch, &config, &mut SimScratch::default(),
        );
        let exact = ExactNeighbors::new(geom.len());
        let indexed = mmr_select(
            &scores, &unlabeled, &geom, Some(&exact), batch, &config, &mut SimScratch::default(),
        );
        prop_assert_eq!(plain, indexed);
    }

    /// With a real LSH index the combinators stay well-formed: finite
    /// density weights, full-size batches, no duplicate picks.
    #[test]
    fn lsh_indexed_combinators_are_well_formed(
        reps in pools(),
        seed in 0u64..64,
        batch in 1usize..8,
    ) {
        let geom = PoolGeometry::build(&reps);
        let lsh = LshIndex::build(&geom, &AnnConfig::default(), seed);
        let index: &dyn NeighborIndex = &lsh;
        let unlabeled: Vec<usize> = (0..reps.len()).collect();
        let mut scores = scores_for(reps.len(), seed);
        let mut scratch = SimScratch::default();

        apply_density(
            &mut scores, &unlabeled, &geom, Some(index), &DensityConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(seed), &mut scratch,
        );
        prop_assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));

        for picks in [
            kcenter_select(&scores, &unlabeled, &geom, Some(index), batch, &mut scratch),
            mmr_select(
                &scores, &unlabeled, &geom, Some(index), batch,
                &MmrConfig::default(), &mut scratch,
            ),
        ] {
            prop_assert_eq!(picks.len(), batch.min(unlabeled.len()));
            let mut seen = picks.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), picks.len(), "duplicate picks");
        }
    }
}

//! Property-based tests for the active-learning core: evaluation math,
//! history folding, tag codecs and selection utilities.

use proptest::prelude::*;

use histal_core::driver::{hkld_score, top_k};
use histal_core::eval::{entropy_of, margin_of, SampleEval};
use histal_core::history::HistoryStore;
use histal_core::lhs::bucket_levels;
use histal_core::metrics::PrF1;
use histal_core::strategy::HistoryPolicy;
use histal_core::tags::TagScheme;

fn probs_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, 2..8).prop_map(|v| {
        let sum: f64 = v.iter().sum();
        v.into_iter().map(|x| x / sum).collect()
    })
}

proptest! {
    /// Entropy is bounded by [0, ln k] on the simplex.
    #[test]
    fn entropy_bounds(p in probs_strategy()) {
        let e = entropy_of(&p);
        prop_assert!(e >= -1e-12);
        prop_assert!(e <= (p.len() as f64).ln() + 1e-9);
    }

    /// Margin uncertainty is in [0, 1] on the simplex.
    #[test]
    fn margin_bounds(p in probs_strategy()) {
        let m = margin_of(&p).expect("≥2 classes");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
    }

    /// SampleEval::from_probs is consistent with the raw functions.
    #[test]
    fn eval_consistency(p in probs_strategy()) {
        let eval = SampleEval::from_probs(p.clone());
        prop_assert!((eval.entropy - entropy_of(&p)).abs() < 1e-12);
        let max = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((eval.least_confidence - (1.0 - max)).abs() < 1e-12);
    }

    /// History retention: with a cap, the stored suffix equals the tail
    /// of the uncapped sequence.
    #[test]
    fn history_cap_keeps_suffix(scores in prop::collection::vec(-5.0f64..5.0, 0..30), cap in 1usize..6) {
        let mut capped = HistoryStore::with_max_len(1, cap);
        let mut full = HistoryStore::new(1);
        for &s in &scores {
            capped.append(0, s);
            full.append(0, s);
        }
        let tail_start = scores.len().saturating_sub(cap);
        let full_seq = full.seq(0).to_vec();
        prop_assert_eq!(capped.seq(0).to_vec(), full_seq[tail_start..].to_vec());
    }

    /// Rolling-statistics scoring through the store agrees with the
    /// from-scratch policy fold on the retained sequence, for arbitrary
    /// append sequences, retention caps and window lengths.
    #[test]
    fn rolling_store_matches_policy_fold(
        scores in prop::collection::vec(-5.0f64..5.0, 0..40),
        cap_raw in 0usize..8,
        window in 1usize..8,
        policy_ix in 0usize..4,
    ) {
        // cap_raw == 0 means unbounded retention.
        let cap = (cap_raw > 0).then_some(cap_raw);
        let policy = match policy_ix {
            0 => HistoryPolicy::CurrentOnly,
            1 => HistoryPolicy::Hus { k: window },
            2 => HistoryPolicy::Wshs { l: window },
            _ => HistoryPolicy::Fhs { l: window, w_score: 0.6, w_fluct: 0.4 },
        };
        let mut store = match cap {
            Some(c) => HistoryStore::with_max_len(1, c),
            None => HistoryStore::new(1),
        }
        .with_rolling(policy.window());
        for &s in &scores {
            store.append(0, s);
            let rolling = policy.rolling_score(store.rolling(0).expect("rolling enabled"));
            let seq = store.seq(0).to_vec();
            let scratch = policy.final_score(&seq);
            // Rolling updates associate the arithmetic differently and the
            // Welford remove/add error accumulates over the run, so the
            // bound is a comfortable multiple of machine epsilon — still
            // orders of magnitude below any real defect (wrong evictee or
            // weight shows up at ~1e-1).
            let tol = scratch.abs().max(1.0) * 1e-10;
            prop_assert!(
                (rolling - scratch).abs() <= tol,
                "{:?}: rolling {} vs scratch {}", policy, rolling, scratch
            );
        }
    }

    /// All history policies coincide on single-element sequences
    /// (variance is zero; sums have one term).
    #[test]
    fn policies_agree_on_singletons(score in -5.0f64..5.0) {
        let seq = [score];
        let current = HistoryPolicy::CurrentOnly.final_score(&seq);
        let wshs = HistoryPolicy::Wshs { l: 3 }.final_score(&seq);
        let hus = HistoryPolicy::Hus { k: 3 }.final_score(&seq);
        let fhs = HistoryPolicy::Fhs { l: 3, w_score: 1.0, w_fluct: 1.0 }.final_score(&seq);
        prop_assert!((wshs - current).abs() < 1e-12);
        prop_assert!((hus - current).abs() < 1e-12);
        prop_assert!((fhs - current).abs() < 1e-12);
    }

    /// top_k returns positions whose scores are sorted descending, and
    /// they dominate all unreturned scores.
    #[test]
    fn top_k_dominance(scores in prop::collection::vec(-100.0f64..100.0, 0..40), k in 0usize..10) {
        let picks = top_k(&scores, k);
        prop_assert_eq!(picks.len(), k.min(scores.len()));
        for w in picks.windows(2) {
            prop_assert!(scores[w[0]] >= scores[w[1]]);
        }
        if let Some(&last) = picks.last() {
            for (i, &s) in scores.iter().enumerate() {
                if !picks.contains(&i) {
                    prop_assert!(s <= scores[last] + 1e-12);
                }
            }
        }
    }

    /// bucket_levels is monotone: a larger delta never gets a lower level.
    #[test]
    fn bucket_levels_monotone(deltas in prop::collection::vec(-1.0f64..1.0, 1..20)) {
        let levels = bucket_levels(&deltas, 0.0);
        for i in 0..deltas.len() {
            for j in 0..deltas.len() {
                if deltas[i] > deltas[j] {
                    prop_assert!(levels[i] >= levels[j]);
                }
            }
        }
    }

    /// HKLD is non-negative and zero for identical posteriors.
    #[test]
    fn hkld_nonneg(p in probs_strategy(), reps in 2usize..6, k in 2usize..6) {
        let identical = vec![p.clone(); reps];
        prop_assert!(hkld_score(&identical, k).abs() < 1e-9);
        // Perturbed committee: still non-negative.
        let mut perturbed = identical.clone();
        let dim = p.len();
        perturbed[0] = {
            let mut q = vec![1e-3; dim];
            q[0] = 1.0 - 1e-3 * (dim - 1) as f64;
            q
        };
        prop_assert!(hkld_score(&perturbed, k) >= 0.0);
    }

    /// PrF1 from counts is always within [0, 1] and F1 is the harmonic
    /// mean when both parts are positive.
    #[test]
    fn prf1_invariants(tp in 0usize..50, extra_pred in 0usize..50, extra_gold in 0usize..50) {
        let m = PrF1::from_counts(tp, tp + extra_pred, tp + extra_gold);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        if m.precision > 0.0 && m.recall > 0.0 {
            let hm = 2.0 * m.precision * m.recall / (m.precision + m.recall);
            prop_assert!((m.f1 - hm).abs() < 1e-12);
        }
    }

    /// BIOES span codec round-trips arbitrary non-overlapping layouts.
    #[test]
    fn span_codec_roundtrip(layout in prop::collection::vec((1usize..4, 0usize..4, 0usize..3), 0..6)) {
        let scheme = TagScheme::conll();
        let mut tags: Vec<u16> = Vec::new();
        let mut expected = Vec::new();
        for (len, ty, gap) in layout {
            tags.extend(std::iter::repeat(0u16).take(gap));
            let start = tags.len();
            tags.extend(scheme.encode_span(len, ty));
            expected.push((start, start + len - 1, ty));
        }
        prop_assert_eq!(scheme.decode_spans(&tags), expected);
    }
}

//! Property-based tests for the significance tests and run analysis.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use histal_core::analysis::{area_under_curve, deficiency};
use histal_core::driver::{CurvePoint, RunResult};
use histal_core::stats::{
    paired_bootstrap, paired_bootstrap_ci, paired_permutation, wilcoxon_signed_rank,
    PairedComparison,
};

fn run_from(metrics: &[f64]) -> RunResult {
    RunResult {
        strategy_name: "p".into(),
        curve: metrics
            .iter()
            .enumerate()
            .map(|(i, &m)| CurvePoint {
                n_labeled: 10 * (i + 1),
                metric: m,
            })
            .collect(),
        rounds: vec![],
        history: vec![],
    }
}

fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 1..30)
}

// ---------------------------------------------------------------------
// From-scratch reference implementations of the interval estimators.
//
// These replicate the *documented* algorithms — resample counts, RNG
// draw order, quantile interpolation, p-value formulas — independently
// of `stats.rs`, and the proptests below pin the library bit-for-bit
// against them. A refactor that silently changes the RNG stream or the
// quantile maths breaks these, which is the point: journaled reports
// cite these numbers.
// ---------------------------------------------------------------------

/// Linear-interpolation quantile (ascending `sorted`, non-empty).
fn ref_quantile(sorted: &[f64], q: f64) -> f64 {
    let pos = q.clamp(0.0, 1.0) * (sorted.len() as f64 - 1.0);
    let below = sorted[pos.floor() as usize];
    let above = sorted[pos.ceil() as usize];
    below + (above - below) * (pos - pos.floor())
}

fn ref_census(diffs: &[f64]) -> (usize, usize, usize) {
    let wins = diffs.iter().filter(|d| **d > 1e-15).count();
    let losses = diffs.iter().filter(|d| **d < -1e-15).count();
    (wins, losses, diffs.len() - wins - losses)
}

/// Reference paired bootstrap: percentile CI over resampled mean
/// differences, sign-based two-sided p.
fn ref_bootstrap(a: &[f64], b: &[f64], iters: usize, seed: u64, alpha: f64) -> PairedComparison {
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean: f64 = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..iters)
        .map(|_| {
            (0..diffs.len())
                .map(|_| diffs[rng.gen_range(0..diffs.len())])
                .sum::<f64>()
                / diffs.len() as f64
        })
        .collect();
    let opposite = means
        .iter()
        .filter(|m| (**m >= 0.0) != (mean >= 0.0) || **m == 0.0)
        .count();
    means.sort_by(|x, y| x.total_cmp(y));
    let (wins, losses, ties) = ref_census(&diffs);
    PairedComparison {
        mean_diff: mean,
        ci_low: ref_quantile(&means, alpha / 2.0),
        ci_high: ref_quantile(&means, 1.0 - alpha / 2.0),
        p_value: (2.0 * (opposite as f64 + 1.0) / (iters as f64 + 1.0)).min(1.0),
        wins,
        losses,
        ties,
    }
}

/// Reference sign-flip permutation test: basic (pivotal) CI from the
/// null distribution, `(extreme + 1)/(iters + 1)` p.
fn ref_permutation(a: &[f64], b: &[f64], iters: usize, seed: u64, alpha: f64) -> PairedComparison {
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean: f64 = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..iters)
        .map(|_| {
            diffs
                .iter()
                .map(|d| if rng.gen::<bool>() { -d } else { *d })
                .sum::<f64>()
                / diffs.len() as f64
        })
        .collect();
    let extreme = means.iter().filter(|m| m.abs() >= mean.abs()).count();
    means.sort_by(|x, y| x.total_cmp(y));
    let (wins, losses, ties) = ref_census(&diffs);
    PairedComparison {
        mean_diff: mean,
        ci_low: mean - ref_quantile(&means, 1.0 - alpha / 2.0),
        ci_high: mean - ref_quantile(&means, alpha / 2.0),
        p_value: ((extreme as f64 + 1.0) / (iters as f64 + 1.0)).min(1.0),
        wins,
        losses,
        ties,
    }
}

/// Paired inputs guaranteed non-degenerate: one appended pair always
/// differs by at least 0.2, so the estimators never hit the all-tied
/// degenerate branch.
fn paired_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..24),
        (0.0f64..0.4, 0.6f64..1.0),
    )
        .prop_map(|(mut pairs, anchor)| {
            pairs.push(anchor);
            pairs.into_iter().unzip()
        })
}

proptest! {
    /// p-values are probabilities.
    #[test]
    fn p_values_in_unit_interval(a in samples_strategy(), shift in -0.2f64..0.2) {
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let w = wilcoxon_signed_rank(&a, &b);
        prop_assert!((0.0..=1.0).contains(&w.p_value), "wilcoxon p {}", w.p_value);
        let boot = paired_bootstrap(&a, &b, 200, 1);
        prop_assert!((0.0..=1.0).contains(&boot.p_value), "bootstrap p {}", boot.p_value);
    }

    /// Swapping the inputs negates the mean difference and preserves the
    /// p-value (two-sided symmetry).
    #[test]
    fn wilcoxon_symmetry(a in samples_strategy(), b_shift in -0.3f64..0.3) {
        let b: Vec<f64> = a.iter().map(|x| (x + b_shift).abs()).collect();
        let ab = wilcoxon_signed_rank(&a, &b);
        let ba = wilcoxon_signed_rank(&b, &a);
        prop_assert!((ab.mean_diff + ba.mean_diff).abs() < 1e-12);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }

    /// A uniformly shifted-up variant can never be "significantly worse".
    #[test]
    fn dominating_variant_never_significantly_worse(a in samples_strategy(), lift in 0.0f64..0.2) {
        let better: Vec<f64> = a.iter().map(|x| x + lift).collect();
        let t = wilcoxon_signed_rank(&better, &a);
        prop_assert!(t.mean_diff >= -1e-12);
    }

    /// ALC lies within the metric range of the curve.
    #[test]
    fn auc_within_metric_range(metrics in prop::collection::vec(0.0f64..1.0, 1..20)) {
        let r = run_from(&metrics);
        let auc = area_under_curve(&r);
        let lo = metrics.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = metrics.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(auc >= lo - 1e-12 && auc <= hi + 1e-12, "auc {auc} outside [{lo}, {hi}]");
    }

    /// `paired_bootstrap_ci` is bit-identical to the from-scratch
    /// reference: same RNG stream, same quantiles, same p-value.
    #[test]
    fn bootstrap_ci_matches_reference(
        (a, b) in paired_strategy(),
        iters in 1usize..300,
        seed in 0u64..1000,
    ) {
        let lib = paired_bootstrap_ci(&a, &b, iters, seed, 0.05);
        let reference = ref_bootstrap(&a, &b, iters, seed, 0.05);
        prop_assert_eq!(lib, reference);
    }

    /// `paired_permutation` is bit-identical to the from-scratch
    /// reference.
    #[test]
    fn permutation_matches_reference(
        (a, b) in paired_strategy(),
        iters in 1usize..300,
        seed in 0u64..1000,
    ) {
        let lib = paired_permutation(&a, &b, iters, seed, 0.05);
        let reference = ref_permutation(&a, &b, iters, seed, 0.05);
        prop_assert_eq!(lib, reference);
    }

    /// Swapping the inputs of the permutation test negates the mean
    /// difference, mirrors the CI, and keeps the p-value: the sign
    /// flips consume the identical RNG stream either way.
    #[test]
    fn permutation_swap_symmetry((a, b) in paired_strategy(), seed in 0u64..1000) {
        let ab = paired_permutation(&a, &b, 100, seed, 0.05);
        let ba = paired_permutation(&b, &a, 100, seed, 0.05);
        prop_assert!((ab.mean_diff + ba.mean_diff).abs() < 1e-12);
        prop_assert!((ab.ci_low + ba.ci_high).abs() < 1e-9, "{} vs {}", ab.ci_low, ba.ci_high);
        prop_assert!((ab.ci_high + ba.ci_low).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-12);
        prop_assert_eq!((ab.wins, ab.losses, ab.ties), (ba.losses, ba.wins, ba.ties));
    }

    /// Interval estimators behave like probabilities and intervals: CI
    /// ends ordered, p in (0, 1], and the identical-input degenerate
    /// case collapses to a point interval with p = 1.
    #[test]
    fn interval_estimators_basic_shape((a, b) in paired_strategy(), seed in 0u64..1000) {
        for cmp in [
            paired_bootstrap_ci(&a, &b, 150, seed, 0.05),
            paired_permutation(&a, &b, 150, seed, 0.05),
        ] {
            prop_assert!(cmp.ci_low <= cmp.ci_high + 1e-12);
            prop_assert!(cmp.p_value > 0.0 && cmp.p_value <= 1.0);
            prop_assert_eq!(cmp.wins + cmp.losses + cmp.ties, a.len());
        }
        let same = paired_bootstrap_ci(&a, &a, 150, seed, 0.05);
        prop_assert_eq!(same.p_value, 1.0);
        prop_assert_eq!(same.ci_low, same.ci_high);
    }

    /// Deficiency is positive, and reciprocal under argument swap when
    /// both curves leave room under the ceiling.
    #[test]
    fn deficiency_reciprocal(metrics in prop::collection::vec(0.0f64..0.9, 2..15), lift in 0.01f64..0.09) {
        let a = run_from(&metrics);
        let lifted: Vec<f64> = metrics.iter().map(|m| m + lift).collect();
        let b = run_from(&lifted);
        let dab = deficiency(&a, &b);
        let dba = deficiency(&b, &a);
        prop_assert!(dab > 0.0 && dba > 0.0);
        prop_assert!((dab * dba - 1.0).abs() < 1e-9, "{dab} * {dba} != 1");
        // The lifted curve dominates → its deficiency vs the base < 1.
        prop_assert!(dba <= 1.0 + 1e-12);
    }
}

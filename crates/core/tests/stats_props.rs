//! Property-based tests for the significance tests and run analysis.

use proptest::prelude::*;

use histal_core::analysis::{area_under_curve, deficiency};
use histal_core::driver::{CurvePoint, RunResult};
use histal_core::stats::{paired_bootstrap, wilcoxon_signed_rank};

fn run_from(metrics: &[f64]) -> RunResult {
    RunResult {
        strategy_name: "p".into(),
        curve: metrics
            .iter()
            .enumerate()
            .map(|(i, &m)| CurvePoint {
                n_labeled: 10 * (i + 1),
                metric: m,
            })
            .collect(),
        rounds: vec![],
        history: vec![],
    }
}

fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 1..30)
}

proptest! {
    /// p-values are probabilities.
    #[test]
    fn p_values_in_unit_interval(a in samples_strategy(), shift in -0.2f64..0.2) {
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let w = wilcoxon_signed_rank(&a, &b);
        prop_assert!((0.0..=1.0).contains(&w.p_value), "wilcoxon p {}", w.p_value);
        let boot = paired_bootstrap(&a, &b, 200, 1);
        prop_assert!((0.0..=1.0).contains(&boot.p_value), "bootstrap p {}", boot.p_value);
    }

    /// Swapping the inputs negates the mean difference and preserves the
    /// p-value (two-sided symmetry).
    #[test]
    fn wilcoxon_symmetry(a in samples_strategy(), b_shift in -0.3f64..0.3) {
        let b: Vec<f64> = a.iter().map(|x| (x + b_shift).abs()).collect();
        let ab = wilcoxon_signed_rank(&a, &b);
        let ba = wilcoxon_signed_rank(&b, &a);
        prop_assert!((ab.mean_diff + ba.mean_diff).abs() < 1e-12);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }

    /// A uniformly shifted-up variant can never be "significantly worse".
    #[test]
    fn dominating_variant_never_significantly_worse(a in samples_strategy(), lift in 0.0f64..0.2) {
        let better: Vec<f64> = a.iter().map(|x| x + lift).collect();
        let t = wilcoxon_signed_rank(&better, &a);
        prop_assert!(t.mean_diff >= -1e-12);
    }

    /// ALC lies within the metric range of the curve.
    #[test]
    fn auc_within_metric_range(metrics in prop::collection::vec(0.0f64..1.0, 1..20)) {
        let r = run_from(&metrics);
        let auc = area_under_curve(&r);
        let lo = metrics.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = metrics.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(auc >= lo - 1e-12 && auc <= hi + 1e-12, "auc {auc} outside [{lo}, {hi}]");
    }

    /// Deficiency is positive, and reciprocal under argument swap when
    /// both curves leave room under the ceiling.
    #[test]
    fn deficiency_reciprocal(metrics in prop::collection::vec(0.0f64..0.9, 2..15), lift in 0.01f64..0.09) {
        let a = run_from(&metrics);
        let lifted: Vec<f64> = metrics.iter().map(|m| m + lift).collect();
        let b = run_from(&lifted);
        let dab = deficiency(&a, &b);
        let dba = deficiency(&b, &a);
        prop_assert!(dab > 0.0 && dba > 0.0);
        prop_assert!((dab * dba - 1.0).abs() < 1e-9, "{dab} * {dba} != 1");
        // The lifted curve dominates → its deficiency vs the base < 1.
        prop_assert!(dba <= 1.0 + 1e-12);
    }
}

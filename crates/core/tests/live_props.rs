//! Property tests of the interactive [`Session`] against the batch
//! driver: same pipeline, same bytes.
//!
//! Three contracts are pinned here:
//!
//! 1. **Driver equivalence** — a `Session` answering its own tickets
//!    from the hidden labels produces the *identical* `RunResult` (modulo
//!    wall-clock timings) as `ActiveLearner::run` on the same inputs.
//! 2. **Arrival-order independence** — chunked, shuffled, duplicated
//!    `submit` deliveries converge to the same state as one in-order
//!    delivery per ticket.
//! 3. **Snapshot/restore byte-identity** — restoring a mid-run snapshot
//!    onto a fresh builder reproduces the original session exactly:
//!    finishing both yields equal results.

use proptest::prelude::*;
use rand_chacha::ChaCha8Rng;

use histal_core::driver::{ActiveLearner, PoolConfig, RunResult};
use histal_core::error::ErrorKind;
use histal_core::eval::{EvalCaps, SampleEval};
use histal_core::live::SessionStep;
use histal_core::model::Model;
use histal_core::pipeline::LabelResponse;
use histal_core::session::SessionBuilder;
use histal_core::strategy::{BaseStrategy, HistoryPolicy, Strategy as AlStrategy};

/// Posterior fixed by the sample value; fit is a no-op, metric counts
/// the labeled set so curves are distinguishable run to run.
#[derive(Clone)]
struct FixedModel {
    fitted: usize,
}

impl Model for FixedModel {
    type Sample = f64;
    type Label = usize;

    fn fit(&mut self, samples: &[&f64], _: &[&usize], _: &mut ChaCha8Rng) {
        self.fitted = samples.len();
    }

    fn eval_sample(&self, sample: &f64, _: &EvalCaps, _: u64) -> SampleEval {
        let p = sample.clamp(0.0, 1.0);
        SampleEval::from_probs(vec![p, 1.0 - p])
    }

    fn metric(&self, _: &[&f64], _: &[&usize]) -> f64 {
        self.fitted as f64
    }
}

fn pool_data(n: usize) -> (Vec<f64>, Vec<usize>) {
    // Irrational-ish stride keeps scores distinct and order nontrivial.
    let samples: Vec<f64> = (0..n)
        .map(|i| ((i * 37 + 11) % n) as f64 / n as f64)
        .collect();
    let labels: Vec<usize> = samples.iter().map(|&x| usize::from(x >= 0.5)).collect();
    (samples, labels)
}

fn builder(
    n: usize,
    policy: HistoryPolicy,
    batch: usize,
    rounds: usize,
    seed: u64,
) -> SessionBuilder<FixedModel, histal_core::session::Ready> {
    let (samples, labels) = pool_data(n);
    ActiveLearner::builder(FixedModel { fitted: 0 })
        .pool(samples, labels)
        .test(vec![0.1, 0.9], vec![0, 1])
        .strategy(AlStrategy::new(BaseStrategy::Entropy).with_history(policy))
        .config(PoolConfig {
            batch_size: batch,
            rounds,
            init_labeled: batch,
            history_max_len: None,
            record_history: true,
            ann: None,
        })
        .seed(seed)
}

/// Wall-clock fields are the one legitimate difference between two runs
/// of the same computation; zero them before comparing.
fn canonical(mut result: RunResult) -> String {
    for round in &mut result.rounds {
        round.fit_ms = 0.0;
        round.eval_ms = 0.0;
        round.score_ms = 0.0;
        round.select_ms = 0.0;
    }
    serde_json::to_string(&result).expect("RunResult serializes")
}

fn policies() -> impl Strategy<Value = HistoryPolicy> {
    prop_oneof![
        Just(HistoryPolicy::CurrentOnly),
        Just(HistoryPolicy::Hus { k: 2 }),
        Just(HistoryPolicy::Wshs { l: 3 }),
        Just(HistoryPolicy::Fhs {
            l: 3,
            w_score: 1.0,
            w_fluct: 0.5
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: the interactive session answering its own tickets is
    /// the batch driver, byte for byte.
    #[test]
    fn session_matches_driver(
        n in 8usize..40,
        batch in 1usize..4,
        rounds in 1usize..6,
        seed in 0u64..1000,
        policy in policies(),
    ) {
        let batch_result = builder(n, policy, batch, rounds, seed)
            .build()
            .run()
            .expect("entropy needs no extra capabilities");
        let live_result = builder(n, policy, batch, rounds, seed)
            .build_session()
            .run_hidden()
            .expect("hidden labels present");
        prop_assert_eq!(canonical(batch_result), canonical(live_result));
    }

    /// Contract 2: chunked / shuffled / partially duplicated deliveries
    /// converge to the in-order result. The shuffle order is driven by
    /// proptest, independent of the session's own RNG.
    #[test]
    fn submission_order_is_irrelevant(
        n in 8usize..32,
        batch in 2usize..5,
        rounds in 1usize..5,
        seed in 0u64..1000,
        perm_seed in 0u64..1000,
        policy in policies(),
    ) {
        let reference = builder(n, policy, batch, rounds, seed)
            .build_session()
            .run_hidden()
            .expect("hidden labels present");

        let mut session = builder(n, policy, batch, rounds, seed).build_session();
        let mut scramble = {
            use rand::SeedableRng;
            ChaCha8Rng::seed_from_u64(perm_seed)
        };
        loop {
            match session.step().expect("step never fails for entropy") {
                SessionStep::Done => break,
                SessionStep::AwaitingLabels => {
                    let full = session.answer_from_hidden().expect("hidden labels");
                    // Shuffle the labels, then deliver one at a time,
                    // re-sending the previous label alongside each new
                    // one (duplicate delivery).
                    let mut labels = full.labels.clone();
                    use rand::prelude::SliceRandom;
                    labels.shuffle(&mut scramble);
                    let mut prev: Option<(usize, usize)> = None;
                    for &(id, label) in &labels {
                        let mut chunk = vec![(id, label)];
                        if let Some(p) = prev {
                            chunk.push(p);
                        }
                        let outcome = session
                            .submit(&LabelResponse { ticket: full.ticket, labels: chunk })
                            .expect("valid labels are accepted");
                        prop_assert_eq!(outcome.accepted, 1);
                        prop_assert_eq!(outcome.duplicates, usize::from(prev.is_some()));
                        prev = Some((id, label));
                    }
                }
            }
        }
        let scrambled = session.result().expect("session done").clone();
        prop_assert_eq!(canonical(reference), canonical(scrambled));
    }

    /// Contract 3: a snapshot taken at any ticket boundary restores to a
    /// session whose remaining run is identical to the original's.
    #[test]
    fn snapshot_restore_is_byte_identical(
        n in 8usize..32,
        batch in 1usize..4,
        rounds in 2usize..6,
        seed in 0u64..1000,
        stop_after in 0usize..4,
        policy in policies(),
    ) {
        let mut original = builder(n, policy, batch, rounds, seed).build_session();
        // Run the original up to `stop_after` fulfilled tickets (or done).
        let mut fulfilled = 0;
        while fulfilled < stop_after {
            match original.step().expect("step") {
                SessionStep::Done => break,
                SessionStep::AwaitingLabels => {
                    let full = original.answer_from_hidden().expect("hidden labels");
                    original.submit(&full).expect("valid labels");
                    fulfilled += 1;
                }
            }
        }
        let snapshot = original.snapshot();
        prop_assert_eq!(snapshot.tickets.len(), fulfilled);

        let mut restored = builder(n, policy, batch, rounds, seed)
            .restore(&snapshot)
            .expect("snapshot matches its own configuration");
        prop_assert_eq!(
            serde_json::to_string(&original.status()).unwrap(),
            serde_json::to_string(&restored.status()).unwrap()
        );
        let a = original.run_hidden().expect("hidden labels");
        let b = restored.run_hidden().expect("hidden labels");
        prop_assert_eq!(canonical(a), canonical(b));
    }

    /// Contract 4: driving the session one round at a time
    /// (`run_round_hidden`) with a `RoundObserver` installed yields a
    /// byte-identical prefix of the uninterrupted run, and the observer
    /// sees every curve point exactly once, in order.
    #[test]
    fn round_streaming_is_a_byte_identical_prefix(
        n in 8usize..32,
        batch in 1usize..4,
        rounds in 2usize..6,
        seed in 0u64..1000,
        cut in 1usize..5,
        policy in policies(),
    ) {
        use std::sync::{Arc, Mutex};

        use histal_core::driver::CurvePoint;
        use histal_core::live::RoundObserver;
        use histal_core::stopping::StopReason;

        let full = builder(n, policy, batch, rounds, seed)
            .build_session()
            .run_hidden()
            .expect("hidden labels present");

        struct Spy(Arc<Mutex<Vec<usize>>>);
        impl RoundObserver for Spy {
            fn on_round(&mut self, curve: &[CurvePoint]) {
                self.0.lock().expect("spy lock").push(curve.len());
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut session = builder(n, policy, batch, rounds, seed).build_session();
        session.set_round_observer(Box::new(Spy(seen.clone())));
        let mut done = false;
        for _ in 0..cut {
            if session.run_round_hidden().expect("hidden labels") == SessionStep::Done {
                done = true;
                break;
            }
        }
        let points = session.curve().len();
        prop_assert_eq!(
            seen.lock().expect("spy lock").clone(),
            (1..=points).collect::<Vec<usize>>()
        );
        let curve_json =
            |c: &[CurvePoint]| serde_json::to_string(c).expect("curve serializes");
        prop_assert_eq!(curve_json(session.curve()), curve_json(&full.curve[..points]));
        if !done {
            session.finish_early(StopReason::Pruned);
            prop_assert_eq!(session.stop_reason(), Some(StopReason::Pruned));
        }
        let truncated = session.result().expect("finished session").clone();
        prop_assert_eq!(curve_json(&truncated.curve), curve_json(&full.curve[..points]));
        let selections = |rounds: &[histal_core::driver::RoundRecord]| -> Vec<(usize, Vec<usize>)> {
            rounds.iter().map(|r| (r.round, r.selected.clone())).collect()
        };
        prop_assert_eq!(
            selections(&truncated.rounds),
            selections(&full.rounds[..truncated.rounds.len()])
        );
    }
}

#[test]
fn snapshot_roundtrips_through_json_and_preserves_partial_labels() {
    let mut session = builder(12, HistoryPolicy::Wshs { l: 3 }, 3, 3, 7).build_session();
    assert_eq!(session.step().unwrap(), SessionStep::AwaitingLabels);
    let full = session.answer_from_hidden().unwrap();
    session.submit(&full).unwrap();
    assert_eq!(session.step().unwrap(), SessionStep::AwaitingLabels);
    // Deliver only part of the second ticket.
    let next = session.answer_from_hidden().unwrap();
    let partial = LabelResponse {
        ticket: next.ticket,
        labels: next.labels[..1].to_vec(),
    };
    session.submit(&partial).unwrap();

    let snapshot = session.snapshot();
    assert_eq!(snapshot.tickets.len(), 1);
    assert_eq!(snapshot.partial.len(), 1);
    let json = serde_json::to_string(&snapshot).unwrap();
    let parsed: histal_core::live::SessionSnapshot<usize> = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed, snapshot);

    let restored = builder(12, HistoryPolicy::Wshs { l: 3 }, 3, 3, 7)
        .restore(&parsed)
        .unwrap();
    assert_eq!(restored.status(), session.status());
    assert_eq!(restored.status().pending_remaining, next.labels.len() - 1);
}

#[test]
fn restore_rejects_mismatched_configuration() {
    let mut session = builder(12, HistoryPolicy::Wshs { l: 3 }, 3, 3, 7).build_session();
    session.step().unwrap();
    let snapshot = session.snapshot();
    // Different seed → different config hash → Conflict.
    let err = match builder(12, HistoryPolicy::Wshs { l: 3 }, 3, 3, 8).restore(&snapshot) {
        Err(err) => err,
        Ok(_) => panic!("restore onto a different seed must fail"),
    };
    assert!(
        matches!(err.kind, ErrorKind::Conflict { .. }),
        "got {:?}",
        err.kind
    );
}

#[test]
fn submit_rejects_conflicts_and_unknowns() {
    let mut session = builder(12, HistoryPolicy::CurrentOnly, 3, 3, 7).build_session();
    session.step().unwrap();
    let full = session.answer_from_hidden().unwrap();
    let (first_id, first_label) = full.labels[0];

    // Unknown ticket.
    let err = session
        .submit(&LabelResponse {
            ticket: 99,
            labels: vec![(first_id, first_label)],
        })
        .unwrap_err();
    assert!(
        matches!(err.kind, ErrorKind::NotFound { .. }),
        "got {:?}",
        err.kind
    );

    // Sample the ticket never asked about.
    let not_asked = (0..12).find(|id| !full.indices_contains(*id)).unwrap();
    let err = session
        .submit(&LabelResponse {
            ticket: full.ticket,
            labels: vec![(not_asked, 0)],
        })
        .unwrap_err();
    assert!(
        matches!(err.kind, ErrorKind::NotFound { .. }),
        "got {:?}",
        err.kind
    );

    // Contradicting an accepted label is a conflict; re-sending the same
    // value is an acknowledged duplicate.
    session
        .submit(&LabelResponse {
            ticket: full.ticket,
            labels: vec![(first_id, first_label)],
        })
        .unwrap();
    let err = session
        .submit(&LabelResponse {
            ticket: full.ticket,
            labels: vec![(first_id, 1 - first_label)],
        })
        .unwrap_err();
    assert!(
        matches!(err.kind, ErrorKind::Conflict { .. }),
        "got {:?}",
        err.kind
    );
    let again = session
        .submit(&LabelResponse {
            ticket: full.ticket,
            labels: vec![(first_id, first_label)],
        })
        .unwrap();
    assert_eq!(again.duplicates, 1);
    assert_eq!(again.accepted, 0);
}

/// Convenience used by the unknown-sample test.
trait IndicesContains {
    fn indices_contains(&self, id: usize) -> bool;
}

impl IndicesContains for LabelResponse<usize> {
    fn indices_contains(&self, id: usize) -> bool {
        self.labels.iter().any(|&(i, _)| i == id)
    }
}

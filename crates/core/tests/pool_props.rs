//! Property-based tests of the [`Pool`] labeled/unlabeled partition and
//! of the driver's guarantee that every annotated sample comes from the
//! unlabeled side.
//!
//! The partition invariants are checked against a naive oracle — a
//! `Vec<bool>` mask filtered per query, exactly the representation the
//! pipeline refactor replaced — across random label/unlabel sequences.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rand_chacha::ChaCha8Rng;

use histal_core::driver::{ActiveLearner, PoolConfig};
use histal_core::eval::{EvalCaps, SampleEval};
use histal_core::model::Model;
use histal_core::pipeline::{InstantOracle, SyncOracle};
use histal_core::pool::{Pool, SampleId};
use histal_core::strategy::{BaseStrategy, HistoryPolicy, Strategy as AlStrategy};

/// One step of a random partition workout.
#[derive(Debug, Clone)]
enum Op {
    /// Label a batch drawn (mod pool size) from these raw indices,
    /// skipping duplicates and already-labeled ids.
    LabelBatch(Vec<usize>),
    /// Unlabel the id at this raw position (mod labeled count), if any.
    Unlabel(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(0usize..1000, 1..8).prop_map(Op::LabelBatch),
            prop::collection::vec(0usize..1000, 1..8).prop_map(Op::LabelBatch),
            prop::collection::vec(0usize..1000, 1..8).prop_map(Op::LabelBatch),
            (0usize..1000).prop_map(Op::Unlabel),
        ],
        0..40,
    )
}

/// The naive mask representation the `Pool` replaced: a `Vec<bool>` plus
/// a labeling-order list, with the unlabeled side rebuilt by filtering.
struct NaiveMask {
    mask: Vec<bool>,
    labeled_order: Vec<usize>,
}

impl NaiveMask {
    fn new(n: usize) -> Self {
        Self {
            mask: vec![false; n],
            labeled_order: Vec::new(),
        }
    }

    fn unlabeled(&self) -> Vec<usize> {
        (0..self.mask.len()).filter(|&i| !self.mask[i]).collect()
    }
}

proptest! {
    /// After any sequence of batched labelings and unlabelings, the pool's
    /// incremental partition equals the naive mask-filter oracle:
    /// unlabeled ascending by id, labeled in labeling order, counts
    /// consistent.
    #[test]
    fn partition_matches_naive_mask_oracle(n in 1usize..60, ops in ops()) {
        let mut pool = Pool::new(n);
        let mut naive = NaiveMask::new(n);

        for op in ops {
            match op {
                Op::LabelBatch(raw) => {
                    let mut batch: Vec<usize> = Vec::new();
                    for r in raw {
                        let id = r % n;
                        if !naive.mask[id] && !batch.contains(&id) {
                            batch.push(id);
                        }
                    }
                    if batch.is_empty() {
                        continue;
                    }
                    pool.label_batch(&batch);
                    for &id in &batch {
                        naive.mask[id] = true;
                        naive.labeled_order.push(id);
                    }
                }
                Op::Unlabel(raw) => {
                    if naive.labeled_order.is_empty() {
                        continue;
                    }
                    let pos = raw % naive.labeled_order.len();
                    let id = naive.labeled_order.remove(pos);
                    naive.mask[id] = false;
                    pool.unlabel(id);
                }
            }

            // Partition equality against the filter-rebuilt oracle.
            prop_assert_eq!(pool.unlabeled(), &naive.unlabeled()[..]);
            prop_assert_eq!(pool.labeled(), &naive.labeled_order[..]);
            prop_assert_eq!(pool.n_labeled() + pool.n_unlabeled(), n);
            for id in 0..n {
                prop_assert_eq!(pool.is_labeled(id), naive.mask[id]);
            }
            // The unlabeled side stays ascending — the iteration-order
            // contract the RNG pairing depends on.
            prop_assert!(pool.unlabeled().windows(2).all(|w| w[0] < w[1]));
        }
    }
}

/// Posterior fixed by the sample value; fit is a no-op.
#[derive(Clone)]
struct FixedModel;

impl Model for FixedModel {
    type Sample = f64;
    type Label = usize;

    fn fit(&mut self, _: &[&f64], _: &[&usize], _: &mut ChaCha8Rng) {}

    fn eval_sample(&self, sample: &f64, _: &EvalCaps, _: u64) -> SampleEval {
        let p = sample.clamp(0.0, 1.0);
        SampleEval::from_probs(vec![p, 1.0 - p])
    }

    fn metric(&self, _: &[&f64], _: &[&usize]) -> f64 {
        0.0
    }
}

/// Oracle that records every annotation request it receives.
struct RecordingOracle {
    labels: Vec<usize>,
    calls: Arc<Mutex<Vec<SampleId>>>,
}

impl InstantOracle<FixedModel> for RecordingOracle {
    fn annotate(&mut self, id: SampleId, _sample: &f64) -> usize {
        self.calls.lock().unwrap().push(id);
        self.labels[id]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every id the driver annotates — the initial set and each round's
    /// `RoundRecord::selected` — was on the unlabeled side at annotation
    /// time: replaying the oracle's call log against a fresh `Pool`
    /// never labels a sample twice, and the per-round records match the
    /// oracle's log exactly.
    #[test]
    fn selected_always_from_unlabeled_side(
        n in 8usize..40,
        batch in 1usize..4,
        rounds in 1usize..6,
        seed in 0u64..1000,
    ) {
        let pool_samples: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let labels: Vec<usize> = pool_samples.iter().map(|&x| usize::from(x >= 0.5)).collect();
        let calls = Arc::new(Mutex::new(Vec::new()));
        let oracle = RecordingOracle { labels, calls: Arc::clone(&calls) };

        let mut learner = ActiveLearner::builder(FixedModel)
            .pool_with_oracle(pool_samples, Box::new(SyncOracle::new(oracle)))
            .test(vec![0.1, 0.9], vec![0, 1])
            .strategy(AlStrategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 }))
            .config(PoolConfig {
                batch_size: batch,
                rounds,
                init_labeled: batch,
                history_max_len: None,
                record_history: false,
                ann: None,
            })
            .seed(seed)
            .build();
        let result = learner.run().expect("entropy needs no extra capabilities");

        let calls = calls.lock().unwrap();
        let init = batch.min(n);

        // Replaying the full annotation log against a fresh Pool panics
        // if any id was ever labeled twice; reaching the end proves every
        // annotation came from the unlabeled side.
        let mut replay = Pool::new(n);
        for &id in calls.iter() {
            prop_assert!(!replay.is_labeled(id), "sample {} annotated twice", id);
            replay.label(id);
        }

        // The round records are exactly the oracle's post-init call log.
        let from_rounds: Vec<usize> =
            result.rounds.iter().flat_map(|r| r.selected.iter().copied()).collect();
        prop_assert_eq!(&calls[init..], &from_rounds[..]);
        prop_assert_eq!(replay.n_labeled(), init + from_rounds.len());
    }
}

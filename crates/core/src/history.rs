//! Storage for historical evaluation sequences.
//!
//! `H_t(x) = [φ_1(x), …, φ_t(x)]` for every pool sample `x`. The paper's
//! efficiency analysis (Table 2) notes that strategies only ever read the
//! last `l` scores, so the store can optionally truncate each sequence to
//! a maximum retained length, bounding memory at `O(l · N)`.

use serde::{Deserialize, Serialize};

/// Per-sample historical evaluation sequences, indexed by pool position.
///
/// ```
/// use histal_core::history::HistoryStore;
/// let mut h = HistoryStore::with_max_len(2, 3);
/// for round in 0..5 {
///     h.append(0, round as f64 / 10.0);
/// }
/// // Only the last 3 scores are retained (the O(l·N) mode of Table 2).
/// assert_eq!(h.seq(0), &[0.2, 0.3, 0.4]);
/// assert_eq!(h.current(1), None);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryStore {
    seqs: Vec<Vec<f64>>,
    /// Maximum retained sequence length; `None` keeps everything.
    max_len: Option<usize>,
}

impl HistoryStore {
    /// A store for `n_samples` sequences with unbounded retention.
    pub fn new(n_samples: usize) -> Self {
        Self {
            seqs: vec![Vec::new(); n_samples],
            max_len: None,
        }
    }

    /// A store that retains only the last `max_len` scores per sample —
    /// the `O(l·N)` space mode of Table 2.
    pub fn with_max_len(n_samples: usize, max_len: usize) -> Self {
        assert!(max_len > 0, "retention window must be positive");
        Self {
            seqs: vec![Vec::new(); n_samples],
            max_len: Some(max_len),
        }
    }

    /// Number of tracked samples.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when tracking no samples.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Append this iteration's score for sample `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn append(&mut self, id: usize, score: f64) {
        let seq = &mut self.seqs[id];
        seq.push(score);
        if let Some(cap) = self.max_len {
            if seq.len() > cap {
                seq.remove(0);
            }
        }
    }

    /// The retained sequence for sample `id` (oldest first).
    pub fn seq(&self, id: usize) -> &[f64] {
        &self.seqs[id]
    }

    /// The most recent score, if any.
    pub fn current(&self, id: usize) -> Option<f64> {
        self.seqs[id].last().copied()
    }

    /// Iterations recorded for sample `id` (capped by retention).
    pub fn recorded_len(&self, id: usize) -> usize {
        self.seqs[id].len()
    }

    /// All non-empty sequences, cloned — training corpus for the LHS
    /// next-score predictor.
    pub fn non_empty_sequences(&self) -> Vec<Vec<f64>> {
        self.seqs
            .iter()
            .filter(|s| !s.is_empty())
            .cloned()
            .collect()
    }

    /// Consume the store, returning every sequence indexed by sample id.
    pub fn into_sequences(self) -> Vec<Vec<f64>> {
        self.seqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut h = HistoryStore::new(3);
        h.append(1, 0.5);
        h.append(1, 0.7);
        assert_eq!(h.seq(1), &[0.5, 0.7]);
        assert_eq!(h.current(1), Some(0.7));
        assert!(h.seq(0).is_empty());
        assert_eq!(h.current(0), None);
    }

    #[test]
    fn retention_caps_length_keeping_latest() {
        let mut h = HistoryStore::with_max_len(1, 3);
        for i in 0..5 {
            h.append(0, i as f64);
        }
        assert_eq!(h.seq(0), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut h = HistoryStore::new(1);
        for i in 0..100 {
            h.append(0, i as f64);
        }
        assert_eq!(h.recorded_len(0), 100);
    }

    #[test]
    fn non_empty_sequences_skips_empty() {
        let mut h = HistoryStore::new(3);
        h.append(0, 1.0);
        h.append(2, 2.0);
        let seqs = h.non_empty_sequences();
        assert_eq!(seqs.len(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_append_panics() {
        let mut h = HistoryStore::new(1);
        h.append(5, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_retention_panics() {
        let _ = HistoryStore::with_max_len(1, 0);
    }
}

//! Storage for historical evaluation sequences.
//!
//! `H_t(x) = [φ_1(x), …, φ_t(x)]` for every pool sample `x`. The paper's
//! efficiency analysis (Table 2) notes that strategies only ever read the
//! last `l` scores, so the store can optionally truncate each sequence to
//! a maximum retained length, bounding memory at `O(l · N)`. Sequences
//! are `VecDeque`-backed, so that truncation is an O(1) `pop_front`.
//!
//! With [`HistoryStore::with_rolling`] the store additionally maintains a
//! [`RollingStats`] tracker per sample — window sum, exponentially
//! weighted sum and variance, updated in O(1) per append — so the
//! WSHS/FHS/HUS folds cost constant time per sample per round instead of
//! rescanning the window (see [`crate::strategy::HistoryPolicy`]).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use histal_tseries::RollingStats;

/// Per-sample historical evaluation sequences, indexed by pool position.
///
/// ```
/// use histal_core::history::HistoryStore;
/// let mut h = HistoryStore::with_max_len(2, 3);
/// for round in 0..5 {
///     h.append(0, round as f64 / 10.0);
/// }
/// // Only the last 3 scores are retained (the O(l·N) mode of Table 2).
/// assert_eq!(h.seq(0), [0.2, 0.3, 0.4]);
/// assert_eq!(h.current(1), None);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryStore {
    seqs: Vec<VecDeque<f64>>,
    /// Maximum retained sequence length; `None` keeps everything.
    max_len: Option<usize>,
    /// Effective rolling-statistics window; `None` disables the trackers.
    #[serde(default)]
    rolling_window: Option<usize>,
    /// Per-sample rolling trackers (empty unless rolling is enabled).
    #[serde(default)]
    rolling: Vec<RollingStats>,
}

impl HistoryStore {
    /// A store for `n_samples` sequences with unbounded retention.
    pub fn new(n_samples: usize) -> Self {
        Self {
            seqs: vec![VecDeque::new(); n_samples],
            max_len: None,
            rolling_window: None,
            rolling: Vec::new(),
        }
    }

    /// A store that retains only the last `max_len` scores per sample —
    /// the `O(l·N)` space mode of Table 2.
    pub fn with_max_len(n_samples: usize, max_len: usize) -> Self {
        assert!(max_len > 0, "retention window must be positive");
        Self {
            seqs: vec![VecDeque::new(); n_samples],
            max_len: Some(max_len),
            rolling_window: None,
            rolling: Vec::new(),
        }
    }

    /// Enable O(1) rolling statistics over the last `window` scores of
    /// every sample. The effective window is clamped to the retention cap
    /// (a capped store never holds more than `max_len` scores, so the
    /// from-scratch fold never sees more either).
    pub fn with_rolling(mut self, window: usize) -> Self {
        assert!(window > 0, "rolling window must be positive");
        let eff = self.max_len.map_or(window, |cap| window.min(cap));
        self.rolling_window = Some(eff);
        self.rolling = vec![RollingStats::new(eff); self.seqs.len()];
        self
    }

    /// Number of tracked samples.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when tracking no samples.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Append this iteration's score for sample `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn append(&mut self, id: usize, score: f64) {
        if let Some(window) = self.rolling_window {
            let seq = &self.seqs[id];
            let evicted = (seq.len() >= window).then(|| seq[seq.len() - window]);
            self.rolling[id].push(score, evicted);
        }
        let seq = &mut self.seqs[id];
        seq.push_back(score);
        if let Some(cap) = self.max_len {
            if seq.len() > cap {
                seq.pop_front();
            }
        }
    }

    /// The retained sequence for sample `id` (oldest first).
    pub fn seq(&self, id: usize) -> HistorySeq<'_> {
        let (front, back) = self.seqs[id].as_slices();
        HistorySeq { front, back }
    }

    /// The rolling tracker for sample `id`, if rolling statistics were
    /// enabled with [`Self::with_rolling`].
    pub fn rolling(&self, id: usize) -> Option<&RollingStats> {
        self.rolling.get(id)
    }

    /// The most recent score, if any.
    pub fn current(&self, id: usize) -> Option<f64> {
        self.seqs[id].back().copied()
    }

    /// Iterations recorded for sample `id` (capped by retention).
    pub fn recorded_len(&self, id: usize) -> usize {
        self.seqs[id].len()
    }

    /// All non-empty sequences, cloned — training corpus for the LHS
    /// next-score predictor.
    pub fn non_empty_sequences(&self) -> Vec<Vec<f64>> {
        self.seqs
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| s.iter().copied().collect())
            .collect()
    }

    /// Consume the store, returning every sequence indexed by sample id.
    pub fn into_sequences(self) -> Vec<Vec<f64>> {
        self.seqs
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect()
    }
}

/// Borrowed view of one sample's retained sequence, oldest first.
///
/// The backing ring buffer may wrap, so the view is at most two slices;
/// iterate with [`HistorySeq::iter`] or materialize with
/// [`HistorySeq::copy_into`] / [`HistorySeq::to_vec`].
#[derive(Debug, Clone, Copy)]
pub struct HistorySeq<'a> {
    front: &'a [f64],
    back: &'a [f64],
}

impl<'a> HistorySeq<'a> {
    /// Number of retained scores.
    pub fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty() && self.back.is_empty()
    }

    /// The most recent score.
    pub fn last(&self) -> Option<f64> {
        self.back.last().or_else(|| self.front.last()).copied()
    }

    /// The two backing segments `(front, back)`: the logical sequence is
    /// their concatenation, oldest first. Either may be empty. This is
    /// the zero-copy entry point for the `histal_tseries::*_parts` folds,
    /// which score a wrapped ring buffer without materializing it.
    pub fn as_slices(&self) -> (&'a [f64], &'a [f64]) {
        (self.front, self.back)
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = f64> + 'a {
        self.front.iter().chain(self.back.iter()).copied()
    }

    /// Replace `buf`'s contents with the sequence (reusable scratch).
    pub fn copy_into(&self, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend_from_slice(self.front);
        buf.extend_from_slice(self.back);
    }

    /// The sequence as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        self.copy_into(&mut out);
        out
    }
}

impl PartialEq<[f64]> for HistorySeq<'_> {
    fn eq(&self, other: &[f64]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl<const N: usize> PartialEq<[f64; N]> for HistorySeq<'_> {
    fn eq(&self, other: &[f64; N]) -> bool {
        *self == other[..]
    }
}

impl PartialEq<&[f64]> for HistorySeq<'_> {
    fn eq(&self, other: &&[f64]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<f64>> for HistorySeq<'_> {
    fn eq(&self, other: &Vec<f64>) -> bool {
        *self == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut h = HistoryStore::new(3);
        h.append(1, 0.5);
        h.append(1, 0.7);
        assert_eq!(h.seq(1), [0.5, 0.7]);
        assert_eq!(h.current(1), Some(0.7));
        assert!(h.seq(0).is_empty());
        assert_eq!(h.current(0), None);
    }

    #[test]
    fn retention_caps_length_keeping_latest() {
        let mut h = HistoryStore::with_max_len(1, 3);
        for i in 0..5 {
            h.append(0, i as f64);
        }
        assert_eq!(h.seq(0), [2.0, 3.0, 4.0]);
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut h = HistoryStore::new(1);
        for i in 0..100 {
            h.append(0, i as f64);
        }
        assert_eq!(h.recorded_len(0), 100);
    }

    #[test]
    fn non_empty_sequences_skips_empty() {
        let mut h = HistoryStore::new(3);
        h.append(0, 1.0);
        h.append(2, 2.0);
        let seqs = h.non_empty_sequences();
        assert_eq!(seqs.len(), 2);
    }

    #[test]
    fn rolling_tracks_capped_window() {
        // Retention cap 2 < requested window 5 → effective window 2.
        let mut h = HistoryStore::with_max_len(1, 2).with_rolling(5);
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.append(0, v);
        }
        let r = h.rolling(0).expect("rolling enabled");
        assert_eq!(r.window(), 2);
        assert_eq!(r.current(), 4.0);
        assert!((r.uniform_sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn rolling_disabled_by_default() {
        let mut h = HistoryStore::new(2);
        h.append(0, 1.0);
        assert!(h.rolling(0).is_none());
    }

    #[test]
    fn wrapped_ring_reads_in_order() {
        let mut h = HistoryStore::with_max_len(1, 3);
        for i in 0..7 {
            h.append(0, i as f64);
        }
        let seq = h.seq(0);
        assert_eq!(seq.to_vec(), vec![4.0, 5.0, 6.0]);
        assert_eq!(seq.last(), Some(6.0));
        let rev: Vec<f64> = seq.iter().rev().collect();
        assert_eq!(rev, vec![6.0, 5.0, 4.0]);
    }

    #[test]
    fn serializes_as_plain_sequences() {
        let mut h = HistoryStore::with_max_len(1, 2);
        for i in 0..4 {
            h.append(0, i as f64);
        }
        let json = serde_json::to_string(&h).expect("serializes");
        assert!(
            json.contains("[[2.0,3.0]]") || json.contains("[[2,3]]"),
            "VecDeque must serialize as a plain sequence: {json}"
        );
        let back: HistoryStore = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back.seq(0), [2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_append_panics() {
        let mut h = HistoryStore::new(1);
        h.append(5, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_retention_panics() {
        let _ = HistoryStore::with_max_len(1, 0);
    }
}

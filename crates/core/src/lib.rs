//! # histal-core — active learning with historical evaluation results
//!
//! This crate implements the contribution of *"Looking Back on the Past:
//! Active Learning with Historical Evaluation Results"* (Yao, Dou, Nie,
//! Wen; TKDE 2020 / ICDE 2023 extended abstract): pool-based active
//! learning query strategies that exploit the *sequence* of evaluation
//! scores each unlabeled sample accumulates across iterations, rather than
//! only the most recent score.
//!
//! ## The framework
//!
//! Pool-based active learning (see [`driver::ActiveLearner`]) iterates:
//!
//! 1. train the underlying [`model::Model`] on the labeled set `L`;
//! 2. score every sample `x` in the unlabeled pool `U` with a base query
//!    strategy `φ_t(x)` ([`strategy::BaseStrategy`]);
//! 3. append `φ_t(x)` to the sample's historical sequence `H_t(x)`
//!    ([`history::HistoryStore`]);
//! 4. compute selection scores `F(H_t(x))` ([`strategy::HistoryPolicy`] or
//!    the learned [`lhs::LhsSelector`]);
//! 5. annotate the top batch and repeat.
//!
//! ## The proposed strategies
//!
//! * **WSHS** — exponentially weighted window sum of `H_t(x)` (Eq. 9–10);
//! * **FHS** — current score plus the window variance of `H_t(x)`
//!   (Eq. 11), rewarding samples that *fluctuate* near the decision
//!   boundary;
//! * **LHS** — a LambdaMART ranker trained per Algorithm 1 on features of
//!   `H_t(x)` (raw window, fluctuation, Mann–Kendall trend, LSTM-predicted
//!   next score, output distribution), with graded labels derived from
//!   measured model-improvement deltas.
//!
//! All three wrap any informative base strategy (entropy, least
//! confidence, EGL, EGL-word, BALD, MNLP, QBC) and compose with the
//! representative/diversity combinators ([`strategy::combinators`]).
//!
//! ## Quick start
//!
//! ```no_run
//! use histal_core::driver::{ActiveLearner, PoolConfig};
//! use histal_core::eval::{EvalCaps, SampleEval};
//! use histal_core::model::Model;
//! use histal_core::strategy::{BaseStrategy, HistoryPolicy, Strategy};
//!
//! // Any type implementing `Model` plugs into the driver; the built-in
//! // text classifier and CRF live in the `histal-models` crate.
//! #[derive(Clone)]
//! struct MyModel;
//! impl Model for MyModel {
//!     type Sample = Vec<f64>;
//!     type Label = usize;
//!     fn fit(&mut self, _: &[&Vec<f64>], _: &[&usize], _: &mut rand_chacha::ChaCha8Rng) {}
//!     fn eval_sample(&self, _: &Vec<f64>, _: &EvalCaps, _: u64) -> SampleEval {
//!         SampleEval::from_probs(vec![0.5, 0.5])
//!     }
//!     fn metric(&self, _: &[&Vec<f64>], _: &[&usize]) -> f64 { 0.0 }
//! }
//!
//! let (pool, pool_labels) = (vec![vec![0.0]; 100], vec![0usize; 100]);
//! let (test, test_labels) = (vec![vec![0.0]; 20], vec![0usize; 20]);
//! let strategy = Strategy::new(BaseStrategy::Entropy)
//!     .with_history(HistoryPolicy::Wshs { l: 3 });
//! let mut learner = ActiveLearner::builder(MyModel)
//!     .pool(pool, pool_labels)
//!     .test(test, test_labels)
//!     .strategy(strategy)
//!     .config(PoolConfig::default())
//!     .seed(42)
//!     .build();
//! let result = learner.run().expect("entropy needs no extra capabilities");
//! for point in &result.curve {
//!     println!("{} labeled → metric {:.4}", point.n_labeled, point.metric);
//! }
//! ```
//!
//! The builder is a typestate chain — `pool`, `test` and `strategy` are
//! required (omitting one is a compile error), everything after is
//! optional. Observability hooks (a tracing subscriber, a metrics
//! registry, a crash-safe run journal from the `histal-obs` crate)
//! attach the same way; see [`session::SessionBuilder`].

pub mod analysis;
pub mod driver;
pub mod error;
pub mod eval;
pub mod history;
pub mod learned;
pub mod lhs;
pub mod live;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod pool;
pub mod session;
pub mod stats;
pub mod stopping;
pub mod strategy;
pub mod tags;

pub use driver::{ActiveLearner, PoolConfig, RoundRecord, RunResult};
#[allow(deprecated)]
pub use error::StrategyError;
pub use error::{Error, ErrorKind};
pub use eval::{EvalCaps, SampleEval};
pub use history::HistoryStore;
pub use live::{
    RoundObserver, Session, SessionSnapshot, SessionStatus, SessionStep, SubmitOutcome,
    TicketLabels,
};
pub use model::Model;
pub use pipeline::{
    Annotate, EvalPool, Fit, FoldHistory, HiddenOracle, InstantOracle, LabelRequest, LabelResponse,
    Oracle, RoundCtx, ScoreBase, Select, SelectCtx, StageTimers, SyncOracle, Ticket,
};
pub use pool::{Pool, SampleId};
pub use session::{
    fingerprint, NeedsPool, NeedsStrategy, NeedsTest, Ready, RoundJournalRecord, RunJournal,
    SessionBuilder,
};
pub use strategy::{BaseStrategy, HistoryPolicy, Strategy};

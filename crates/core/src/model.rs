//! The model abstraction the active-learning driver trains and queries.

use rand_chacha::ChaCha8Rng;

use crate::eval::{EvalCaps, SampleEval};

/// An underlying task model (the paper's TextCNN / BiLSTM-CNNs-CRF slot).
///
/// Implementations live in `histal-models`; the driver only relies on this
/// trait, so custom models plug in directly (see the `custom_strategy`
/// example).
///
/// ### Contract
///
/// * [`Model::fit`] is called once per AL round with the **entire** current
///   labeled set. Implementations may retrain from scratch or fine-tune —
///   the paper fine-tunes for a fixed number of epochs, which is what the
///   built-in models do.
/// * [`Model::eval_sample`] must be pure given `(self, sample, caps, seed)`
///   — it is called from parallel workers. Stochastic estimates (MC
///   dropout, committee sampling) must derive their randomness from
///   `seed` alone so runs are reproducible.
/// * [`Model::metric`] is the task's headline number (accuracy for text
///   classification, span-F1 for NER); the driver records it per round and
///   the LHS trainer differentiates it (`Eval(M′) − Eval(M)`).
pub trait Model: Send + Sync + 'static {
    /// Pool / test sample type (a featurized document or sentence).
    type Sample: Send + Sync + 'static;
    /// Gold label type (class index or tag sequence).
    type Label: Send + Sync + Clone + 'static;

    /// Train on the labeled set. `rng` drives shuffling and any
    /// stochastic regularization.
    fn fit(&mut self, samples: &[&Self::Sample], labels: &[&Self::Label], rng: &mut ChaCha8Rng);

    /// Evaluate one unlabeled sample, computing the optional quantities
    /// requested in `caps`.
    fn eval_sample(&self, sample: &Self::Sample, caps: &EvalCaps, seed: u64) -> SampleEval;

    /// Task metric on a held-out set (higher is better).
    fn metric(&self, samples: &[&Self::Sample], labels: &[&Self::Label]) -> f64;
}

//! The staged round pipeline behind [`ActiveLearner::run_until`].
//!
//! The paper's loop (§2: train → score pool → fold history → annotate
//! batch → repeat) is decomposed into replaceable stages, one trait per
//! arrow:
//!
//! ```text
//!   Fit          train the model on L, measure the test metric
//!   EvalPool     evaluate every sample in U (parallel, seeded)
//!   ScoreBase    φ_t(x) per evaluation (one RNG draw per sample)
//!   FoldHistory  append to H_t(x), fold H_t(x) → selection score
//!   Select       pick the batch (top-k / MMR / k-center / LHS)
//!   Annotate     reveal labels via an Oracle, update the Pool
//! ```
//!
//! [`ActiveLearner::run_until`] is a thin composition of these stages
//! over a [`Pool`] and a [`RoundCtx`] (the reusable per-round buffers
//! and per-stage timers). Each stage has exactly one default
//! implementation reproducing the historical monolithic loop — byte for
//! byte, including RNG draw order and tie-breaks — so swapping a stage
//! (warm-start fit, a streaming pool, sharded selection) is a local
//! change that cannot disturb the others.
//!
//! ## Ordering contract
//!
//! Stages that iterate the unlabeled pool do so in [`Pool::unlabeled`]
//! order (ascending by id). Three things observe that order and pin it:
//! the per-sample RNG draws in [`ScoreBase`], the density reference
//! subsample drawn inside the score stage, and [`top_k`]'s
//! lower-index-wins tie-break. See the `pool` module docs.
//!
//! [`ActiveLearner::run_until`]: crate::driver::ActiveLearner::run_until
//! [`ActiveLearner`]: crate::driver::ActiveLearner

use std::collections::VecDeque;
use std::sync::Arc;

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use histal_text::{NeighborIndex, PoolGeometry};

use crate::driver::{hkld_score_members, mix_seed, top_k};
use crate::error::Error;
use crate::eval::{EvalCaps, SampleEval};
use crate::history::HistoryStore;
use crate::learned::{LearnedSelector, PoolMetaFeatures};
use crate::model::Model;
use crate::pool::{Pool, SampleId};
use crate::strategy::combinators::{kcenter_select, mmr_select, SimScratch};
use crate::strategy::{BaseStrategy, HistoryPolicy, MmrConfig};

// ---------------------------------------------------------------------------
// Round context
// ---------------------------------------------------------------------------

/// Wall-clock of each pipeline stage for one round, milliseconds. Feeds
/// the matching fields of [`RoundRecord`](crate::driver::RoundRecord)
/// (the Table 2 efficiency breakdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimers {
    /// Model training ([`Fit`]).
    pub fit_ms: f64,
    /// Pool evaluation ([`EvalPool`]).
    pub eval_ms: f64,
    /// Scoring: base scores, history folding and density weighting
    /// ([`ScoreBase`] + [`FoldHistory`]).
    pub score_ms: f64,
    /// Batch selection ([`Select`]).
    pub select_ms: f64,
}

/// Reusable per-round working state: evaluation/score buffers, the
/// similarity scratch for the combinators, and the stage timers. One
/// `RoundCtx` lives for the whole run, so steady-state rounds reuse
/// every buffer instead of reallocating.
#[derive(Default)]
pub struct RoundCtx {
    /// Current round index (0-based).
    pub round: usize,
    /// Per-unlabeled-sample evaluations, in [`Pool::unlabeled`] order.
    pub evals: Vec<SampleEval>,
    /// Base scores `φ_t(x)`, parallel to `evals`.
    pub base_scores: Vec<f64>,
    /// Folded selection scores `F(H_t(x))`, parallel to `evals`.
    pub final_scores: Vec<f64>,
    /// Shared working memory for density/MMR/k-center.
    pub sim: SimScratch,
    /// Scratch for materializing history windows (diagnostics, LHS
    /// feature rows).
    pub seq_buf: Vec<f64>,
    /// This round's stage timings.
    pub timers: StageTimers,
}

impl RoundCtx {
    /// Fresh context with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start round `round`: stamps the index and zeroes the timers. The
    /// data buffers keep their capacity and are overwritten by the
    /// stages that fill them.
    pub fn begin(&mut self, round: usize) {
        self.round = round;
        self.timers = StageTimers::default();
    }
}

// ---------------------------------------------------------------------------
// Fit
// ---------------------------------------------------------------------------

/// Stage 1: train the model on the labeled set and measure the test
/// metric. The labeled slices arrive in labeling order (see
/// [`Pool::labeled`]) — implementations must preserve it when handing
/// samples to the model, since training is order-sensitive.
pub trait Fit<M: Model> {
    /// Train `model` and return the test metric.
    fn fit_measure(
        &mut self,
        model: &mut M,
        samples: &[&M::Sample],
        labels: &[&M::Label],
        test_samples: &[&M::Sample],
        test_labels: &[&M::Label],
        rng: &mut ChaCha8Rng,
    ) -> f64;
}

/// Default [`Fit`]: retrain from scratch on the full labeled set every
/// round (the paper's protocol). A warm-start implementation would keep
/// optimizer state here between rounds.
pub struct RetrainFit;

impl<M: Model> Fit<M> for RetrainFit {
    fn fit_measure(
        &mut self,
        model: &mut M,
        samples: &[&M::Sample],
        labels: &[&M::Label],
        test_samples: &[&M::Sample],
        test_labels: &[&M::Label],
        rng: &mut ChaCha8Rng,
    ) -> f64 {
        model.fit(samples, labels, rng);
        model.metric(test_samples, test_labels)
    }
}

// ---------------------------------------------------------------------------
// EvalPool
// ---------------------------------------------------------------------------

/// Stage 2: evaluate every unlabeled sample. Must fill `out` in
/// `unlabeled` order, one [`SampleEval`] per id.
pub trait EvalPool<M: Model> {
    /// Evaluate `samples[id]` for every `id` in `unlabeled` into `out`.
    #[allow(clippy::too_many_arguments)]
    fn eval(
        &mut self,
        model: &M,
        samples: &[M::Sample],
        unlabeled: &[SampleId],
        caps: &EvalCaps,
        seed: u64,
        round: usize,
        out: &mut Vec<SampleEval>,
    );
}

/// Default [`EvalPool`]: deterministic data-parallel evaluation. Each
/// sample's stochastic estimates (MC dropout, committees) derive from
/// [`mix_seed`]`(seed, round, id)` alone, so the result is independent
/// of the worker count and of which thread evaluates which sample.
pub struct ParallelEval;

impl<M: Model> EvalPool<M> for ParallelEval {
    fn eval(
        &mut self,
        model: &M,
        samples: &[M::Sample],
        unlabeled: &[SampleId],
        caps: &EvalCaps,
        seed: u64,
        round: usize,
        out: &mut Vec<SampleEval>,
    ) {
        *out = unlabeled
            .par_iter()
            .map(|&id| {
                let s = mix_seed(seed, round as u64, id as u64);
                model.eval_sample(&samples[id], caps, s)
            })
            .collect();
    }
}

// ---------------------------------------------------------------------------
// ScoreBase
// ---------------------------------------------------------------------------

/// Stage 3: the per-iteration informative score `φ_t(x)`.
///
/// Implementations must consume exactly one RNG draw per evaluation, in
/// `evals` order, whether or not the draw is used — the draw sequence is
/// part of the byte-identical contract (the `Random` baseline and the
/// density subsample read the same stream).
pub trait ScoreBase {
    /// Fill `out` with one base score per evaluation.
    fn score(
        &mut self,
        evals: &[SampleEval],
        rng: &mut ChaCha8Rng,
        out: &mut Vec<f64>,
    ) -> Result<(), Error>;
}

/// Default [`ScoreBase`]: delegate to a [`BaseStrategy`] (entropy, LC,
/// margin, EGL, BALD, …), passing each sample's RNG draw through for the
/// `Random` baseline.
pub struct BaseScore {
    /// The base strategy evaluated per sample.
    pub base: BaseStrategy,
}

impl ScoreBase for BaseScore {
    fn score(
        &mut self,
        evals: &[SampleEval],
        rng: &mut ChaCha8Rng,
        out: &mut Vec<f64>,
    ) -> Result<(), Error> {
        out.clear();
        for eval in evals {
            let r: f64 = rng.gen();
            out.push(self.base.base_score(eval, r)?);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FoldHistory
// ---------------------------------------------------------------------------

/// Stage 4: maintain the historical state and fold it into selection
/// scores. Split into two calls because recording mutates the store the
/// driver owns, while folding only reads it.
pub trait FoldHistory {
    /// Append this round's base scores (and any richer per-sample state
    /// the policy needs, e.g. full posteriors) to the history.
    fn record(
        &mut self,
        unlabeled: &[SampleId],
        base_scores: &[f64],
        evals: &[SampleEval],
        history: &mut HistoryStore,
    );

    /// Fold each unlabeled sample's history into its selection score,
    /// filling `out` in `unlabeled` order.
    fn fold(&mut self, unlabeled: &[SampleId], history: &HistoryStore, out: &mut Vec<f64>);
}

/// Default [`FoldHistory`]: scalar folding via a [`HistoryPolicy`]
/// (current-only, HUS, WSHS, FHS). Uses the store's O(1) rolling
/// statistics when enabled, falling back to an allocation-free fold over
/// the borrowed ring segments otherwise.
pub struct PolicyFold {
    policy: HistoryPolicy,
}

impl PolicyFold {
    /// Fold with `policy`.
    pub fn new(policy: HistoryPolicy) -> Self {
        Self { policy }
    }
}

impl FoldHistory for PolicyFold {
    fn record(
        &mut self,
        unlabeled: &[SampleId],
        base_scores: &[f64],
        _evals: &[SampleEval],
        history: &mut HistoryStore,
    ) {
        for (&id, &score) in unlabeled.iter().zip(base_scores) {
            history.append(id, score);
        }
    }

    fn fold(&mut self, unlabeled: &[SampleId], history: &HistoryStore, out: &mut Vec<f64>) {
        out.clear();
        out.extend(unlabeled.iter().map(|&id| match history.rolling(id) {
            Some(stats) => self.policy.rolling_score(stats),
            None => self.policy.final_score_seq(&history.seq(id)),
        }));
    }
}

/// [`FoldHistory`] for the HKLD baseline (Davy & Luz 2007): the
/// committee is the posteriors of the last `k` iterations; the score is
/// the mean KL divergence of each member from the committee mean. Owns
/// the per-sample posterior ring buffers (the scalar history still
/// receives the base scores, which the Table 6 diagnostics read).
pub struct HkldFold {
    k: usize,
    cap: Option<usize>,
    prob_history: Vec<VecDeque<Vec<f64>>>,
}

impl HkldFold {
    /// Committee over the last `k` posteriors of `n` samples, retaining
    /// at most `cap` per sample (mirrors the scalar history retention).
    pub fn new(k: usize, n: usize, cap: Option<usize>) -> Self {
        Self {
            k,
            cap,
            prob_history: vec![VecDeque::new(); n],
        }
    }
}

impl FoldHistory for HkldFold {
    fn record(
        &mut self,
        unlabeled: &[SampleId],
        base_scores: &[f64],
        evals: &[SampleEval],
        history: &mut HistoryStore,
    ) {
        for (&id, &score) in unlabeled.iter().zip(base_scores) {
            history.append(id, score);
        }
        for (&id, eval) in unlabeled.iter().zip(evals) {
            let seq = &mut self.prob_history[id];
            seq.push_back(eval.probs.clone());
            if let Some(cap) = self.cap {
                if seq.len() > cap {
                    seq.pop_front();
                }
            }
        }
    }

    fn fold(&mut self, unlabeled: &[SampleId], _history: &HistoryStore, out: &mut Vec<f64>) {
        out.clear();
        out.extend(unlabeled.iter().map(|&id| {
            let seq = &self.prob_history[id];
            let start = seq.len().saturating_sub(self.k);
            hkld_score_members(seq.iter().skip(start).map(|p| p.as_slice()))
        }));
    }
}

// ---------------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------------

/// Everything a batch selector may consult, borrowed for one round.
pub struct SelectCtx<'a> {
    /// Folded selection scores, parallel to `unlabeled`.
    pub scores: &'a [f64],
    /// The unlabeled ids (ascending; see [`Pool::unlabeled`]).
    pub unlabeled: &'a [SampleId],
    /// This round's evaluations, parallel to `unlabeled`.
    pub evals: &'a [SampleEval],
    /// The scalar history store.
    pub history: &'a HistoryStore,
    /// Cached pool geometry, when representations were attached.
    pub geometry: Option<&'a PoolGeometry>,
    /// Approximate-neighbor index over the geometry rows, when the run
    /// was configured with [`PoolConfig::ann`](crate::driver::PoolConfig);
    /// `None` keeps the exact sweeps.
    pub index: Option<&'a dyn NeighborIndex>,
    /// Batch size, already clamped to the pool.
    pub batch: usize,
    /// Zero-based selection round index.
    pub round: usize,
    /// Labeled-set size going into this round.
    pub n_labeled: usize,
    /// Shared similarity scratch.
    pub scratch: &'a mut SimScratch,
    /// Scratch for materializing history windows.
    pub seq_buf: &'a mut Vec<f64>,
}

/// Stage 5: pick the batch. Returns up to `ctx.batch` *positions into
/// `ctx.unlabeled`*, best first. A trait object replaces the historical
/// if-else dispatch chain, so new selectors (sharded, streaming) plug in
/// without touching the loop.
pub trait Select {
    /// Select the round's batch.
    fn select(&mut self, ctx: SelectCtx<'_>) -> Vec<usize>;
}

/// Default [`Select`]: the `k` best scores, ties toward the lower
/// position (= lower id, given ascending `unlabeled`). See [`top_k`].
pub struct TopKSelect;

impl Select for TopKSelect {
    fn select(&mut self, ctx: SelectCtx<'_>) -> Vec<usize> {
        top_k(ctx.scores, ctx.batch)
    }
}

/// Greedy MMR batch diversity (Eq. 8). Requires pool geometry.
pub struct MmrSelect(pub MmrConfig);

impl Select for MmrSelect {
    fn select(&mut self, ctx: SelectCtx<'_>) -> Vec<usize> {
        let geom = ctx.geometry.expect("MMR selection requires pool geometry");
        mmr_select(
            ctx.scores,
            ctx.unlabeled,
            geom,
            ctx.index,
            ctx.batch,
            &self.0,
            ctx.scratch,
        )
    }
}

/// Greedy k-center (core-set) batch selection. Requires pool geometry.
pub struct KCenterSelect;

impl Select for KCenterSelect {
    fn select(&mut self, ctx: SelectCtx<'_>) -> Vec<usize> {
        let geom = ctx
            .geometry
            .expect("k-center selection requires pool geometry");
        kcenter_select(
            ctx.scores,
            ctx.unlabeled,
            geom,
            ctx.index,
            ctx.batch,
            ctx.scratch,
        )
    }
}

/// The learned selector stage (LHS/LAL): ranks a candidate set (union of
/// top-entropy and top-LC) with the trained ranker instead of sorting by
/// the folded scores. Holds the selector behind an [`Arc`] — the trained
/// ranker and predictor are immutable at selection time, so the stage
/// shares one trained instance with the driver instead of deep-cloning
/// the model ensemble per run.
pub struct LhsSelect(pub Arc<LearnedSelector>);

impl Select for LhsSelect {
    fn select(&mut self, ctx: SelectCtx<'_>) -> Vec<usize> {
        let meta = self.0.uses_meta().then(|| {
            PoolMetaFeatures::from_evals(
                ctx.evals,
                ctx.n_labeled,
                ctx.n_labeled + ctx.unlabeled.len(),
                ctx.round,
            )
        });
        self.0.select_with_meta(
            ctx.unlabeled,
            ctx.evals,
            ctx.history,
            ctx.batch,
            ctx.seq_buf,
            meta.as_ref(),
        )
    }
}

// ---------------------------------------------------------------------------
// Annotate + Oracle
// ---------------------------------------------------------------------------

/// Monotonic identifier of one labeling request within a session. Tickets
/// start at 0 (the initial random labeled set) and increase by one per
/// selection round, so a ticket doubles as a round cursor: ticket `t + 1`
/// asks for round `t`'s batch.
pub type Ticket = u64;

/// A batch labeling request: the annotate boundary of the loop, made
/// explicit so labels can be produced *outside* the round (by a human
/// annotator, over the network, out of order). Issued by the driver's
/// [`OracleAnnotate`] stage and by [`Session`](crate::live::Session).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelRequest {
    /// Request identifier, unique within the session.
    pub ticket: Ticket,
    /// Pool ids to annotate, in selection order (best first). The order
    /// is part of the request: labels are applied to the pool in this
    /// order regardless of arrival order, which keeps replays
    /// byte-identical.
    pub indices: Vec<SampleId>,
}

/// Labels answering (part of) a [`LabelRequest`]. A response may be
/// partial — any subset of the requested ids — and responses for one
/// ticket may arrive in any order; see
/// [`Session::submit`](crate::live::Session::submit).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelResponse<L> {
    /// The request being answered.
    pub ticket: Ticket,
    /// `(pool id, revealed label)` pairs.
    pub labels: Vec<(SampleId, L)>,
}

/// The labeling authority, split into request/fulfill halves so
/// annotation is not forced to complete inside the round. A simulated
/// oracle answers a ticket immediately ([`SyncOracle`]); a deployment
/// with human annotators parks the request and fulfills the ticket when
/// labels arrive (possibly much later, possibly out of order).
///
/// The driver's [`OracleAnnotate`] stage requires fulfilment in the same
/// call — wrap per-sample oracles in [`SyncOracle`]. For genuinely
/// asynchronous labels, drive a [`Session`](crate::live::Session), which
/// surfaces the pending [`LabelRequest`] to the caller instead of
/// consulting an `Oracle` at all.
pub trait Oracle<M: Model> {
    /// Submit a labeling request. Must not block on the labels.
    fn request(&mut self, request: &LabelRequest, samples: &[M::Sample]);

    /// Poll for the complete response to `ticket`. Returns `None` while
    /// labels are still outstanding; once returned, the oracle may forget
    /// the ticket.
    fn fulfill(&mut self, ticket: Ticket) -> Option<LabelResponse<M::Label>>;
}

/// The pre-split oracle shape: one call, one label, synchronously. The
/// experimental protocol (labels known up front) fits this; adapt it to
/// the ticketed [`Oracle`] protocol with [`SyncOracle`].
pub trait InstantOracle<M: Model> {
    /// Reveal the label of pool sample `id`.
    fn annotate(&mut self, id: SampleId, sample: &M::Sample) -> M::Label;
}

/// Adapter: an [`InstantOracle`] driven through the request/fulfill
/// protocol. `request` annotates every index immediately (in request
/// order — the historical per-sample query order, so migrated call sites
/// stay byte-identical) and `fulfill` hands the buffered response back.
pub struct SyncOracle<M: Model, O> {
    inner: O,
    ready: Vec<LabelResponse<M::Label>>,
}

impl<M: Model, O: InstantOracle<M>> SyncOracle<M, O> {
    /// Wrap `inner` so every ticket is fulfilled within `request`.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            ready: Vec::new(),
        }
    }
}

impl<M: Model, O: InstantOracle<M>> Oracle<M> for SyncOracle<M, O> {
    fn request(&mut self, request: &LabelRequest, samples: &[M::Sample]) {
        let labels = request
            .indices
            .iter()
            .map(|&id| (id, self.inner.annotate(id, &samples[id])))
            .collect();
        self.ready.push(LabelResponse {
            ticket: request.ticket,
            labels,
        });
    }

    fn fulfill(&mut self, ticket: Ticket) -> Option<LabelResponse<M::Label>> {
        let pos = self.ready.iter().position(|r| r.ticket == ticket)?;
        Some(self.ready.swap_remove(pos))
    }
}

/// The standard experimental oracle: every pool label is known up front
/// and "annotation" just reveals it.
pub struct HiddenOracle<L> {
    labels: Vec<L>,
}

impl<L> HiddenOracle<L> {
    /// Wrap the hidden gold labels; `labels[id]` belongs to pool sample
    /// `id`.
    pub fn new(labels: Vec<L>) -> Self {
        Self { labels }
    }
}

impl<M: Model> InstantOracle<M> for HiddenOracle<M::Label> {
    fn annotate(&mut self, id: SampleId, _sample: &M::Sample) -> M::Label {
        self.labels[id].clone()
    }
}

/// Apply a fully-fulfilled response: reveal each label, then move the
/// whole batch to the labeled side *in request order* (the order the
/// selector produced), independent of the order labels arrived in.
/// Panics if the response misses a requested id — callers gate on
/// completeness first.
pub(crate) fn apply_response<L: Clone>(
    request: &LabelRequest,
    response: &LabelResponse<L>,
    pool: &mut Pool,
    revealed: &mut [Option<L>],
) {
    for &(id, ref label) in &response.labels {
        revealed[id] = Some(label.clone());
    }
    for &id in &request.indices {
        assert!(
            revealed[id].is_some(),
            "label response for ticket {} misses sample {id}",
            request.ticket
        );
    }
    pool.label_batch(&request.indices);
}

/// Stage 6: move the selected batch to the labeled side, revealing
/// labels into the driver's label table.
pub trait Annotate<M: Model> {
    /// Annotate `selected` (in selection order): store each revealed
    /// label at `revealed[id]` and update `pool`.
    fn annotate(
        &mut self,
        selected: &[SampleId],
        samples: &[M::Sample],
        pool: &mut Pool,
        revealed: &mut [Option<M::Label>],
    );
}

/// Default [`Annotate`]: issue one ticketed [`LabelRequest`] per batch
/// and require the [`Oracle`] to fulfill it within the call — the
/// synchronous experimental protocol. Oracles that cannot answer
/// immediately do not belong in the batch driver; drive a
/// [`Session`](crate::live::Session) instead.
pub struct OracleAnnotate<M: Model> {
    oracle: Box<dyn Oracle<M>>,
    next_ticket: Ticket,
}

impl<M: Model> OracleAnnotate<M> {
    /// Annotate by querying `oracle`.
    pub fn new(oracle: Box<dyn Oracle<M>>) -> Self {
        Self {
            oracle,
            next_ticket: 0,
        }
    }

    /// Annotate through a per-sample [`InstantOracle`], adapted via
    /// [`SyncOracle`].
    pub fn sync(oracle: impl InstantOracle<M> + 'static) -> Self {
        Self::new(Box::new(SyncOracle::new(oracle)))
    }

    /// The standard setup: a [`HiddenOracle`] over labels known up front.
    pub fn hidden(labels: Vec<M::Label>) -> Self {
        Self::sync(HiddenOracle::new(labels))
    }
}

impl<M: Model> Annotate<M> for OracleAnnotate<M> {
    fn annotate(
        &mut self,
        selected: &[SampleId],
        samples: &[M::Sample],
        pool: &mut Pool,
        revealed: &mut [Option<M::Label>],
    ) {
        let request = LabelRequest {
            ticket: self.next_ticket,
            indices: selected.to_vec(),
        };
        self.next_ticket += 1;
        self.oracle.request(&request, samples);
        let response = self.oracle.fulfill(request.ticket).unwrap_or_else(|| {
            panic!(
                "the batch driver needs a synchronous oracle but ticket {} \
                 was not fulfilled within the round; wrap the oracle in \
                 SyncOracle or drive a live Session instead",
                request.ticket
            )
        });
        apply_response(&request, &response, pool, revealed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_score_draws_once_per_eval() {
        use rand::SeedableRng;
        let evals = vec![SampleEval::from_probs(vec![0.5, 0.5]); 3];
        let mut stage = BaseScore {
            base: BaseStrategy::Random,
        };
        let mut rng_a = ChaCha8Rng::seed_from_u64(7);
        let mut out = Vec::new();
        stage.score(&evals, &mut rng_a, &mut out).unwrap();
        // The same seed replayed by hand gives the same three draws.
        let mut rng_b = ChaCha8Rng::seed_from_u64(7);
        let expect: Vec<f64> = (0..3).map(|_| rng_b.gen()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn policy_fold_matches_slice_oracle() {
        let mut history = HistoryStore::with_max_len(2, 3);
        for v in [0.1, 0.9, 0.4, 0.7] {
            history.append(0, v);
            history.append(1, 1.0 - v);
        }
        let policy = HistoryPolicy::Wshs { l: 3 };
        let mut fold = PolicyFold::new(policy);
        let mut out = Vec::new();
        fold.fold(&[0, 1], &history, &mut out);
        for (pos, &id) in [0usize, 1].iter().enumerate() {
            let expect = policy.final_score(&history.seq(id).to_vec());
            assert_eq!(out[pos], expect, "sample {id}");
        }
    }

    #[test]
    fn hkld_fold_caps_posterior_retention() {
        let mut history = HistoryStore::new(1);
        let mut fold = HkldFold::new(2, 1, Some(2));
        for p in [0.9, 0.1, 0.5] {
            let evals = vec![SampleEval::from_probs(vec![p, 1.0 - p])];
            fold.record(&[0], &[0.0], &evals, &mut history);
        }
        assert_eq!(fold.prob_history[0].len(), 2);
        let mut out = Vec::new();
        fold.fold(&[0], &history, &mut out);
        let expect = crate::driver::hkld_score(&[vec![0.1, 0.9], vec![0.5, 0.5]], 2);
        assert_eq!(out, vec![expect]);
    }

    #[test]
    fn hidden_oracle_reveals_and_labels() {
        #[derive(Clone)]
        struct Dummy;
        impl Model for Dummy {
            type Sample = u8;
            type Label = u8;
            fn fit(&mut self, _: &[&u8], _: &[&u8], _: &mut ChaCha8Rng) {}
            fn eval_sample(&self, _: &u8, _: &EvalCaps, _: u64) -> SampleEval {
                SampleEval::default()
            }
            fn metric(&self, _: &[&u8], _: &[&u8]) -> f64 {
                0.0
            }
        }
        let samples: Vec<u8> = vec![10, 11, 12];
        let mut stage: OracleAnnotate<Dummy> = OracleAnnotate::hidden(vec![5, 6, 7]);
        let mut pool = Pool::new(3);
        let mut revealed: Vec<Option<u8>> = vec![None; 3];
        stage.annotate(&[2, 0], &samples, &mut pool, &mut revealed);
        assert_eq!(pool.labeled(), &[2, 0]);
        assert_eq!(pool.unlabeled(), &[1]);
        assert_eq!(revealed, vec![Some(5), None, Some(7)]);
    }
}

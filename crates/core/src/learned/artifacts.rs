//! Serializable trained artifacts and the versioned `HLRN1` file format.
//!
//! [`LhsArtifacts`] is the serializable bundle of everything the trainer
//! produces (ranker + predictor + feature layout). [`save_artifacts`] /
//! [`load_artifacts`] wrap it in a versioned JSON envelope — magic
//! `"HLRN1"`, schema version, provenance — so a selector trained on
//! dataset A in one process can be persisted and applied to dataset B in
//! another (the Chu & Lin cross-dataset transfer protocol as a file).
//!
//! The envelope is JSON for the same reason the model persistence layer
//! (`histal-models`) is: the vendored toolchain has no binary
//! serialization dependency, and selector artifacts are kilobytes. The
//! magic + version are *inside* the JSON, checked on load; a future
//! incompatible layout bumps [`ARTIFACT_VERSION`] and readers reject
//! mismatches instead of misinterpreting fields.

use std::path::Path;

use serde::{Deserialize, Serialize};

use histal_ltr::{LambdaMart, LinearRanker, PointwiseRegressor, Ranker};
use histal_tseries::{ArPredictor, HoltPredictor, LstmPredictor, SequencePredictor};

use crate::error::Error;

use super::features::LhsFeatureConfig;
use super::selector::LhsSelector;

/// Serializable bundle of everything the trainer produces. Lets a
/// ranker trained once on a labeled dataset (the paper trains on Subj) be
/// persisted and deployed on other datasets later — the §4.4 transfer
/// protocol as an artifact.
#[derive(Clone, Serialize, Deserialize)]
pub struct LhsArtifacts {
    /// The trained ranking model.
    pub ranker: TrainedRanker,
    /// The trained next-score predictor.
    pub predictor: TrainedPredictor,
    /// Feature layout the ranker was trained with.
    pub features: LhsFeatureConfig,
    /// Candidate-set size for deployment.
    pub candidate_pool: usize,
    /// Whether the ranker was trained with (and the selector must append)
    /// pool-level meta-features. Defaults to `false` so artifacts written
    /// before the field existed load unchanged.
    #[serde(default)]
    pub use_meta: bool,
}

/// A concrete trained ranker (serializable counterpart of `dyn Ranker`).
#[derive(Clone, Serialize, Deserialize)]
pub enum TrainedRanker {
    /// LambdaMART ensemble.
    LambdaMart(LambdaMart),
    /// Pairwise-logistic linear ranker.
    Linear(LinearRanker),
    /// Pointwise expected-error-reduction regressor (LAL).
    Pointwise(PointwiseRegressor),
}

/// A concrete trained predictor (serializable counterpart of
/// `dyn SequencePredictor`).
#[derive(Clone, Serialize, Deserialize)]
pub enum TrainedPredictor {
    /// Scalar LSTM.
    Lstm(LstmPredictor),
    /// AR(p) least squares.
    Ar(ArPredictor),
    /// Holt double exponential smoothing.
    Holt(HoltPredictor),
}

impl Ranker for TrainedRanker {
    fn score(&self, features: &[f64]) -> f64 {
        match self {
            Self::LambdaMart(m) => m.score(features),
            Self::Linear(m) => m.score(features),
            Self::Pointwise(m) => m.score(features),
        }
    }
}

impl SequencePredictor for TrainedPredictor {
    fn predict_next(&self, seq: &[f64]) -> f64 {
        match self {
            Self::Lstm(p) => p.predict_next(seq),
            Self::Ar(p) => p.predict_next(seq),
            Self::Holt(p) => p.predict_next(seq),
        }
    }
}

impl LhsArtifacts {
    /// Build the runtime selector from these artifacts.
    pub fn into_selector(self) -> LhsSelector {
        LhsSelector::new(
            Box::new(self.ranker),
            Box::new(self.predictor),
            self.features,
            self.candidate_pool,
        )
        .with_meta(self.use_meta)
    }
}

/// Magic string identifying a learned-selector artifact file.
pub const ARTIFACT_MAGIC: &str = "HLRN1";

/// Current artifact schema version.
pub const ARTIFACT_VERSION: u32 = 1;

/// Where an artifact came from: enough to reconstruct the deployment
/// configuration (base strategy for seeding/naming) and to audit the
/// transfer matrix ("trained on A, applied to B").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ArtifactProvenance {
    /// Dataset the selector was trained on (e.g. `"mr"`).
    pub trained_on: String,
    /// Base strategy name (e.g. `"entropy"`).
    pub base: String,
    /// Target shape: `"pairwise"` (LHS) or `"pointwise"` (LAL).
    pub target: String,
    /// Training seed.
    pub seed: u64,
}

/// The on-disk envelope: magic + version checked on load, then the
/// provenance and the artifacts themselves.
#[derive(Serialize, Deserialize)]
struct Hlrn1Envelope {
    magic: String,
    version: u32,
    provenance: ArtifactProvenance,
    artifacts: LhsArtifacts,
}

/// Write `artifacts` to `path` as an `HLRN1` envelope.
pub fn save_artifacts(
    artifacts: &LhsArtifacts,
    provenance: &ArtifactProvenance,
    path: &Path,
) -> Result<(), Error> {
    let envelope = Hlrn1Envelope {
        magic: ARTIFACT_MAGIC.to_string(),
        version: ARTIFACT_VERSION,
        provenance: provenance.clone(),
        artifacts: artifacts.clone(),
    };
    let body = serde_json::to_string(&envelope)
        .map_err(|e| Error::spec(format!("serializing artifact: {e}")))?;
    std::fs::write(path, body)
        .map_err(|e| Error::spec(format!("writing artifact {}: {e}", path.display())))
}

/// Load an `HLRN1` envelope from `path`, rejecting wrong magic or
/// version.
pub fn load_artifacts(path: &Path) -> Result<(LhsArtifacts, ArtifactProvenance), Error> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| Error::spec(format!("reading artifact {}: {e}", path.display())))?;
    let envelope: Hlrn1Envelope = serde_json::from_str(&body)
        .map_err(|e| Error::spec(format!("parsing artifact {}: {e}", path.display())))?;
    if envelope.magic != ARTIFACT_MAGIC {
        return Err(Error::conflict(format!(
            "artifact {} has magic {:?}, expected {ARTIFACT_MAGIC:?}",
            path.display(),
            envelope.magic
        )));
    }
    if envelope.version != ARTIFACT_VERSION {
        return Err(Error::conflict(format!(
            "artifact {} has schema version {}, this build reads {ARTIFACT_VERSION}",
            path.display(),
            envelope.version
        )));
    }
    Ok((envelope.artifacts, envelope.provenance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;
    use histal_ltr::{PointwiseConfig, TreeConfig};

    fn tiny_artifacts() -> LhsArtifacts {
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..8).map(|i| if i < 4 { 0.0 } else { 1.0 }).collect();
        let regressor = PointwiseRegressor::fit_trees(
            &rows,
            &targets,
            &PointwiseConfig {
                n_trees: 3,
                learning_rate: 0.5,
                tree: TreeConfig::default(),
                l2: 1.0,
            },
        );
        LhsArtifacts {
            ranker: TrainedRanker::Pointwise(regressor),
            predictor: TrainedPredictor::Holt(HoltPredictor::fit(&[vec![0.1, 0.2, 0.3]])),
            features: LhsFeatureConfig::default(),
            candidate_pool: 75,
            use_meta: true,
        }
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("histal-hlrn1-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn hlrn1_round_trips_across_save_load() {
        let artifacts = tiny_artifacts();
        let provenance = ArtifactProvenance {
            trained_on: "mr".into(),
            base: "entropy".into(),
            target: "pointwise".into(),
            seed: 42,
        };
        let path = tmp_path("roundtrip.json");
        save_artifacts(&artifacts, &provenance, &path).expect("save");
        let (loaded, prov) = load_artifacts(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(prov, provenance);
        assert_eq!(loaded.candidate_pool, artifacts.candidate_pool);
        assert!(loaded.use_meta);
        // The loaded ranker scores identically to the saved one.
        for row in [vec![0.5], vec![3.5], vec![6.0]] {
            assert_eq!(loaded.ranker.score(&row), artifacts.ranker.score(&row));
        }
        let selector = loaded.into_selector();
        assert!(selector.uses_meta());
    }

    #[test]
    fn hlrn1_rejects_wrong_version_and_magic() {
        let artifacts = tiny_artifacts();
        let provenance = ArtifactProvenance::default();
        let path = tmp_path("version.json");
        save_artifacts(&artifacts, &provenance, &path).expect("save");
        let body = std::fs::read_to_string(&path).expect("read back");
        let bumped = body.replace("\"version\":1", "\"version\":999");
        std::fs::write(&path, &bumped).expect("rewrite");
        let Err(err) = load_artifacts(&path) else {
            panic!("version mismatch accepted")
        };
        assert!(matches!(err.kind, ErrorKind::Conflict { .. }), "{err}");
        let wrong_magic = body.replace("\"HLRN1\"", "\"HXXX9\"");
        std::fs::write(&path, &wrong_magic).expect("rewrite");
        let Err(err) = load_artifacts(&path) else {
            panic!("magic mismatch accepted")
        };
        std::fs::remove_file(&path).ok();
        assert!(matches!(err.kind, ErrorKind::Conflict { .. }), "{err}");
    }

    #[test]
    fn hlrn1_missing_and_corrupt_files_error() {
        let missing = tmp_path("does-not-exist.json");
        assert!(load_artifacts(&missing).is_err());
        let path = tmp_path("corrupt.json");
        std::fs::write(&path, "{not json").expect("write");
        let Err(err) = load_artifacts(&path) else {
            panic!("corrupt artifact accepted")
        };
        std::fs::remove_file(&path).ok();
        assert!(matches!(err.kind, ErrorKind::Spec { .. }), "{err}");
    }

    #[test]
    fn artifacts_without_meta_field_load_with_default() {
        // Pre-meta artifact JSON (no `use_meta` key) must deserialize
        // with `use_meta = false`.
        let artifacts = LhsArtifacts {
            use_meta: false,
            ..tiny_artifacts()
        };
        let mut json = serde_json::to_string(&artifacts).expect("serialize");
        json = json.replace(",\"use_meta\":false", "");
        assert!(!json.contains("use_meta"));
        let loaded: LhsArtifacts = serde_json::from_str(&json).expect("deserialize");
        assert!(!loaded.use_meta);
    }
}

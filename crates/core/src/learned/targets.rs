//! Training-target generation: the Algorithm 1 simulation, generalized.
//!
//! Both learned selectors are trained by simulating active learning on a
//! fully labeled dataset and measuring, for every candidate, how much
//! adding it actually improved the model (`Eval(M′) − Eval(M)`). What
//! differs is the *shape* of the emitted training data
//! ([`TargetKind`]):
//!
//! * [`TargetKind::Pairwise`] — the paper's LHS formulation: each round
//!   is a ranking query group, deltas are bucketed into graded relevance
//!   levels, and a pairwise ranker (LambdaMART or pairwise-logistic
//!   linear) is fitted. [`train_lhs_artifacts`] is this path, unchanged
//!   byte for byte from the original monolith.
//! * [`TargetKind::Pointwise`] — the LAL formulation (Konyushkova et
//!   al., "Learning Active Learning from Data"): the raw deltas are
//!   pointwise expected-error-reduction regression targets, flattened
//!   across rounds, and a regression model is fitted directly. Combined
//!   with the pool-level meta-features this is what transfers across
//!   datasets (Chu & Lin).
//!
//! The two-phase protocol is shared: Phase 1 simulates plain AL with the
//! base strategy to collect historical sequences and trains the
//! next-score predictor on them; Phase 2 reruns the loop measuring
//! per-candidate deltas.

use rand::prelude::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use histal_ltr::{
    LambdaMart, LambdaMartConfig, LinearRanker, LinearRankerConfig, PointwiseConfig,
    PointwiseRegressor, QueryGroup, RankingDataset,
};
use histal_tseries::{ArPredictor, HoltPredictor, LstmConfig, LstmPredictor};

use crate::driver::{mix_seed, top_k};
use crate::error::Error;
use crate::eval::SampleEval;
use crate::history::HistoryStore;
use crate::model::Model;
use crate::pool::Pool;
use crate::strategy::BaseStrategy;

use super::artifacts::{LhsArtifacts, TrainedPredictor, TrainedRanker};
use super::features::{candidate_set, LhsFeatureConfig, PoolMetaFeatures};
use super::selector::LhsSelector;

/// Which next-score predictor to train (§4.4.2 feature 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PredictorKind {
    /// The paper's choice: a small scalar LSTM.
    Lstm(LstmConfig),
    /// Ablation alternative: AR(p) least squares.
    Ar {
        /// Autoregressive order.
        order: usize,
    },
    /// Ablation alternative: Holt double exponential smoothing (gains
    /// grid-fitted on the history corpus).
    Holt,
}

impl Default for PredictorKind {
    fn default() -> Self {
        Self::Lstm(LstmConfig::default())
    }
}

/// Which learning-to-rank model to train.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RankerKind {
    /// The paper's choice (LambdaMART, Wu et al. 2010).
    LambdaMart(LambdaMartConfig),
    /// Ablation alternative: pairwise-logistic linear ranker.
    Linear(LinearRankerConfig),
}

impl Default for RankerKind {
    fn default() -> Self {
        Self::LambdaMart(LambdaMartConfig::default())
    }
}

/// What the training simulation emits and fits (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TargetKind {
    /// Graded ranking query groups, pairwise ranker (LHS, Algorithm 1).
    #[default]
    Pairwise,
    /// Flat expected-error-reduction regression targets, pointwise
    /// regressor (LAL).
    Pointwise,
}

/// Configuration for the Algorithm 1 trainer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LhsTrainerConfig {
    /// The base strategy whose scores populate the historical sequences.
    pub base: BaseStrategy,
    /// Algorithm 1 outer iterations (ranking query groups).
    pub rounds: usize,
    /// Candidate-set size per round (model-retrain trials per round).
    pub candidates_per_round: usize,
    /// Initial labeled set size.
    pub init_labeled: usize,
    /// Candidates with the highest measured delta moved to `L` per round.
    pub add_per_round: usize,
    /// Bucket width for converting deltas into ranking levels; `0.0`
    /// buckets each group into four equal-width levels (the paper uses a
    /// fixed interval like 0.01, which assumes a known metric scale).
    pub level_interval: f64,
    /// Feature layout for the ranker.
    pub features: LhsFeatureConfig,
    /// Next-score predictor to train.
    pub predictor: PredictorKind,
    /// Ranking model to train.
    pub ranker: RankerKind,
    /// Candidate-set size used at *selection* time by the produced
    /// [`LhsSelector`].
    pub selector_candidate_pool: usize,
}

impl Default for LhsTrainerConfig {
    fn default() -> Self {
        Self {
            base: BaseStrategy::Entropy,
            rounds: 8,
            candidates_per_round: 24,
            init_labeled: 25,
            add_per_round: 5,
            level_interval: 0.0,
            features: LhsFeatureConfig::default(),
            predictor: PredictorKind::default(),
            ranker: RankerKind::default(),
            selector_candidate_pool: 75,
        }
    }
}

/// Full configuration of the generalized trainer: the shared simulation
/// parameters plus the target shape and the meta-feature toggle.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LearnedTrainerConfig {
    /// Shared Algorithm 1 simulation parameters.
    pub trainer: LhsTrainerConfig,
    /// What the simulation emits and fits.
    pub target: TargetKind,
    /// Append pool-level meta-features to every training row (and mark
    /// the produced selector to do the same at deployment).
    pub use_meta: bool,
}

impl LearnedTrainerConfig {
    /// The classic LHS configuration: pairwise targets, no meta block.
    pub fn pairwise(trainer: LhsTrainerConfig) -> Self {
        Self {
            trainer,
            target: TargetKind::Pairwise,
            use_meta: false,
        }
    }

    /// The LAL configuration: pointwise regression targets with the
    /// pool-level meta block (the transferable form).
    pub fn pointwise(trainer: LhsTrainerConfig) -> Self {
        Self {
            trainer,
            target: TargetKind::Pointwise,
            use_meta: true,
        }
    }
}

/// Train an LHS selector per Algorithm 1 (see [`train_lhs_artifacts`]
/// for the serializable form).
pub fn train_lhs<M>(
    prototype: &M,
    samples: &[M::Sample],
    labels: &[M::Label],
    eval_samples: &[M::Sample],
    eval_labels: &[M::Label],
    config: &LhsTrainerConfig,
    seed: u64,
) -> Result<LhsSelector, Error>
where
    M: Model + Clone,
    M::Sample: Clone,
    M::Label: Clone,
{
    train_lhs_artifacts(
        prototype,
        samples,
        labels,
        eval_samples,
        eval_labels,
        config,
        seed,
    )
    .map(LhsArtifacts::into_selector)
}

/// Train a learned selector with an explicit target shape — the
/// generalized entry point behind both `LHS(...)` and `LAL(...)` bench
/// tokens. Equivalent to [`train_learned_artifacts`] +
/// [`LhsArtifacts::into_selector`].
pub fn train_learned<M>(
    prototype: &M,
    samples: &[M::Sample],
    labels: &[M::Label],
    eval_samples: &[M::Sample],
    eval_labels: &[M::Label],
    config: &LearnedTrainerConfig,
    seed: u64,
) -> Result<LhsSelector, Error>
where
    M: Model + Clone,
    M::Sample: Clone,
    M::Label: Clone,
{
    train_learned_artifacts(
        prototype,
        samples,
        labels,
        eval_samples,
        eval_labels,
        config,
        seed,
    )
    .map(LhsArtifacts::into_selector)
}

/// Train an LHS selector per Algorithm 1 on a fully labeled dataset
/// (the paper uses Subj) and a held-out evaluation split, returning the
/// serializable [`LhsArtifacts`].
///
/// Phase 1 simulates plain active learning with the base strategy to
/// collect historical sequences and trains the next-score predictor on
/// them. Phase 2 reruns the loop measuring `Eval(M′) − Eval(M)` for every
/// candidate, forming one ranking query group per round, and fits the
/// ranker.
pub fn train_lhs_artifacts<M>(
    prototype: &M,
    samples: &[M::Sample],
    labels: &[M::Label],
    eval_samples: &[M::Sample],
    eval_labels: &[M::Label],
    config: &LhsTrainerConfig,
    seed: u64,
) -> Result<LhsArtifacts, Error>
where
    M: Model + Clone,
    M::Sample: Clone,
    M::Label: Clone,
{
    assert_eq!(
        samples.len(),
        labels.len(),
        "training samples/labels misaligned"
    );
    assert_eq!(
        eval_samples.len(),
        eval_labels.len(),
        "eval samples/labels misaligned"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Beyond the base strategy's own needs, Algorithm 1 builds its
    // candidate set from entropy + LC and may featurize posteriors.
    let mut caps = config.base.caps();
    caps.entropy = true;
    caps.probs = caps.probs || config.features.use_probs;

    // ---- Phase 1: collect history sequences, train the predictor. ----
    let mut sim = Simulation::new(
        prototype.clone(),
        samples,
        labels,
        config.init_labeled,
        &mut rng,
    );
    for round in 0..config.rounds {
        sim.fit(&mut rng);
        let (unlabeled, base_scores) = sim.score_pool(config.base, &caps, seed, round, &mut rng)?;
        let batch = config.add_per_round.min(unlabeled.len());
        let picks = top_k(&base_scores, batch);
        let ids: Vec<usize> = picks.iter().map(|&p| unlabeled[p]).collect();
        sim.label(&ids);
    }
    let sequences = sim.history.non_empty_sequences();
    let predictor: TrainedPredictor = match &config.predictor {
        PredictorKind::Lstm(cfg) => {
            TrainedPredictor::Lstm(LstmPredictor::fit(&sequences, cfg.clone(), &mut rng))
        }
        PredictorKind::Ar { order } => TrainedPredictor::Ar(ArPredictor::fit(&sequences, *order)),
        PredictorKind::Holt => TrainedPredictor::Holt(HoltPredictor::fit(&sequences)),
    };

    // ---- Phase 2: Algorithm 1 — measure deltas, build ranking data. ----
    let mut sim = Simulation::new(
        prototype.clone(),
        samples,
        labels,
        config.init_labeled,
        &mut rng,
    );
    let eval_s: Vec<&M::Sample> = eval_samples.iter().collect();
    let eval_l: Vec<&M::Label> = eval_labels.iter().collect();
    let mut dataset = RankingDataset::new();
    for round in 0..config.rounds {
        sim.fit(&mut rng);
        let base_metric = sim.model.metric(&eval_s, &eval_l);
        let (unlabeled, _) = sim.score_pool(config.base, &caps, seed, round, &mut rng)?;
        if unlabeled.is_empty() {
            break;
        }
        let evals = &sim.last_evals;
        let candidates = candidate_set(evals, config.candidates_per_round);
        // Trial-retrain for every candidate in parallel (line 7 of Alg. 1).
        let labeled_ids = sim.pool.labeled().to_vec();
        let deltas: Vec<f64> = candidates
            .par_iter()
            .map(|&pos| {
                let id = unlabeled[pos];
                let mut trial = sim.model.clone();
                let mut trial_ids = labeled_ids.clone();
                trial_ids.push(id);
                let s: Vec<&M::Sample> = trial_ids.iter().map(|&i| &samples[i]).collect();
                let l: Vec<&M::Label> = trial_ids.iter().map(|&i| &labels[i]).collect();
                let mut trial_rng =
                    ChaCha8Rng::seed_from_u64(mix_seed(seed, round as u64, id as u64));
                trial.fit(&s, &l, &mut trial_rng);
                trial.metric(&eval_s, &eval_l) - base_metric
            })
            .collect();
        let rows: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&pos| {
                config.features.extract(
                    &sim.history.seq(unlabeled[pos]).to_vec(),
                    &evals[pos],
                    &predictor,
                )
            })
            .collect();
        let levels = bucket_levels(&deltas, config.level_interval);
        dataset.push(QueryGroup::new(rows, levels));
        // Line 11: move the highest-delta candidates into L.
        let best = top_k(&deltas, config.add_per_round.min(candidates.len()));
        let ids: Vec<usize> = best.iter().map(|&i| unlabeled[candidates[i]]).collect();
        sim.label(&ids);
    }

    let ranker: TrainedRanker = match &config.ranker {
        RankerKind::LambdaMart(cfg) => TrainedRanker::LambdaMart(LambdaMart::fit(&dataset, cfg)),
        RankerKind::Linear(cfg) => {
            TrainedRanker::Linear(LinearRanker::fit(&dataset, cfg, &mut rng))
        }
    };
    Ok(LhsArtifacts {
        ranker,
        predictor,
        features: config.features,
        candidate_pool: config.selector_candidate_pool,
        use_meta: false,
    })
}

/// Train a learned selector with an explicit [`TargetKind`] and optional
/// meta-feature block, returning the serializable [`LhsArtifacts`].
///
/// The classic configuration (pairwise, no meta) routes through
/// [`train_lhs_artifacts`] unchanged — identical RNG stream, identical
/// artifacts. Every other configuration runs the same two-phase
/// simulation but collects its training rows through the generalized
/// emitter: meta-features appended per round when requested, and either
/// graded query groups (pairwise) or flat regression pairs (pointwise).
pub fn train_learned_artifacts<M>(
    prototype: &M,
    samples: &[M::Sample],
    labels: &[M::Label],
    eval_samples: &[M::Sample],
    eval_labels: &[M::Label],
    config: &LearnedTrainerConfig,
    seed: u64,
) -> Result<LhsArtifacts, Error>
where
    M: Model + Clone,
    M::Sample: Clone,
    M::Label: Clone,
{
    if config.target == TargetKind::Pairwise && !config.use_meta {
        return train_lhs_artifacts(
            prototype,
            samples,
            labels,
            eval_samples,
            eval_labels,
            &config.trainer,
            seed,
        );
    }
    let trainer = &config.trainer;
    assert_eq!(
        samples.len(),
        labels.len(),
        "training samples/labels misaligned"
    );
    assert_eq!(
        eval_samples.len(),
        eval_labels.len(),
        "eval samples/labels misaligned"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut caps = trainer.base.caps();
    caps.entropy = true;
    caps.probs = caps.probs || trainer.features.use_probs;

    // ---- Phase 1: identical to the pairwise path. ----
    let mut sim = Simulation::new(
        prototype.clone(),
        samples,
        labels,
        trainer.init_labeled,
        &mut rng,
    );
    for round in 0..trainer.rounds {
        sim.fit(&mut rng);
        let (unlabeled, base_scores) =
            sim.score_pool(trainer.base, &caps, seed, round, &mut rng)?;
        let batch = trainer.add_per_round.min(unlabeled.len());
        let picks = top_k(&base_scores, batch);
        let ids: Vec<usize> = picks.iter().map(|&p| unlabeled[p]).collect();
        sim.label(&ids);
    }
    let sequences = sim.history.non_empty_sequences();
    let predictor: TrainedPredictor = match &trainer.predictor {
        PredictorKind::Lstm(cfg) => {
            TrainedPredictor::Lstm(LstmPredictor::fit(&sequences, cfg.clone(), &mut rng))
        }
        PredictorKind::Ar { order } => TrainedPredictor::Ar(ArPredictor::fit(&sequences, *order)),
        PredictorKind::Holt => TrainedPredictor::Holt(HoltPredictor::fit(&sequences)),
    };

    // ---- Phase 2: measure deltas, emit targets in the requested shape. ----
    let mut sim = Simulation::new(
        prototype.clone(),
        samples,
        labels,
        trainer.init_labeled,
        &mut rng,
    );
    let eval_s: Vec<&M::Sample> = eval_samples.iter().collect();
    let eval_l: Vec<&M::Label> = eval_labels.iter().collect();
    let mut dataset = RankingDataset::new();
    let mut flat_rows: Vec<Vec<f64>> = Vec::new();
    let mut flat_targets: Vec<f64> = Vec::new();
    let pool_size = samples.len();
    for round in 0..trainer.rounds {
        sim.fit(&mut rng);
        let base_metric = sim.model.metric(&eval_s, &eval_l);
        let (unlabeled, _) = sim.score_pool(trainer.base, &caps, seed, round, &mut rng)?;
        if unlabeled.is_empty() {
            break;
        }
        let evals = &sim.last_evals;
        let candidates = candidate_set(evals, trainer.candidates_per_round);
        let labeled_ids = sim.pool.labeled().to_vec();
        let deltas: Vec<f64> = candidates
            .par_iter()
            .map(|&pos| {
                let id = unlabeled[pos];
                let mut trial = sim.model.clone();
                let mut trial_ids = labeled_ids.clone();
                trial_ids.push(id);
                let s: Vec<&M::Sample> = trial_ids.iter().map(|&i| &samples[i]).collect();
                let l: Vec<&M::Label> = trial_ids.iter().map(|&i| &labels[i]).collect();
                let mut trial_rng =
                    ChaCha8Rng::seed_from_u64(mix_seed(seed, round as u64, id as u64));
                trial.fit(&s, &l, &mut trial_rng);
                trial.metric(&eval_s, &eval_l) - base_metric
            })
            .collect();
        let meta = config
            .use_meta
            .then(|| PoolMetaFeatures::from_evals(evals, labeled_ids.len(), pool_size, round));
        let rows: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&pos| {
                let mut row = trainer.features.extract(
                    &sim.history.seq(unlabeled[pos]).to_vec(),
                    &evals[pos],
                    &predictor,
                );
                if let Some(meta) = &meta {
                    meta.append_to(&mut row);
                }
                row
            })
            .collect();
        match config.target {
            TargetKind::Pairwise => {
                let levels = bucket_levels(&deltas, trainer.level_interval);
                dataset.push(QueryGroup::new(rows, levels));
            }
            TargetKind::Pointwise => {
                flat_rows.extend(rows);
                flat_targets.extend_from_slice(&deltas);
            }
        }
        let best = top_k(&deltas, trainer.add_per_round.min(candidates.len()));
        let ids: Vec<usize> = best.iter().map(|&i| unlabeled[candidates[i]]).collect();
        sim.label(&ids);
    }

    let ranker: TrainedRanker = match config.target {
        TargetKind::Pairwise => match &trainer.ranker {
            RankerKind::LambdaMart(cfg) => {
                TrainedRanker::LambdaMart(LambdaMart::fit(&dataset, cfg))
            }
            RankerKind::Linear(cfg) => {
                TrainedRanker::Linear(LinearRanker::fit(&dataset, cfg, &mut rng))
            }
        },
        // LAL reuses the ranker hyper-parameters for its regression fit:
        // boosted mean-leaf trees mirror the LambdaMART ensemble shape,
        // and the linear ablation becomes ridge least squares.
        TargetKind::Pointwise => match &trainer.ranker {
            RankerKind::LambdaMart(cfg) => {
                let pw = PointwiseConfig {
                    n_trees: cfg.n_trees,
                    learning_rate: cfg.learning_rate,
                    tree: cfg.tree.clone(),
                    l2: 1.0,
                };
                TrainedRanker::Pointwise(PointwiseRegressor::fit_trees(
                    &flat_rows,
                    &flat_targets,
                    &pw,
                ))
            }
            RankerKind::Linear(_) => TrainedRanker::Pointwise(PointwiseRegressor::fit_linear(
                &flat_rows,
                &flat_targets,
                1.0,
            )),
        },
    };
    Ok(LhsArtifacts {
        ranker,
        predictor,
        features: trainer.features,
        candidate_pool: trainer.selector_candidate_pool,
        use_meta: config.use_meta,
    })
}

/// Convert raw improvement deltas into graded relevance levels (§4.4.3):
/// with a fixed `interval`, level = number of intervals above the group
/// minimum; with `interval == 0`, each group spans four equal-width
/// levels. Degenerate groups (all deltas equal) get all-zero levels.
pub fn bucket_levels(deltas: &[f64], interval: f64) -> Vec<f64> {
    if deltas.is_empty() {
        return Vec::new();
    }
    let min = deltas.iter().copied().fold(f64::INFINITY, f64::min);
    let max = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min) < 1e-12 {
        return vec![0.0; deltas.len()];
    }
    let width = if interval > 0.0 {
        interval
    } else {
        (max - min) / 4.0
    };
    deltas
        .iter()
        .map(|&d| {
            let level = ((d - min) / width).floor();
            // Cap so the max delta is its own level even with rounding.
            level.min(((max - min) / width).floor())
        })
        .collect()
}

/// Internal simulation state shared by the two phases of [`train_lhs`]:
/// the same [`Pool`] partition the driver uses, minus the pipeline
/// plumbing the trainer does not need.
struct Simulation<'a, M: Model> {
    model: M,
    samples: &'a [M::Sample],
    labels: &'a [M::Label],
    pool: Pool,
    history: HistoryStore,
    last_evals: Vec<SampleEval>,
}

impl<'a, M: Model> Simulation<'a, M> {
    fn new(
        model: M,
        samples: &'a [M::Sample],
        labels: &'a [M::Label],
        init: usize,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let n = samples.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut pool = Pool::new(n);
        pool.label_batch(&order[..init.min(n)]);
        Self {
            model,
            samples,
            labels,
            pool,
            history: HistoryStore::new(n),
            last_evals: Vec::new(),
        }
    }

    fn fit(&mut self, rng: &mut ChaCha8Rng) {
        let s: Vec<&M::Sample> = self
            .pool
            .labeled()
            .iter()
            .map(|&i| &self.samples[i])
            .collect();
        let l: Vec<&M::Label> = self
            .pool
            .labeled()
            .iter()
            .map(|&i| &self.labels[i])
            .collect();
        self.model.fit(&s, &l, rng);
    }

    /// Evaluate the unlabeled pool, appending base scores to the history.
    /// Returns the unlabeled ids and their base scores; evals are stashed
    /// in `last_evals` (parallel to the returned ids).
    fn score_pool(
        &mut self,
        base: BaseStrategy,
        caps: &crate::eval::EvalCaps,
        seed: u64,
        round: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<(Vec<usize>, Vec<f64>), Error> {
        let unlabeled: Vec<usize> = self.pool.unlabeled().to_vec();
        let model = &self.model;
        let samples = self.samples;
        self.last_evals = unlabeled
            .par_iter()
            .map(|&id| {
                model.eval_sample(&samples[id], caps, mix_seed(seed, round as u64, id as u64))
            })
            .collect();
        let mut scores = Vec::with_capacity(unlabeled.len());
        for eval in &self.last_evals {
            let r: f64 = rand::Rng::gen(rng);
            scores.push(base.base_score(eval, r)?);
        }
        for (&id, &s) in unlabeled.iter().zip(&scores) {
            self.history.append(id, s);
        }
        Ok((unlabeled, scores))
    }

    fn label(&mut self, ids: &[usize]) {
        for &id in ids {
            if !self.pool.is_labeled(id) {
                self.pool.label(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_levels_fixed_interval() {
        // The paper's worked example: interval 0.01 over
        // [0.01, 0.015, 0.02, 0.008, 0.025] → levels {0,0,1,0,1} relative
        // to min 0.008… the paper groups into 3 levels; with floor
        // semantics: (d - 0.008)/0.01 → [0.2,0.7,1.2,0,1.7] → [0,0,1,0,1].
        let levels = bucket_levels(&[0.01, 0.015, 0.02, 0.008, 0.025], 0.01);
        assert_eq!(levels, vec![0.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn bucket_levels_auto_spans_four_buckets() {
        let levels = bucket_levels(&[0.0, 0.25, 0.5, 0.75, 1.0], 0.0);
        assert_eq!(levels, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn bucket_levels_degenerate_and_empty() {
        assert_eq!(bucket_levels(&[0.5, 0.5], 0.0), vec![0.0, 0.0]);
        assert!(bucket_levels(&[], 0.01).is_empty());
    }
}

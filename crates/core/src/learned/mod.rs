//! The learned-selector subsystem: LHS (§4.4, Algorithm 1) and LAL.
//!
//! LHS casts sample selection as learning-to-rank: each active-learning
//! iteration is a *query*, the candidate samples are its *documents*, and
//! the graded relevance of a candidate is how much adding it actually
//! improved the model (`Eval(M′) − Eval(M)`, bucketed into levels). LAL
//! (Konyushkova et al.) keeps the same simulation but regresses the raw
//! improvement deltas pointwise, and — combined with pool-level
//! meta-features — produces selectors that transfer across datasets
//! (Chu & Lin).
//!
//! The subsystem is layered so each concern is data, not a bolt-on:
//!
//! * [`features`] — per-sample history features ([`LhsFeatureConfig`]:
//!   raw window, fluctuation, Mann–Kendall trend, predicted next score,
//!   output distribution) plus pool-level meta-features
//!   ([`PoolMetaFeatures`]) and the §4.4.1 candidate set;
//! * [`targets`] — the two-phase Algorithm 1 training simulation,
//!   generalized over [`TargetKind`] (pairwise ranking groups for LHS,
//!   pointwise expected-error-reduction targets for LAL);
//! * [`artifacts`] — the serializable trained bundle and the versioned
//!   `HLRN1` file format ([`save_artifacts`] / [`load_artifacts`]) for
//!   cross-process, cross-dataset deployment;
//! * [`selector`] — the runtime [`LearnedSelector`] behind the
//!   pipeline's `Select` stage (the historical `LhsSelector` name is an
//!   alias).
//!
//! The legacy `histal_core::lhs` module re-exports everything here, so
//! pre-refactor imports keep compiling; the classic LHS configuration
//! (pairwise targets, no meta block) follows the exact code path — and
//! RNG stream — it always did.

pub mod artifacts;
pub mod features;
pub mod selector;
pub mod targets;

pub use artifacts::{
    load_artifacts, save_artifacts, ArtifactProvenance, LhsArtifacts, TrainedPredictor,
    TrainedRanker, ARTIFACT_MAGIC, ARTIFACT_VERSION,
};
pub use features::{candidate_set, LhsFeatureConfig, PoolMetaFeatures, META_FEATURE_WIDTH};
pub use selector::{LearnedSelector, LhsSelector};
pub use targets::{
    bucket_levels, train_learned, train_learned_artifacts, train_lhs, train_lhs_artifacts,
    LearnedTrainerConfig, LhsTrainerConfig, PredictorKind, RankerKind, TargetKind,
};

//! Feature extraction for the learned selectors (§4.4.2).
//!
//! Two layers of features feed the learned rankers:
//!
//! * **Per-sample history features** ([`LhsFeatureConfig`]): the raw
//!   last-`l` window of historical scores, the fluctuation (window
//!   variance), the Mann–Kendall trend statistic, the predicted next
//!   score, and the model's output distribution — one row per candidate
//!   sample, exactly the paper's feature set.
//! * **Pool-level meta-features** ([`PoolMetaFeatures`]): label ratio,
//!   pool size, round index, and the moments of the pool's uncertainty
//!   distribution. These describe the *state of the AL problem* rather
//!   than any one sample, which is what makes a selector trained on
//!   dataset A plausible on dataset B (Chu & Lin's transfer argument):
//!   the per-sample features only transfer when the pool context they
//!   were learned in is part of the row.
//!
//! The candidate set of §4.4.1 ([`candidate_set`]) also lives here: the
//! union of the top-`k/2` samples by entropy and by least confidence.

use serde::{Deserialize, Serialize};

use histal_tseries::{
    autocorrelation, last_window, mann_kendall, window_variance, SequencePredictor,
};

use crate::driver::top_k;
use crate::eval::SampleEval;

/// Which feature groups the ranker sees — each toggle corresponds to one
/// row of the paper's ablation study (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LhsFeatureConfig {
    /// History window length `l` for the raw-score features.
    pub window: usize,
    /// Number of probability features (posterior sorted descending,
    /// padded/truncated to this width).
    pub n_prob_features: usize,
    /// Include the raw last-`l` historical scores.
    pub use_history: bool,
    /// Include the window variance (fluctuation).
    pub use_fluctuation: bool,
    /// Include the Mann–Kendall trend statistics.
    pub use_trend: bool,
    /// Include the predicted next score.
    pub use_prediction: bool,
    /// Include the output probability distribution.
    pub use_probs: bool,
    /// Include the lag-1 autocorrelation of the window — an *extension*
    /// feature beyond the paper (its conclusion calls for exploring more
    /// sequence features): separates oscillating from drifting histories
    /// at equal variance.
    pub use_autocorr: bool,
}

impl Default for LhsFeatureConfig {
    fn default() -> Self {
        Self {
            window: 5,
            n_prob_features: 2,
            use_history: true,
            use_fluctuation: true,
            use_trend: true,
            use_prediction: true,
            use_probs: true,
            use_autocorr: false,
        }
    }
}

impl LhsFeatureConfig {
    /// Total feature-vector width under this configuration.
    pub fn width(&self) -> usize {
        let mut w = 0;
        if self.use_history {
            w += self.window;
        }
        if self.use_fluctuation {
            w += 1;
        }
        if self.use_trend {
            w += 2; // z statistic and tau
        }
        if self.use_prediction {
            w += 1;
        }
        if self.use_probs {
            w += self.n_prob_features;
        }
        if self.use_autocorr {
            w += 1;
        }
        w
    }

    /// Extract the ranking features for one sample.
    ///
    /// `seq` is the historical evaluation sequence *including* the current
    /// iteration's score; `eval` is the current model evaluation.
    pub fn extract(
        &self,
        seq: &[f64],
        eval: &SampleEval,
        predictor: &dyn SequencePredictor,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.width());
        if self.use_history {
            let w = last_window(seq, self.window);
            // Left-pad with zeros so early iterations produce fixed-width rows.
            out.extend(std::iter::repeat(0.0).take(self.window - w.len()));
            out.extend_from_slice(w);
        }
        if self.use_fluctuation {
            out.push(window_variance(seq, self.window));
        }
        if self.use_trend {
            let mk = mann_kendall(last_window(seq, self.window));
            out.push(mk.z);
            out.push(mk.tau);
        }
        if self.use_prediction {
            out.push(predictor.predict_next(seq));
        }
        if self.use_probs {
            let mut probs = eval.probs.clone();
            probs.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            probs.resize(self.n_prob_features, 0.0);
            out.extend_from_slice(&probs[..self.n_prob_features]);
        }
        if self.use_autocorr {
            out.push(autocorrelation(last_window(seq, self.window), 1));
        }
        out
    }
}

/// Width of the pool-level meta-feature block appended by
/// [`PoolMetaFeatures::append_to`].
pub const META_FEATURE_WIDTH: usize = 6;

/// Pool-level meta-features: the state of the AL problem at the moment a
/// row is featurized, independent of which sample the row describes.
/// Computed once per round from the full unlabeled pool, then appended
/// to every candidate row. All reductions are serial left-to-right folds
/// over [`Pool::unlabeled`](crate::pool::Pool::unlabeled) order, so the
/// values are independent of the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolMetaFeatures {
    /// `|L| / (|L| + |U|)` — how far annotation has progressed.
    pub label_ratio: f64,
    /// `ln(1 + |L| + |U|)` — pool scale, compressed so MR-sized and
    /// AG-News-sized pools land in comparable range.
    pub log_pool_size: f64,
    /// Round index (0-based), as a float.
    pub round: f64,
    /// Mean of the pool's uncertainty scores (entropy of each unlabeled
    /// sample's posterior).
    pub score_mean: f64,
    /// Standard deviation of the uncertainty scores.
    pub score_std: f64,
    /// Skewness of the uncertainty scores (0 when the spread is
    /// degenerate).
    pub score_skew: f64,
}

impl PoolMetaFeatures {
    /// Compute the meta-features from the uncertainty scores of the
    /// unlabeled pool (one entropy per unlabeled sample, in pool order)
    /// and the round bookkeeping.
    pub fn compute(uncertainty: &[f64], n_labeled: usize, pool_size: usize, round: usize) -> Self {
        let n = uncertainty.len() as f64;
        let (mean, std, skew) = if uncertainty.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            let mut sum = 0.0;
            for &u in uncertainty {
                sum += u;
            }
            let mean = sum / n;
            let (mut m2, mut m3) = (0.0, 0.0);
            for &u in uncertainty {
                let d = u - mean;
                m2 += d * d;
                m3 += d * d * d;
            }
            let var = m2 / n;
            let std = var.sqrt();
            let skew = if std > 1e-12 {
                (m3 / n) / (std * std * std)
            } else {
                0.0
            };
            (mean, std, skew)
        };
        Self {
            label_ratio: if pool_size > 0 {
                n_labeled as f64 / pool_size as f64
            } else {
                0.0
            },
            log_pool_size: (1.0 + pool_size as f64).ln(),
            round: round as f64,
            score_mean: mean,
            score_std: std,
            score_skew: skew,
        }
    }

    /// Compute from per-sample evaluations (reads each sample's entropy).
    pub fn from_evals(
        evals: &[SampleEval],
        n_labeled: usize,
        pool_size: usize,
        round: usize,
    ) -> Self {
        let uncertainty: Vec<f64> = evals.iter().map(|e| e.entropy).collect();
        Self::compute(&uncertainty, n_labeled, pool_size, round)
    }

    /// Append the meta block (exactly [`META_FEATURE_WIDTH`] values) to a
    /// per-sample feature row.
    pub fn append_to(&self, row: &mut Vec<f64>) {
        row.push(self.label_ratio);
        row.push(self.log_pool_size);
        row.push(self.round);
        row.push(self.score_mean);
        row.push(self.score_std);
        row.push(self.score_skew);
    }
}

/// Build the candidate set of §4.4.1: the union of the top-`k/2` samples
/// by entropy and by least confidence. Returns positions into `evals`.
pub fn candidate_set(evals: &[SampleEval], pool: usize) -> Vec<usize> {
    let k = pool.min(evals.len());
    if k == evals.len() {
        return (0..evals.len()).collect();
    }
    let half = k.div_ceil(2);
    let ent: Vec<f64> = evals.iter().map(|e| e.entropy).collect();
    let lc: Vec<f64> = evals.iter().map(|e| e.least_confidence).collect();
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    let mut seen = vec![false; evals.len()];
    for &pos in top_k(&ent, half).iter().chain(top_k(&lc, half).iter()) {
        if !seen[pos] {
            seen[pos] = true;
            picked.push(pos);
        }
    }
    // Top up from entropy order if the union was smaller than k.
    if picked.len() < k {
        for pos in top_k(&ent, evals.len()) {
            if !seen[pos] {
                seen[pos] = true;
                picked.push(pos);
                if picked.len() == k {
                    break;
                }
            }
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_tseries::SequencePredictor;

    pub(crate) struct ConstPredictor(pub f64);
    impl SequencePredictor for ConstPredictor {
        fn predict_next(&self, _seq: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn feature_width_matches_extract() {
        let cfg = LhsFeatureConfig::default();
        let eval = SampleEval::from_probs(vec![0.6, 0.4]);
        let feats = cfg.extract(&[0.1, 0.2, 0.3], &eval, &ConstPredictor(0.5));
        assert_eq!(feats.len(), cfg.width());
    }

    #[test]
    fn history_features_left_padded() {
        let cfg = LhsFeatureConfig {
            window: 4,
            use_fluctuation: false,
            use_trend: false,
            use_prediction: false,
            use_probs: false,
            ..Default::default()
        };
        let eval = SampleEval::default();
        let feats = cfg.extract(&[0.9], &eval, &ConstPredictor(0.0));
        assert_eq!(feats, vec![0.0, 0.0, 0.0, 0.9]);
    }

    #[test]
    fn toggles_remove_feature_groups() {
        let full = LhsFeatureConfig::default();
        let no_trend = LhsFeatureConfig {
            use_trend: false,
            ..full
        };
        assert_eq!(full.width() - no_trend.width(), 2);
        let no_probs = LhsFeatureConfig {
            use_probs: false,
            ..full
        };
        assert_eq!(full.width() - no_probs.width(), full.n_prob_features);
        let with_acf = LhsFeatureConfig {
            use_autocorr: true,
            ..full
        };
        assert_eq!(with_acf.width() - full.width(), 1);
    }

    #[test]
    fn autocorr_feature_extracted_when_enabled() {
        let cfg = LhsFeatureConfig {
            window: 6,
            use_history: false,
            use_fluctuation: false,
            use_trend: false,
            use_prediction: false,
            use_probs: false,
            use_autocorr: true,
            n_prob_features: 2,
        };
        let eval = SampleEval::default();
        let osc = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let feats = cfg.extract(&osc, &eval, &ConstPredictor(0.0));
        assert_eq!(feats.len(), 1);
        assert!(feats[0] < -0.5, "oscillation ACF {}", feats[0]);
    }

    #[test]
    fn probs_sorted_and_padded() {
        let cfg = LhsFeatureConfig {
            window: 1,
            n_prob_features: 3,
            use_history: false,
            use_fluctuation: false,
            use_trend: false,
            use_prediction: false,
            use_probs: true,
            use_autocorr: false,
        };
        let eval = SampleEval::from_probs(vec![0.3, 0.7]);
        let feats = cfg.extract(&[], &eval, &ConstPredictor(0.0));
        assert_eq!(feats, vec![0.7, 0.3, 0.0]);
    }

    #[test]
    fn empty_history_sequence_yields_fixed_width_row() {
        // A sample featurized before any score has been appended (an
        // empty history window) must still produce a full-width row with
        // an all-zero history block and finite values everywhere.
        let cfg = LhsFeatureConfig {
            use_autocorr: true,
            ..Default::default()
        };
        let eval = SampleEval::from_probs(vec![0.5, 0.5]);
        let feats = cfg.extract(&[], &eval, &ConstPredictor(0.25));
        assert_eq!(feats.len(), cfg.width());
        assert!(feats[..cfg.window].iter().all(|&v| v == 0.0));
        assert!(feats.iter().all(|v| v.is_finite()), "{feats:?}");
    }

    #[test]
    fn probs_shorter_than_n_prob_features_padded_with_zeros() {
        // Fewer classes than requested probability features: the block
        // is zero-padded, never truncated short or panicking.
        let cfg = LhsFeatureConfig {
            window: 1,
            n_prob_features: 5,
            use_history: false,
            use_fluctuation: false,
            use_trend: false,
            use_prediction: false,
            use_probs: true,
            use_autocorr: false,
        };
        let eval = SampleEval::from_probs(vec![1.0]);
        let feats = cfg.extract(&[0.2], &eval, &ConstPredictor(0.0));
        assert_eq!(feats, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn candidate_set_pool_smaller_than_candidates_returns_all() {
        // Pools smaller than the requested candidate count (and smaller
        // than n_prob_features-sized slices) must return every position
        // exactly once.
        let evals = vec![SampleEval::from_probs(vec![0.5, 0.5]); 2];
        assert_eq!(candidate_set(&evals, 75), vec![0, 1]);
        assert_eq!(candidate_set(&[], 75), Vec::<usize>::new());
    }

    #[test]
    fn meta_features_deterministic_across_thread_counts() {
        // The meta block is a serial fold; running it under thread pools
        // of different sizes (as the grid executor does) must produce
        // bit-identical values.
        let evals: Vec<SampleEval> = (0..512)
            .map(|i| {
                let p = 0.5 + 0.4 * ((i as f64) * 0.137).sin();
                SampleEval::from_probs(vec![p, 1.0 - p])
            })
            .collect();
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            pool.install(|| PoolMetaFeatures::from_evals(&evals, 40, 552, 3))
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four);
        let mut row = vec![0.5];
        one.append_to(&mut row);
        assert_eq!(row.len(), 1 + META_FEATURE_WIDTH);
        assert!((one.label_ratio - 40.0 / 552.0).abs() < 1e-15);
        assert_eq!(one.round, 3.0);
    }

    #[test]
    fn meta_features_empty_pool_is_finite() {
        let meta = PoolMetaFeatures::compute(&[], 10, 10, 7);
        assert_eq!(meta.score_mean, 0.0);
        assert_eq!(meta.score_std, 0.0);
        assert_eq!(meta.score_skew, 0.0);
        assert_eq!(meta.label_ratio, 1.0);
    }

    #[test]
    fn candidate_set_unions_entropy_and_lc() {
        // Sample 0: high entropy, low LC. Sample 1: low entropy, high LC.
        // Sample 2: low both. Pool of 2 must pick 0 and 1.
        let e0 = SampleEval {
            entropy: 1.0,
            least_confidence: 0.0,
            ..Default::default()
        };
        let e1 = SampleEval {
            entropy: 0.0,
            least_confidence: 1.0,
            ..Default::default()
        };
        let e2 = SampleEval::default();
        let picked = candidate_set(&[e0, e1, e2], 2);
        assert!(picked.contains(&0) && picked.contains(&1));
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn candidate_set_small_pool_returns_all() {
        let evals = vec![SampleEval::default(); 3];
        assert_eq!(candidate_set(&evals, 10), vec![0, 1, 2]);
    }

    #[test]
    fn candidate_set_tops_up_on_overlap() {
        // All samples identical: entropy-top and LC-top overlap fully; the
        // set must still reach the requested size.
        let evals = vec![SampleEval::from_probs(vec![0.5, 0.5]); 6];
        assert_eq!(candidate_set(&evals, 4).len(), 4);
    }
}

//! The runtime selection component shared by LHS and LAL.
//!
//! [`LearnedSelector`] bundles a trained ranker, a trained next-score
//! predictor and the feature layout they were trained with; each round it
//! ranks the §4.4.1 candidate set (top entropy ∪ top LC) and picks the
//! best batch. The historical `LhsSelector` name is a type alias — the
//! pairwise-trained LHS selector and the pointwise LAL regressor are the
//! same runtime object, differing only in how the ranker inside was
//! fitted and whether pool-level meta-features are appended to each row.

use histal_ltr::Ranker;
use histal_tseries::SequencePredictor;

use crate::driver::top_k;
use crate::eval::SampleEval;
use crate::history::HistoryStore;

use super::features::{candidate_set, LhsFeatureConfig, PoolMetaFeatures};

/// A trained learned-selection component: ranker + predictor + feature
/// layout. Cheaply cloneable (the trained parts are shared), so one
/// trained selector can serve many runs.
#[derive(Clone)]
pub struct LearnedSelector {
    ranker: std::sync::Arc<dyn Ranker>,
    predictor: std::sync::Arc<dyn SequencePredictor>,
    features: LhsFeatureConfig,
    /// Candidate-set size (union of top-entropy and top-LC slices,
    /// §4.4.1). Clamped to the pool size at selection time.
    candidate_pool: usize,
    /// Append pool-level meta-features to every candidate row (the LAL /
    /// transfer configuration). Off for classic LHS selectors, keeping
    /// their feature rows byte-identical to the pre-meta implementation.
    use_meta: bool,
}

/// The historical name of [`LearnedSelector`] (pairwise LHS was the only
/// learned selector before LAL landed).
pub type LhsSelector = LearnedSelector;

impl LearnedSelector {
    /// Assemble a selector from pre-trained parts.
    pub fn new(
        ranker: Box<dyn Ranker>,
        predictor: Box<dyn SequencePredictor>,
        features: LhsFeatureConfig,
        candidate_pool: usize,
    ) -> Self {
        assert!(candidate_pool > 0, "candidate pool must be positive");
        Self {
            ranker: std::sync::Arc::from(ranker),
            predictor: std::sync::Arc::from(predictor),
            features,
            candidate_pool,
            use_meta: false,
        }
    }

    /// Toggle the pool-level meta-feature block. Must match the layout
    /// the ranker was trained with.
    pub fn with_meta(mut self, use_meta: bool) -> Self {
        self.use_meta = use_meta;
        self
    }

    /// The feature configuration the ranker was trained with.
    pub fn feature_config(&self) -> &LhsFeatureConfig {
        &self.features
    }

    /// Whether ranking features read the full posterior vector, so the
    /// driver must request [`EvalCaps::probs`](crate::eval::EvalCaps)
    /// from the model.
    pub fn needs_probs(&self) -> bool {
        self.features.use_probs
    }

    /// Whether candidate rows carry the pool-level meta-feature block
    /// (the `Select` stage then computes one [`PoolMetaFeatures`] per
    /// round from its context).
    pub fn uses_meta(&self) -> bool {
        self.use_meta
    }

    /// Rank the candidate set and return up to `batch` positions into
    /// `unlabeled`, best first.
    pub fn select(
        &self,
        unlabeled: &[usize],
        evals: &[SampleEval],
        history: &HistoryStore,
        batch: usize,
    ) -> Vec<usize> {
        self.select_with_scratch(unlabeled, evals, history, batch, &mut Vec::new())
    }

    /// [`Self::select`] with a caller-owned scratch buffer for
    /// materializing each candidate's (possibly ring-wrapped) history
    /// window, so repeated rounds allocate no per-candidate sequence
    /// copies. The driver's `LhsSelect` stage reuses one buffer across
    /// the whole run.
    pub fn select_with_scratch(
        &self,
        unlabeled: &[usize],
        evals: &[SampleEval],
        history: &HistoryStore,
        batch: usize,
        seq_buf: &mut Vec<f64>,
    ) -> Vec<usize> {
        self.select_with_meta(unlabeled, evals, history, batch, seq_buf, None)
    }

    /// [`Self::select_with_scratch`] with an optional pool-level
    /// meta-feature block appended to every candidate row. Selectors
    /// trained without meta-features ([`Self::uses_meta`] is `false`)
    /// ignore `meta`, so the classic LHS path is unchanged whether or
    /// not the caller computed the block.
    pub fn select_with_meta(
        &self,
        unlabeled: &[usize],
        evals: &[SampleEval],
        history: &HistoryStore,
        batch: usize,
        seq_buf: &mut Vec<f64>,
        meta: Option<&PoolMetaFeatures>,
    ) -> Vec<usize> {
        let meta = if self.use_meta { meta } else { None };
        let candidates = candidate_set(evals, self.candidate_pool);
        let rows: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&pos| {
                history.seq(unlabeled[pos]).copy_into(seq_buf);
                let mut row = self
                    .features
                    .extract(seq_buf, &evals[pos], self.predictor.as_ref());
                if let Some(meta) = meta {
                    meta.append_to(&mut row);
                }
                row
            })
            .collect();
        let scores = self.ranker.score_batch(&rows);
        let best = top_k(&scores, batch.min(candidates.len()));
        best.into_iter().map(|i| candidates[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_tseries::SequencePredictor;

    struct ConstPredictor(f64);
    impl SequencePredictor for ConstPredictor {
        fn predict_next(&self, _seq: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn selector_zero_pool_panics() {
        struct ZeroRanker;
        impl Ranker for ZeroRanker {
            fn score(&self, _f: &[f64]) -> f64 {
                0.0
            }
        }
        let _ = LhsSelector::new(
            Box::new(ZeroRanker),
            Box::new(ConstPredictor(0.0)),
            LhsFeatureConfig::default(),
            0,
        );
    }

    #[test]
    fn meta_block_changes_selection_input_only_when_enabled() {
        // A ranker that scores by row width: with the meta block the rows
        // are wider, so selection can observe the difference — but only
        // when the selector opts in.
        struct WidthRanker;
        impl Ranker for WidthRanker {
            fn score(&self, f: &[f64]) -> f64 {
                f.len() as f64
            }
        }
        let features = LhsFeatureConfig::default();
        let plain = LearnedSelector::new(
            Box::new(WidthRanker),
            Box::new(ConstPredictor(0.0)),
            features,
            4,
        );
        let meta_sel = plain.clone().with_meta(true);
        assert!(!plain.uses_meta());
        assert!(meta_sel.uses_meta());

        let evals = vec![SampleEval::from_probs(vec![0.6, 0.4]); 3];
        let mut history = HistoryStore::new(3);
        for id in 0..3 {
            history.append(id, 0.5);
        }
        let meta = PoolMetaFeatures::from_evals(&evals, 1, 4, 0);
        let unlabeled = [0, 1, 2];
        // Passing meta to a non-meta selector must not change its picks.
        let a = plain.select_with_scratch(&unlabeled, &evals, &history, 2, &mut Vec::new());
        let b = plain.select_with_meta(
            &unlabeled,
            &evals,
            &history,
            2,
            &mut Vec::new(),
            Some(&meta),
        );
        assert_eq!(a, b);
        // The meta selector consumes the block without panicking.
        let c = meta_sel.select_with_meta(
            &unlabeled,
            &evals,
            &history,
            2,
            &mut Vec::new(),
            Some(&meta),
        );
        assert_eq!(c.len(), 2);
    }
}

//! Task evaluation metrics: classification accuracy and span-level F1.
//!
//! The paper evaluates text classification by accuracy and NER by average
//! F1 over entity spans (following the original model papers).

use serde::{Deserialize, Serialize};

/// Fraction of positions where `pred == gold`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn accuracy(pred: &[usize], gold: &[usize]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "prediction/gold misaligned");
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(gold).filter(|(a, b)| a == b).count();
    correct as f64 / pred.len() as f64
}

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PrF1 {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl PrF1 {
    /// Compute from raw counts. Empty denominators yield 0 (and F1 = 0
    /// unless both precision and recall are positive).
    pub fn from_counts(true_pos: usize, n_pred: usize, n_gold: usize) -> Self {
        let precision = if n_pred == 0 {
            0.0
        } else {
            true_pos as f64 / n_pred as f64
        };
        let recall = if n_gold == 0 {
            0.0
        } else {
            true_pos as f64 / n_gold as f64
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Micro-averaged span F1: spans are `(start, end_inclusive, type)`
/// triples per sentence; a predicted span counts as correct only on exact
/// boundary + type match (CoNLL convention).
pub fn span_f1(
    pred_spans: &[Vec<(usize, usize, usize)>],
    gold_spans: &[Vec<(usize, usize, usize)>],
) -> PrF1 {
    assert_eq!(pred_spans.len(), gold_spans.len(), "sentence counts differ");
    let mut tp = 0;
    let mut n_pred = 0;
    let mut n_gold = 0;
    for (pred, gold) in pred_spans.iter().zip(gold_spans) {
        n_pred += pred.len();
        n_gold += gold.len();
        for span in pred {
            if gold.contains(span) {
                tp += 1;
            }
        }
    }
    PrF1::from_counts(tp, n_pred, n_gold)
}

/// Per-type span F1 (the per-entity breakdown `conlleval` prints):
/// returns one [`PrF1`] per entity-type id in `0..n_types`.
pub fn span_f1_per_type(
    pred_spans: &[Vec<(usize, usize, usize)>],
    gold_spans: &[Vec<(usize, usize, usize)>],
    n_types: usize,
) -> Vec<PrF1> {
    assert_eq!(pred_spans.len(), gold_spans.len(), "sentence counts differ");
    let mut tp = vec![0usize; n_types];
    let mut n_pred = vec![0usize; n_types];
    let mut n_gold = vec![0usize; n_types];
    for (pred, gold) in pred_spans.iter().zip(gold_spans) {
        for &(_, _, ty) in pred {
            if ty < n_types {
                n_pred[ty] += 1;
            }
        }
        for &(_, _, ty) in gold {
            if ty < n_types {
                n_gold[ty] += 1;
            }
        }
        for span in pred {
            if span.2 < n_types && gold.contains(span) {
                tp[span.2] += 1;
            }
        }
    }
    (0..n_types)
        .map(|t| PrF1::from_counts(tp[t], n_pred[t], n_gold[t]))
        .collect()
}

/// Expected calibration error (ECE) with equal-width confidence bins:
/// the weighted mean |accuracy − confidence| gap. The query strategies
/// consume model posteriors, so calibration quality is directly relevant
/// to strategy quality.
///
/// `confidences[i]` is the probability the model assigned to its
/// prediction for sample `i`; `correct[i]` whether that prediction was
/// right.
pub fn expected_calibration_error(confidences: &[f64], correct: &[bool], n_bins: usize) -> f64 {
    assert_eq!(
        confidences.len(),
        correct.len(),
        "confidence/correct misaligned"
    );
    assert!(n_bins > 0, "need at least one bin");
    if confidences.is_empty() {
        return 0.0;
    }
    let mut bin_conf = vec![0.0f64; n_bins];
    let mut bin_acc = vec![0.0f64; n_bins];
    let mut bin_n = vec![0usize; n_bins];
    for (&c, &ok) in confidences.iter().zip(correct) {
        let b = ((c * n_bins as f64) as usize).min(n_bins - 1);
        bin_conf[b] += c;
        bin_acc[b] += if ok { 1.0 } else { 0.0 };
        bin_n[b] += 1;
    }
    let total = confidences.len() as f64;
    (0..n_bins)
        .filter(|&b| bin_n[b] > 0)
        .map(|b| {
            let n = bin_n[b] as f64;
            (n / total) * ((bin_acc[b] / n) - (bin_conf[b] / n)).abs()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn accuracy_misaligned_panics() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn prf1_perfect() {
        let m = PrF1::from_counts(5, 5, 5);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn prf1_zero_denominators() {
        let m = PrF1::from_counts(0, 0, 0);
        assert_eq!(m.f1, 0.0);
        let m = PrF1::from_counts(0, 3, 0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn prf1_hand_worked() {
        // tp=2, pred=4, gold=5 → p=0.5, r=0.4, f1=4/9*2 = 0.444…
        let m = PrF1::from_counts(2, 4, 5);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.4).abs() < 1e-12);
        assert!((m.f1 - 2.0 * 0.5 * 0.4 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn span_f1_exact_match_only() {
        let gold = vec![vec![(0, 1, 0), (3, 3, 1)]];
        // One exact match, one boundary error.
        let pred = vec![vec![(0, 1, 0), (3, 4, 1)]];
        let m = span_f1(&pred, &gold);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn span_f1_type_mismatch_is_wrong() {
        let gold = vec![vec![(0, 1, 0)]];
        let pred = vec![vec![(0, 1, 1)]];
        assert_eq!(span_f1(&pred, &gold).f1, 0.0);
    }

    #[test]
    fn per_type_f1_separates_types() {
        // Type 0: perfect. Type 1: all missed.
        let gold = vec![vec![(0, 0, 0), (2, 3, 1)]];
        let pred = vec![vec![(0, 0, 0)]];
        let per = span_f1_per_type(&pred, &gold, 2);
        assert_eq!(per[0].f1, 1.0);
        assert_eq!(per[1].f1, 0.0);
        assert_eq!(per[1].recall, 0.0);
    }

    #[test]
    fn per_type_f1_ignores_out_of_range_types() {
        let gold = vec![vec![(0, 0, 7)]];
        let pred = vec![vec![(0, 0, 7)]];
        let per = span_f1_per_type(&pred, &gold, 2);
        assert!(per.iter().all(|m| m.f1 == 0.0));
    }

    #[test]
    fn ece_perfectly_calibrated() {
        // Confidence 0.8, accuracy 0.8 within the bin → ECE ≈ 0.
        let conf = vec![0.8; 10];
        let correct: Vec<bool> = (0..10).map(|i| i < 8).collect();
        assert!(expected_calibration_error(&conf, &correct, 10) < 1e-9);
    }

    #[test]
    fn ece_overconfident_model() {
        // Confidence 0.95, accuracy 0.5 → ECE ≈ 0.45.
        let conf = vec![0.95; 20];
        let correct: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let e = expected_calibration_error(&conf, &correct, 10);
        assert!((e - 0.45).abs() < 1e-9, "ece {e}");
    }

    #[test]
    fn ece_edge_cases() {
        assert_eq!(expected_calibration_error(&[], &[], 10), 0.0);
        // Confidence exactly 1.0 lands in the top bin, not out of range.
        let e = expected_calibration_error(&[1.0], &[true], 10);
        assert!(e.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn ece_zero_bins_panics() {
        let _ = expected_calibration_error(&[0.5], &[true], 0);
    }

    #[test]
    fn span_f1_micro_averages_across_sentences() {
        let gold = vec![vec![(0, 0, 0)], vec![(1, 2, 1)]];
        let pred = vec![vec![(0, 0, 0)], vec![]];
        let m = span_f1(&pred, &gold);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.5);
    }
}

//! Query strategies: base score functions and history-aware policies.
//!
//! A [`Strategy`] is a composition of
//!
//! * a [`BaseStrategy`] — the per-iteration informative score `φ_t(x)`
//!   (entropy, LC, margin, EGL, EGL-word, BALD, MNLP, QBC-KL, or random);
//! * a [`HistoryPolicy`] — how the historical sequence `H_t(x)` is folded
//!   into the selection score (the identity, HUS, WSHS, or FHS);
//! * optional [`combinators`] — density weighting (representativeness,
//!   Eq. 7) and MMR diversity (Eq. 8).
//!
//! The learned LHS selector is a separate component
//! ([`crate::lhs::LhsSelector`]) because it ranks a candidate set rather
//! than mapping one history to one score.

pub mod combinators;

use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::eval::{EvalCaps, SampleEval};
use histal_tseries::{exp_weighted_sum, uniform_sum, window_variance, RollingStats};

pub use combinators::{kcenter_select, DensityConfig, MmrConfig};

/// The base informative score function `φ_S(·)` of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseStrategy {
    /// I.i.d. baseline: a uniform random score per sample per round.
    Random,
    /// Prediction entropy (Eq. 4).
    Entropy,
    /// Least confidence `1 − P(ŷ|x)` (Eq. 3).
    LeastConfidence,
    /// Top-2 margin uncertainty.
    Margin,
    /// Expected gradient length (Eq. 5).
    Egl,
    /// EGL of word embedding, max over words (Eq. 12; Zhang et al. 2017).
    EglWord,
    /// Bayesian uncertainty via MC dropout (Gal et al. 2017).
    Bald,
    /// Maximum normalized log probability (Eq. 13; Shen et al. 2018).
    Mnlp,
    /// Query-by-committee mean KL divergence (Eq. 6).
    QbcKl,
}

impl BaseStrategy {
    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Random => "random",
            Self::Entropy => "entropy",
            Self::LeastConfidence => "LC",
            Self::Margin => "margin",
            Self::Egl => "EGL",
            Self::EglWord => "EGL-word",
            Self::Bald => "BALD",
            Self::Mnlp => "MNLP",
            Self::QbcKl => "QBC",
        }
    }

    /// The optional model outputs this strategy needs.
    pub fn caps(&self) -> EvalCaps {
        let mut caps = EvalCaps::default();
        match self {
            Self::Egl => caps.egl = true,
            Self::EglWord => caps.egl_word = true,
            Self::Bald => caps.bald = true,
            Self::Mnlp => caps.mnlp = true,
            Self::QbcKl => caps.qbc = true,
            Self::Margin => caps.margin = true,
            Self::Entropy => caps.entropy = true,
            _ => {}
        }
        caps
    }

    /// Compute `φ_t(x)` from a sample evaluation. `random_value` supplies
    /// the driver-generated uniform draw for [`BaseStrategy::Random`].
    pub fn base_score(&self, eval: &SampleEval, random_value: f64) -> Result<f64, Error> {
        let missing = |field: &'static str| Error::missing_capability(self.name_static(), field);
        match self {
            Self::Random => Ok(random_value),
            Self::Entropy => Ok(eval.entropy),
            Self::LeastConfidence => Ok(eval.least_confidence),
            Self::Margin => eval.margin.ok_or_else(|| {
                Error::new(crate::error::ErrorKind::NotEnoughClasses {
                    got: eval.probs.len(),
                })
            }),
            Self::Egl => eval.egl.ok_or_else(|| missing("egl")),
            Self::EglWord => eval.egl_word.ok_or_else(|| missing("egl_word")),
            Self::Bald => eval.bald.ok_or_else(|| missing("bald")),
            Self::Mnlp => eval.mnlp.ok_or_else(|| missing("mnlp")),
            Self::QbcKl => eval.qbc_kl.ok_or_else(|| missing("qbc_kl")),
        }
    }

    fn name_static(&self) -> &'static str {
        self.name()
    }
}

/// How the historical sequence is folded into a selection score.
///
/// All policies receive the full retained sequence, whose *last* element
/// is the current iteration's score.
///
/// ```
/// use histal_core::strategy::HistoryPolicy;
/// let history = [0.2, 0.6, 0.4];
/// assert_eq!(HistoryPolicy::CurrentOnly.final_score(&history), 0.4);
/// // WSHS: 0.25·0.2 + 0.5·0.6 + 1.0·0.4 (Eq. 9–10)
/// let wshs = HistoryPolicy::Wshs { l: 3 }.final_score(&history);
/// assert!((wshs - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HistoryPolicy {
    /// Classic behaviour: use only the current score (Eq. 2).
    CurrentOnly,
    /// HUS (Davy & Luz 2007): plain sum of the last `k` scores.
    Hus {
        /// History window length.
        k: usize,
    },
    /// WSHS (Eq. 9–10): exponentially weighted sum of the last `l` scores.
    Wshs {
        /// History window length; `l = 1` degrades to [`Self::CurrentOnly`].
        l: usize,
    },
    /// FHS (Eq. 11): `w_score · φ_t(x) + w_fluct · Var(last l scores)`.
    Fhs {
        /// History window length for the variance.
        l: usize,
        /// Weight of the current score (`w_s`).
        w_score: f64,
        /// Weight of the fluctuation term (`w_f`).
        w_fluct: f64,
    },
}

impl HistoryPolicy {
    /// Fold a historical sequence into the selection score. Returns 0 for
    /// an empty sequence (no evaluations yet).
    pub fn final_score(&self, seq: &[f64]) -> f64 {
        let current = seq.last().copied().unwrap_or(0.0);
        match *self {
            Self::CurrentOnly => current,
            Self::Hus { k } => uniform_sum(seq, k),
            Self::Wshs { l } => exp_weighted_sum(seq, l),
            Self::Fhs {
                l,
                w_score,
                w_fluct,
            } => w_score * current + w_fluct * window_variance(seq, l),
        }
    }

    /// [`Self::final_score`] on a borrowed, possibly-wrapped
    /// [`HistorySeq`](crate::history::HistorySeq) — the allocation-free
    /// fallback the scoring stage uses when rolling statistics are
    /// disabled (e.g. a degenerate zero window). Folds the two ring
    /// segments directly via the `histal_tseries::*_parts` kernels, in
    /// the same floating-point order as the contiguous fold, so the
    /// score is bit-identical to `final_score(&seq.to_vec())` without
    /// the `to_vec`.
    pub fn final_score_seq(&self, seq: &crate::history::HistorySeq<'_>) -> f64 {
        let (front, back) = seq.as_slices();
        let current = seq.last().unwrap_or(0.0);
        match *self {
            Self::CurrentOnly => current,
            Self::Hus { k } => histal_tseries::uniform_sum_parts(front, back, k),
            Self::Wshs { l } => histal_tseries::exp_weighted_sum_parts(front, back, l),
            Self::Fhs {
                l,
                w_score,
                w_fluct,
            } => {
                w_score * current + w_fluct * histal_tseries::window_variance_parts(front, back, l)
            }
        }
    }

    /// The history window this policy folds over (1 for
    /// [`Self::CurrentOnly`]). This is the window to hand to
    /// [`crate::history::HistoryStore::with_rolling`] so that
    /// [`Self::rolling_score`] sees the right statistics.
    pub fn window(&self) -> usize {
        match *self {
            Self::CurrentOnly => 1,
            Self::Hus { k } => k,
            Self::Wshs { l } => l,
            Self::Fhs { l, .. } => l,
        }
    }

    /// Fold via O(1) rolling statistics instead of rescanning the
    /// sequence. `stats` must track this policy's [`Self::window`]
    /// (possibly clamped by the store's retention cap, which leaves the
    /// result unchanged — a capped sequence is never longer than the cap).
    /// Agrees with [`Self::final_score`] on the retained sequence to
    /// rounding error; the slice fold stays the test oracle.
    pub fn rolling_score(&self, stats: &RollingStats) -> f64 {
        match *self {
            Self::CurrentOnly => stats.current(),
            Self::Hus { .. } => stats.uniform_sum(),
            Self::Wshs { .. } => stats.exp_weighted_sum(),
            Self::Fhs {
                w_score, w_fluct, ..
            } => w_score * stats.current() + w_fluct * stats.variance(),
        }
    }

    /// Display name for experiment reports.
    pub fn name(&self) -> String {
        match self {
            Self::CurrentOnly => String::new(),
            Self::Hus { .. } => "HUS".to_string(),
            Self::Wshs { .. } => "WSHS".to_string(),
            Self::Fhs { .. } => "FHS".to_string(),
        }
    }
}

/// A fully configured query strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Strategy {
    /// The informative base score.
    pub base: BaseStrategy,
    /// History folding policy.
    pub history: HistoryPolicy,
    /// Optional density (representativeness) weighting, Eq. 7.
    pub density: Option<DensityConfig>,
    /// Optional MMR diversity for batch selection, Eq. 8.
    pub mmr: Option<MmrConfig>,
    /// HKLD baseline (Davy & Luz 2007): select by the mean KL divergence
    /// of the posteriors produced by the models of the last `k`
    /// iterations. When set, this *replaces* the history policy for
    /// scoring (the base strategy still populates the scalar history for
    /// diagnostics).
    pub hkld: Option<usize>,
    /// Greedy k-center (core-set) batch selection instead of top-k;
    /// requires representations. Mutually exclusive with MMR (MMR wins
    /// if both are set).
    pub kcenter: bool,
}

impl Strategy {
    /// A bare strategy using only the current iteration's score.
    pub fn new(base: BaseStrategy) -> Self {
        Self {
            base,
            history: HistoryPolicy::CurrentOnly,
            density: None,
            mmr: None,
            hkld: None,
            kcenter: false,
        }
    }

    /// Use greedy k-center (core-set) batch selection.
    pub fn with_kcenter(mut self) -> Self {
        self.kcenter = true;
        self
    }

    /// Use the HKLD historical-committee baseline over the last `k`
    /// iterations' posteriors.
    pub fn with_hkld(mut self, k: usize) -> Self {
        assert!(k >= 2, "HKLD needs a committee of at least two iterations");
        self.hkld = Some(k);
        self
    }

    /// Attach a history policy.
    pub fn with_history(mut self, history: HistoryPolicy) -> Self {
        self.history = history;
        self
    }

    /// Attach density weighting.
    pub fn with_density(mut self, density: DensityConfig) -> Self {
        self.density = Some(density);
        self
    }

    /// Attach MMR batch diversity.
    pub fn with_mmr(mut self, mmr: MmrConfig) -> Self {
        self.mmr = Some(mmr);
        self
    }

    /// Report name, e.g. `"WSHS(entropy)"` or `"LC"`.
    pub fn name(&self) -> String {
        if let Some(k) = self.hkld {
            return format!("HKLD(k={k})");
        }
        let wrapper = self.history.name();
        if wrapper.is_empty() {
            self.base.name().to_string()
        } else {
            format!("{wrapper}({})", self.base.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::SampleEval;

    #[test]
    fn caps_requested_per_strategy() {
        assert!(BaseStrategy::Egl.caps().egl);
        assert!(BaseStrategy::Bald.caps().bald);
        assert!(!BaseStrategy::Entropy.caps().egl);
    }

    #[test]
    fn base_score_entropy_and_lc() {
        let e = SampleEval::from_probs(vec![0.9, 0.1]);
        let ent = BaseStrategy::Entropy.base_score(&e, 0.0).unwrap();
        assert!((ent - e.entropy).abs() < 1e-12);
        let lc = BaseStrategy::LeastConfidence.base_score(&e, 0.0).unwrap();
        assert!((lc - 0.1).abs() < 1e-9);
    }

    #[test]
    fn random_uses_supplied_value() {
        let e = SampleEval::default();
        assert_eq!(BaseStrategy::Random.base_score(&e, 0.42).unwrap(), 0.42);
    }

    #[test]
    fn missing_capability_is_error() {
        let e = SampleEval::from_probs(vec![0.5, 0.5]);
        let err = BaseStrategy::Egl.base_score(&e, 0.0).unwrap_err();
        assert!(matches!(
            err.kind,
            crate::error::ErrorKind::MissingCapability { field: "egl", .. }
        ));
    }

    #[test]
    fn margin_single_class_errors() {
        let e = SampleEval::from_probs(vec![1.0]);
        assert!(BaseStrategy::Margin.base_score(&e, 0.0).is_err());
    }

    #[test]
    fn current_only_is_last_element() {
        let p = HistoryPolicy::CurrentOnly;
        assert_eq!(p.final_score(&[0.1, 0.9]), 0.9);
        assert_eq!(p.final_score(&[]), 0.0);
    }

    #[test]
    fn wshs_l1_equals_current_only() {
        let seq = [0.3, 0.8, 0.6];
        let wshs = HistoryPolicy::Wshs { l: 1 };
        assert_eq!(
            wshs.final_score(&seq),
            HistoryPolicy::CurrentOnly.final_score(&seq)
        );
    }

    #[test]
    fn fhs_combines_score_and_variance() {
        let seq = [0.0, 1.0, 0.0, 1.0];
        let p = HistoryPolicy::Fhs {
            l: 4,
            w_score: 0.5,
            w_fluct: 0.5,
        };
        let expected = 0.5 * 1.0 + 0.5 * histal_tseries::window_variance(&seq, 4);
        assert!((p.final_score(&seq) - expected).abs() < 1e-12);
    }

    #[test]
    fn hus_is_plain_sum() {
        let p = HistoryPolicy::Hus { k: 2 };
        assert!((p.final_score(&[1.0, 2.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rolling_score_matches_slice_fold() {
        let seq = [0.3, 0.8, 0.1, 0.6, 0.9];
        let policies = [
            HistoryPolicy::CurrentOnly,
            HistoryPolicy::Hus { k: 3 },
            HistoryPolicy::Wshs { l: 3 },
            HistoryPolicy::Fhs {
                l: 3,
                w_score: 0.5,
                w_fluct: 0.5,
            },
        ];
        for p in policies {
            let mut stats = RollingStats::new(p.window());
            let mut seen: Vec<f64> = Vec::new();
            for &v in &seq {
                let evicted = (seen.len() >= p.window()).then(|| seen[seen.len() - p.window()]);
                stats.push(v, evicted);
                seen.push(v);
                let rolling = p.rolling_score(&stats);
                let scratch = p.final_score(&seen);
                assert!(
                    (rolling - scratch).abs() <= 1e-12,
                    "{p:?}: {rolling} vs {scratch}"
                );
            }
        }
    }

    #[test]
    fn policy_windows() {
        assert_eq!(HistoryPolicy::CurrentOnly.window(), 1);
        assert_eq!(HistoryPolicy::Hus { k: 4 }.window(), 4);
        assert_eq!(HistoryPolicy::Wshs { l: 3 }.window(), 3);
    }

    #[test]
    fn strategy_names_match_paper_style() {
        let s = Strategy::new(BaseStrategy::Entropy).with_history(HistoryPolicy::Wshs { l: 3 });
        assert_eq!(s.name(), "WSHS(entropy)");
        assert_eq!(Strategy::new(BaseStrategy::LeastConfidence).name(), "LC");
        let f = Strategy::new(BaseStrategy::Egl).with_history(HistoryPolicy::Fhs {
            l: 3,
            w_score: 0.5,
            w_fluct: 0.5,
        });
        assert_eq!(f.name(), "FHS(EGL)");
    }
}

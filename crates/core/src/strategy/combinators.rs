//! Representative and diversity combinators (§3.1.2–3.1.3).
//!
//! * **Density weighting** (Eq. 7) multiplies the informative score by the
//!   sample's mean similarity to the unlabeled pool, discounting outliers.
//! * **MMR diversity** (Eq. 8) greedily selects a batch balancing the
//!   informative score against the maximum similarity to already-selected
//!   samples.
//!
//! Both operate on sparse bag-of-features representations with cosine
//! similarity. Mean pool similarity is estimated on a fixed-size random
//! subsample of the pool (documented deviation: the paper averages over
//! all of `U`, which is `O(|U|²)` per round; a 256-sample Monte Carlo
//! estimate preserves the ordering at a fraction of the cost).

use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_text::SparseVec;

/// Configuration for density (representativeness) weighting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityConfig {
    /// Pool subsample size for the mean-similarity estimate; 0 means use
    /// the full pool (exact but quadratic).
    pub sample_size: usize,
    /// Density exponent β (Settles & Craven 2008 information density):
    /// `φ(x) · density(x)^β`. β = 1 is the paper's Eq. 7; β = 0 disables
    /// the weighting.
    pub beta: f64,
}

impl Default for DensityConfig {
    fn default() -> Self {
        Self {
            sample_size: 256,
            beta: 1.0,
        }
    }
}

/// Configuration for MMR batch diversity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmrConfig {
    /// Trade-off λ in `λ·φ(x) − (1−λ)·max sim` — 1.0 disables diversity.
    pub lambda: f64,
}

impl Default for MmrConfig {
    fn default() -> Self {
        Self { lambda: 0.7 }
    }
}

/// Multiply each unlabeled sample's score by its estimated mean cosine
/// similarity to the unlabeled pool (Eq. 7), in place.
///
/// `reps[id]` is the representation of pool sample `id`; `unlabeled` lists
/// the ids currently in `U`, parallel to `scores`.
pub fn apply_density(
    scores: &mut [f64],
    unlabeled: &[usize],
    reps: &[SparseVec],
    config: &DensityConfig,
    rng: &mut ChaCha8Rng,
) {
    assert_eq!(scores.len(), unlabeled.len(), "scores/unlabeled misaligned");
    if unlabeled.is_empty() {
        return;
    }
    let reference: Vec<usize> = if config.sample_size == 0 || unlabeled.len() <= config.sample_size
    {
        unlabeled.to_vec()
    } else {
        unlabeled
            .choose_multiple(rng, config.sample_size)
            .copied()
            .collect()
    };
    for (score, &id) in scores.iter_mut().zip(unlabeled) {
        let mut sim_sum = 0.0;
        for &other in &reference {
            if other != id {
                sim_sum += reps[id].cosine(&reps[other]);
            }
        }
        let denom = reference
            .len()
            .saturating_sub(usize::from(reference.contains(&id)));
        let density = if denom == 0 {
            0.0
        } else {
            sim_sum / denom as f64
        };
        *score *= density.max(0.0).powf(config.beta);
    }
}

/// Greedy k-center (core-set) batch selection (Sener & Savarese 2018):
/// the first pick is the top-scoring sample; every later pick maximizes
/// the minimum cosine *distance* to the batch selected so far, covering
/// the pool's geometry.
///
/// Returns up to `batch_size` positions into `unlabeled`, in selection
/// order.
pub fn kcenter_select(
    scores: &[f64],
    unlabeled: &[usize],
    reps: &[SparseVec],
    batch_size: usize,
) -> Vec<usize> {
    assert_eq!(scores.len(), unlabeled.len(), "scores/unlabeled misaligned");
    let n = unlabeled.len();
    let k = batch_size.min(n);
    if k == 0 {
        return Vec::new();
    }
    let first = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut selected = vec![first];
    let mut taken = vec![false; n];
    taken[first] = true;
    // min distance of each candidate to the selected set so far.
    let mut min_dist: Vec<f64> = (0..n)
        .map(|pos| 1.0 - reps[unlabeled[pos]].cosine(&reps[unlabeled[first]]))
        .collect();
    while selected.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for pos in 0..n {
            if taken[pos] {
                continue;
            }
            if best.map_or(true, |(_, d)| min_dist[pos] > d) {
                best = Some((pos, min_dist[pos]));
            }
        }
        let (pos, _) = match best {
            Some(b) => b,
            None => break,
        };
        taken[pos] = true;
        selected.push(pos);
        let new_rep = &reps[unlabeled[pos]];
        for other in 0..n {
            if !taken[other] {
                let d = 1.0 - new_rep.cosine(&reps[unlabeled[other]]);
                if d < min_dist[other] {
                    min_dist[other] = d;
                }
            }
        }
    }
    selected
}

/// Greedy MMR batch selection (Eq. 8): repeatedly pick
/// `argmax λ·φ(x) − (1−λ)·max_{s ∈ batch} sim(x, s)`.
///
/// Returns up to `batch_size` *positions into `unlabeled`* in selection
/// order. The similarity penalty is taken against the batch selected so
/// far (standard batch-mode MMR; the first pick is pure argmax).
pub fn mmr_select(
    scores: &[f64],
    unlabeled: &[usize],
    reps: &[SparseVec],
    batch_size: usize,
    config: &MmrConfig,
) -> Vec<usize> {
    assert_eq!(scores.len(), unlabeled.len(), "scores/unlabeled misaligned");
    let n = unlabeled.len();
    let k = batch_size.min(n);
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut taken = vec![false; n];
    // Max similarity of each candidate to the selected batch so far.
    let mut max_sim = vec![0.0f64; n];
    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for pos in 0..n {
            if taken[pos] {
                continue;
            }
            let value = config.lambda * scores[pos] - (1.0 - config.lambda) * max_sim[pos];
            if best.map_or(true, |(_, b)| value > b) {
                best = Some((pos, value));
            }
        }
        let (pos, _) = match best {
            Some(b) => b,
            None => break,
        };
        taken[pos] = true;
        selected.push(pos);
        // Update similarity penalties against the newly selected sample.
        let new_rep = &reps[unlabeled[pos]];
        for other in 0..n {
            if !taken[other] {
                let s = new_rep.cosine(&reps[unlabeled[other]]);
                if s > max_sim[other] {
                    max_sim[other] = s;
                }
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    fn rep(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn density_downweights_outliers() {
        // Samples 0..3 share a feature; sample 3 is orthogonal.
        let reps = vec![
            rep(&[(0, 1.0)]),
            rep(&[(0, 1.0), (1, 0.2)]),
            rep(&[(0, 1.0), (2, 0.2)]),
            rep(&[(9, 1.0)]),
        ];
        let unlabeled = [0, 1, 2, 3];
        let mut scores = vec![1.0; 4];
        apply_density(
            &mut scores,
            &unlabeled,
            &reps,
            &DensityConfig {
                sample_size: 0,
                beta: 1.0,
            },
            &mut rng(),
        );
        assert!(
            scores[0] > scores[3],
            "outlier must be down-weighted: {scores:?}"
        );
        assert_eq!(scores[3], 0.0);
    }

    #[test]
    fn density_empty_pool_is_noop() {
        let mut scores: Vec<f64> = vec![];
        apply_density(&mut scores, &[], &[], &DensityConfig::default(), &mut rng());
    }

    #[test]
    fn mmr_lambda_one_is_pure_topk() {
        let reps = vec![rep(&[(0, 1.0)]); 4];
        let unlabeled = [0, 1, 2, 3];
        let scores = [0.1, 0.9, 0.5, 0.7];
        let picks = mmr_select(&scores, &unlabeled, &reps, 2, &MmrConfig { lambda: 1.0 });
        assert_eq!(picks, vec![1, 3]);
    }

    #[test]
    fn mmr_penalizes_duplicates() {
        // Two near-identical high scorers and one distinct medium scorer:
        // with strong diversity, the second pick is the distinct sample.
        let reps = vec![rep(&[(0, 1.0)]), rep(&[(0, 1.0)]), rep(&[(5, 1.0)])];
        let unlabeled = [0, 1, 2];
        let scores = [0.9, 0.89, 0.5];
        let picks = mmr_select(&scores, &unlabeled, &reps, 2, &MmrConfig { lambda: 0.3 });
        assert_eq!(picks[0], 0);
        assert_eq!(picks[1], 2, "duplicate must lose to the diverse sample");
    }

    #[test]
    fn mmr_batch_larger_than_pool() {
        let reps = vec![rep(&[(0, 1.0)]); 2];
        let picks = mmr_select(&[0.5, 0.4], &[0, 1], &reps, 10, &MmrConfig::default());
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn mmr_empty_pool() {
        let picks = mmr_select(&[], &[], &[], 5, &MmrConfig::default());
        assert!(picks.is_empty());
    }

    #[test]
    fn density_beta_zero_is_noop() {
        let reps = vec![rep(&[(0, 1.0)]), rep(&[(9, 1.0)])];
        let unlabeled = [0, 1];
        let mut scores = vec![0.8, 0.3];
        apply_density(
            &mut scores,
            &unlabeled,
            &reps,
            &DensityConfig {
                sample_size: 0,
                beta: 0.0,
            },
            &mut rng(),
        );
        assert_eq!(scores, vec![0.8, 0.3]);
    }

    #[test]
    fn kcenter_starts_at_top_score_then_covers() {
        // Two identical high scorers and one distant point: k-center must
        // take the top scorer, then jump to the distant point.
        let reps = vec![rep(&[(0, 1.0)]), rep(&[(0, 1.0)]), rep(&[(7, 1.0)])];
        let picks = kcenter_select(&[0.9, 0.8, 0.1], &[0, 1, 2], &reps, 2);
        assert_eq!(picks, vec![0, 2]);
    }

    #[test]
    fn kcenter_handles_small_pools() {
        let reps = vec![rep(&[(0, 1.0)])];
        assert_eq!(kcenter_select(&[0.5], &[0], &reps, 5), vec![0]);
        assert!(kcenter_select(&[], &[], &[], 3,).is_empty());
    }
}

//! Representative and diversity combinators (§3.1.2–3.1.3).
//!
//! * **Density weighting** (Eq. 7) multiplies the informative score by the
//!   sample's mean similarity to the unlabeled pool, discounting outliers.
//! * **MMR diversity** (Eq. 8) greedily selects a batch balancing the
//!   informative score against the maximum similarity to already-selected
//!   samples.
//!
//! All three combinators consume a [`PoolGeometry`] — the pool's sparse
//! representations snapshotted once per run into contiguous storage with
//! cached norms — so each cosine is a single sparse dot and a division,
//! with no per-call norm recomputation. Mean pool similarity is estimated
//! on a fixed-size random subsample of the pool (documented deviation:
//! the paper averages over all of `U`, which is `O(|U|²)` per round; a
//! 256-sample Monte Carlo estimate preserves the ordering at a fraction
//! of the cost).
//!
//! The greedy k-center and MMR loops maintain their min-distance /
//! max-similarity arrays incrementally (one update sweep per pick, no
//! rescan of the selected set), and all per-round working memory lives in
//! a caller-owned [`SimScratch`] so repeated rounds allocate nothing.
//!
//! Every combinator takes an optional [`NeighborIndex`]. `None` (the
//! `ann=off` default) runs the exhaustive sweep — the code paths below
//! are byte-for-byte the pre-ANN loops, so results are bit-identical to
//! every earlier release. `Some(index)` restricts each similarity sweep
//! to the index's candidate neighbor set: with
//! [`histal_text::ExactNeighbors`] that set is the whole pool and the
//! results stay bit-identical (pinned by `tests/ann_props.rs`); with
//! [`histal_text::LshIndex`] non-neighbors are treated as
//! zero-similarity (density) or never-closer (k-center / MMR), the
//! documented approximation that makes million-sample pools tractable.

use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_obs::span;
use histal_obs::trace::Level;

use histal_text::{AnnScratch, Geometry, NeighborIndex};

use crate::driver::select_k;

/// Configuration for density (representativeness) weighting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityConfig {
    /// Pool subsample size for the mean-similarity estimate; 0 means use
    /// the full pool (exact but quadratic).
    pub sample_size: usize,
    /// Density exponent β (Settles & Craven 2008 information density):
    /// `φ(x) · density(x)^β`. β = 1 is the paper's Eq. 7; β = 0 disables
    /// the weighting.
    pub beta: f64,
}

impl Default for DensityConfig {
    fn default() -> Self {
        Self {
            sample_size: 256,
            beta: 1.0,
        }
    }
}

/// Configuration for MMR batch diversity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmrConfig {
    /// Trade-off λ in `λ·φ(x) − (1−λ)·max sim` — 1.0 disables diversity.
    pub lambda: f64,
}

impl Default for MmrConfig {
    fn default() -> Self {
        Self { lambda: 0.7 }
    }
}

/// Reusable per-round working memory for the similarity combinators.
///
/// Hold one per driver (or test) and pass it to every call; buffers are
/// resized on first use and reused thereafter, so steady-state rounds
/// perform no heap allocation.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Density reference subsample (pool ids, in draw order).
    reference: Vec<usize>,
    /// Membership mask over pool ids: `in_reference[id]` ⇔ `id` is in
    /// `reference` — replaces the former `O(R)` `contains` scan.
    in_reference: Vec<bool>,
    /// Per-candidate "already picked" mask for the greedy loops.
    taken: Vec<bool>,
    /// Per-candidate similarity state: density similarity sums, min
    /// distance (k-center) or max similarity (MMR) to the batch selected
    /// so far.
    sim: Vec<f64>,
    /// Dense scatter buffer for one-vs-many cosine sweeps
    /// ([`Geometry::scatter`]); sized to the pool's feature dimension
    /// on first use.
    dense: Vec<f64>,
    /// Candidate-neighbor id buffer for ANN-indexed sweeps.
    neigh: Vec<usize>,
    /// Pool-id → position-in-`unlabeled` map (`usize::MAX` = not in `U`);
    /// filled per call, un-marked afterwards in O(|U|).
    pos_of: Vec<usize>,
    /// Per-pick MMR objective values, fed to [`select_k`].
    vals: Vec<f64>,
    /// Query-time scratch for the neighbor index.
    ann: AnnScratch,
}

impl SimScratch {
    fn reset_masks(&mut self, n: usize, fill: f64) {
        self.taken.clear();
        self.taken.resize(n, false);
        self.sim.clear();
        self.sim.resize(n, fill);
    }

    /// Point `pos_of[id]` at `id`'s position in `unlabeled`; rows outside
    /// `U` keep the `usize::MAX` sentinel. Pair with [`Self::clear_pos_of`].
    fn fill_pos_of(&mut self, n_rows: usize, unlabeled: &[usize]) {
        if self.pos_of.len() < n_rows {
            self.pos_of.resize(n_rows, usize::MAX);
        }
        for (pos, &id) in unlabeled.iter().enumerate() {
            self.pos_of[id] = pos;
        }
    }

    /// Un-mark the entries set by [`Self::fill_pos_of`]: O(|U|), not O(n).
    fn clear_pos_of(&mut self, unlabeled: &[usize]) {
        for &id in unlabeled {
            self.pos_of[id] = usize::MAX;
        }
    }
}

/// Multiply each unlabeled sample's score by its estimated mean cosine
/// similarity to the unlabeled pool (Eq. 7), in place.
///
/// `geom` row `id` is the representation of pool sample `id`; `unlabeled`
/// lists the ids currently in `U`, parallel to `scores`. With an ANN
/// `index`, each reference row only accumulates similarity over its
/// candidate neighbors — non-neighbors count as zero similarity while the
/// denominator stays the full reference size, so approximate densities
/// are biased low for outliers (exactly the samples density weighting
/// discounts anyway).
pub fn apply_density<G: Geometry + ?Sized>(
    scores: &mut [f64],
    unlabeled: &[usize],
    geom: &G,
    index: Option<&dyn NeighborIndex>,
    config: &DensityConfig,
    rng: &mut ChaCha8Rng,
    scratch: &mut SimScratch,
) {
    assert_eq!(scores.len(), unlabeled.len(), "scores/unlabeled misaligned");
    if unlabeled.is_empty() {
        return;
    }
    let _span = span!(Level::Trace, "combinator.density", n = unlabeled.len());
    scratch.reference.clear();
    if config.sample_size == 0 || unlabeled.len() <= config.sample_size {
        scratch.reference.extend_from_slice(unlabeled);
    } else {
        scratch
            .reference
            .extend(unlabeled.choose_multiple(rng, config.sample_size).copied());
    }
    if scratch.in_reference.len() < geom.len() {
        scratch.in_reference.resize(geom.len(), false);
    }
    for &id in &scratch.reference {
        scratch.in_reference[id] = true;
    }
    // Reference-outer sweep: scatter each reference row once, then
    // gather-dot every candidate against it. Each candidate's similarity
    // sum accumulates in reference order — the identical addition
    // sequence the candidate-outer merge loop produced. (The ANN branch
    // also accumulates in reference order per candidate, so routing an
    // exhaustive index through it reproduces these bits.)
    scratch.sim.clear();
    scratch.sim.resize(unlabeled.len(), 0.0);
    if let Some(idx) = index {
        scratch.fill_pos_of(geom.len(), unlabeled);
        let SimScratch {
            reference,
            sim,
            dense,
            neigh,
            pos_of,
            ann,
            ..
        } = scratch;
        for &other in reference.iter() {
            geom.scatter(other, dense);
            idx.neighbors_into(other, ann, neigh);
            for &id in neigh.iter() {
                let pos = pos_of[id];
                if pos != usize::MAX && other != id {
                    sim[pos] += geom.cosine_scattered(dense, other, id);
                }
            }
            geom.unscatter(other, dense);
        }
    } else {
        for &other in &scratch.reference {
            geom.scatter(other, &mut scratch.dense);
            for (sum, &id) in scratch.sim.iter_mut().zip(unlabeled) {
                if other != id {
                    *sum += geom.cosine_scattered(&scratch.dense, other, id);
                }
            }
            geom.unscatter(other, &mut scratch.dense);
        }
    }
    for ((score, &id), &sim_sum) in scores.iter_mut().zip(unlabeled).zip(&scratch.sim) {
        let denom = scratch
            .reference
            .len()
            .saturating_sub(usize::from(scratch.in_reference[id]));
        let density = if denom == 0 {
            0.0
        } else {
            sim_sum / denom as f64
        };
        *score *= density.max(0.0).powf(config.beta);
    }
    // Un-mark rather than re-zero the whole mask: O(R), not O(N).
    for &id in &scratch.reference {
        scratch.in_reference[id] = false;
    }
    if index.is_some() {
        scratch.clear_pos_of(unlabeled);
    }
}

/// Greedy k-center (core-set) batch selection (Sener & Savarese 2018):
/// the first pick is the top-scoring sample; every later pick maximizes
/// the minimum cosine *distance* to the batch selected so far, covering
/// the pool's geometry.
///
/// Returns up to `batch_size` positions into `unlabeled`, in selection
/// order.
///
/// With an ANN `index`, min-distance updates only touch each pick's
/// candidate neighbors; non-neighbors keep their distance (initialized to
/// the orthogonal distance 1.0), i.e. they are treated as never closer
/// than orthogonal to the batch.
pub fn kcenter_select<G: Geometry + ?Sized>(
    scores: &[f64],
    unlabeled: &[usize],
    geom: &G,
    index: Option<&dyn NeighborIndex>,
    batch_size: usize,
    scratch: &mut SimScratch,
) -> Vec<usize> {
    assert_eq!(scores.len(), unlabeled.len(), "scores/unlabeled misaligned");
    let n = unlabeled.len();
    let k = batch_size.min(n);
    if k == 0 {
        return Vec::new();
    }
    let _span = span!(Level::Trace, "combinator.kcenter", n = n, k = k);
    let first = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut selected = vec![first];
    if let Some(idx) = index {
        scratch.reset_masks(n, 1.0);
        scratch.fill_pos_of(geom.len(), unlabeled);
        {
            let SimScratch {
                taken,
                sim: min_dist,
                dense,
                neigh,
                pos_of,
                ann,
                ..
            } = scratch;
            taken[first] = true;
            let first_id = unlabeled[first];
            geom.scatter(first_id, dense);
            idx.neighbors_into(first_id, ann, neigh);
            for &id in neigh.iter() {
                let pos = pos_of[id];
                if pos != usize::MAX {
                    min_dist[pos] = 1.0 - geom.cosine_scattered(dense, first_id, id);
                }
            }
            geom.unscatter(first_id, dense);
            while selected.len() < k {
                let mut best: Option<(usize, f64)> = None;
                for pos in 0..n {
                    if taken[pos] {
                        continue;
                    }
                    if best.map_or(true, |(_, d)| min_dist[pos] > d) {
                        best = Some((pos, min_dist[pos]));
                    }
                }
                let (pos, _) = match best {
                    Some(b) => b,
                    None => break,
                };
                taken[pos] = true;
                selected.push(pos);
                let new_id = unlabeled[pos];
                geom.scatter(new_id, dense);
                idx.neighbors_into(new_id, ann, neigh);
                for &id in neigh.iter() {
                    let p = pos_of[id];
                    if p != usize::MAX && !taken[p] {
                        let d = 1.0 - geom.cosine_scattered(dense, new_id, id);
                        if d < min_dist[p] {
                            min_dist[p] = d;
                        }
                    }
                }
                geom.unscatter(new_id, dense);
            }
        }
        scratch.clear_pos_of(unlabeled);
        return selected;
    }
    scratch.reset_masks(n, 0.0);
    let SimScratch {
        taken,
        sim: min_dist,
        dense,
        ..
    } = scratch;
    // Min distance of each candidate to the selected set so far,
    // maintained incrementally: each pick scatters its row once and
    // updates every candidate with a gather-dot sweep.
    taken[first] = true;
    geom.scatter(unlabeled[first], dense);
    for (pos, d) in min_dist.iter_mut().enumerate() {
        *d = 1.0 - geom.cosine_scattered(dense, unlabeled[first], unlabeled[pos]);
    }
    geom.unscatter(unlabeled[first], dense);
    while selected.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for pos in 0..n {
            if taken[pos] {
                continue;
            }
            if best.map_or(true, |(_, d)| min_dist[pos] > d) {
                best = Some((pos, min_dist[pos]));
            }
        }
        let (pos, _) = match best {
            Some(b) => b,
            None => break,
        };
        taken[pos] = true;
        selected.push(pos);
        let new_id = unlabeled[pos];
        geom.scatter(new_id, dense);
        for other in 0..n {
            if !taken[other] {
                let d = 1.0 - geom.cosine_scattered(dense, new_id, unlabeled[other]);
                if d < min_dist[other] {
                    min_dist[other] = d;
                }
            }
        }
        geom.unscatter(new_id, dense);
    }
    selected
}

/// Greedy MMR batch selection (Eq. 8): repeatedly pick
/// `argmax λ·φ(x) − (1−λ)·max_{s ∈ batch} sim(x, s)`.
///
/// Returns up to `batch_size` *positions into `unlabeled`* in selection
/// order. The similarity penalty is taken against the batch selected so
/// far (standard batch-mode MMR; the first pick is pure argmax).
/// With an ANN `index`, similarity penalties only propagate to each
/// pick's candidate neighbors — non-neighbors keep their current penalty
/// (initially zero), i.e. they are treated as dissimilar to the batch.
pub fn mmr_select<G: Geometry + ?Sized>(
    scores: &[f64],
    unlabeled: &[usize],
    geom: &G,
    index: Option<&dyn NeighborIndex>,
    batch_size: usize,
    config: &MmrConfig,
    scratch: &mut SimScratch,
) -> Vec<usize> {
    assert_eq!(scores.len(), unlabeled.len(), "scores/unlabeled misaligned");
    let n = unlabeled.len();
    let k = batch_size.min(n);
    let _span = span!(Level::Trace, "combinator.mmr", n = n, k = k);
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    scratch.reset_masks(n, 0.0);
    if index.is_some() {
        scratch.fill_pos_of(geom.len(), unlabeled);
    }
    {
        let SimScratch {
            taken,
            sim: max_sim,
            dense,
            neigh,
            pos_of,
            vals,
            ann,
            ..
        } = scratch;
        vals.clear();
        vals.resize(n, 0.0);
        // Max similarity of each candidate to the selected batch so far,
        // maintained incrementally.
        for _ in 0..k {
            // Materialize this round's MMR objective and take its argmax
            // with the bounded-heap `select_k` (k = 1): same strict-`>`
            // lower-index-wins winner the linear scan produced, in one
            // branch-free pass.
            for pos in 0..n {
                vals[pos] = if taken[pos] {
                    f64::NEG_INFINITY
                } else {
                    config.lambda * scores[pos] - (1.0 - config.lambda) * max_sim[pos]
                };
            }
            let pos = match select_k(vals, 1).first().copied() {
                // A taken position can only win when every live candidate
                // is also −∞; fall back to the first live one.
                Some(p) if taken[p] => match (0..n).find(|&q| !taken[q]) {
                    Some(q) => q,
                    None => break,
                },
                Some(p) => p,
                None => break,
            };
            taken[pos] = true;
            selected.push(pos);
            // Update similarity penalties against the newly selected
            // sample: scatter its row once, gather-dot the rest.
            let new_id = unlabeled[pos];
            geom.scatter(new_id, dense);
            if let Some(idx) = index {
                idx.neighbors_into(new_id, ann, neigh);
                for &id in neigh.iter() {
                    let p = pos_of[id];
                    if p != usize::MAX && !taken[p] {
                        let s = geom.cosine_scattered(dense, new_id, id);
                        if s > max_sim[p] {
                            max_sim[p] = s;
                        }
                    }
                }
            } else {
                for other in 0..n {
                    if !taken[other] {
                        let s = geom.cosine_scattered(dense, new_id, unlabeled[other]);
                        if s > max_sim[other] {
                            max_sim[other] = s;
                        }
                    }
                }
            }
            geom.unscatter(new_id, dense);
        }
    }
    if index.is_some() {
        scratch.clear_pos_of(unlabeled);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_text::{PoolGeometry, SparseVec};
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    fn geom(reps: &[SparseVec]) -> PoolGeometry {
        PoolGeometry::build(reps)
    }

    fn rep(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn density_downweights_outliers() {
        // Samples 0..3 share a feature; sample 3 is orthogonal.
        let reps = vec![
            rep(&[(0, 1.0)]),
            rep(&[(0, 1.0), (1, 0.2)]),
            rep(&[(0, 1.0), (2, 0.2)]),
            rep(&[(9, 1.0)]),
        ];
        let unlabeled = [0, 1, 2, 3];
        let mut scores = vec![1.0; 4];
        apply_density(
            &mut scores,
            &unlabeled,
            &geom(&reps),
            None,
            &DensityConfig {
                sample_size: 0,
                beta: 1.0,
            },
            &mut rng(),
            &mut SimScratch::default(),
        );
        assert!(
            scores[0] > scores[3],
            "outlier must be down-weighted: {scores:?}"
        );
        assert_eq!(scores[3], 0.0);
    }

    #[test]
    fn density_empty_pool_is_noop() {
        let mut scores: Vec<f64> = vec![];
        apply_density(
            &mut scores,
            &[],
            &geom(&[]),
            None,
            &DensityConfig::default(),
            &mut rng(),
            &mut SimScratch::default(),
        );
    }

    #[test]
    fn density_scratch_reuse_is_stateless() {
        // Reusing one scratch across calls must give the same result as a
        // fresh scratch (the membership mask is fully un-marked).
        let reps = vec![
            rep(&[(0, 1.0)]),
            rep(&[(0, 1.0), (1, 0.2)]),
            rep(&[(9, 1.0)]),
        ];
        let g = geom(&reps);
        let cfg = DensityConfig {
            sample_size: 2,
            beta: 1.0,
        };
        let mut shared = SimScratch::default();
        for _ in 0..3 {
            let mut reused = vec![1.0; 3];
            let mut fresh = vec![1.0; 3];
            apply_density(
                &mut reused,
                &[0, 1, 2],
                &g,
                None,
                &cfg,
                &mut rng(),
                &mut shared,
            );
            apply_density(
                &mut fresh,
                &[0, 1, 2],
                &g,
                None,
                &cfg,
                &mut rng(),
                &mut SimScratch::default(),
            );
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn mmr_lambda_one_is_pure_topk() {
        let reps = vec![rep(&[(0, 1.0)]); 4];
        let unlabeled = [0, 1, 2, 3];
        let scores = [0.1, 0.9, 0.5, 0.7];
        let picks = mmr_select(
            &scores,
            &unlabeled,
            &geom(&reps),
            None,
            2,
            &MmrConfig { lambda: 1.0 },
            &mut SimScratch::default(),
        );
        assert_eq!(picks, vec![1, 3]);
    }

    #[test]
    fn mmr_penalizes_duplicates() {
        // Two near-identical high scorers and one distinct medium scorer:
        // with strong diversity, the second pick is the distinct sample.
        let reps = vec![rep(&[(0, 1.0)]), rep(&[(0, 1.0)]), rep(&[(5, 1.0)])];
        let unlabeled = [0, 1, 2];
        let scores = [0.9, 0.89, 0.5];
        let picks = mmr_select(
            &scores,
            &unlabeled,
            &geom(&reps),
            None,
            2,
            &MmrConfig { lambda: 0.3 },
            &mut SimScratch::default(),
        );
        assert_eq!(picks[0], 0);
        assert_eq!(picks[1], 2, "duplicate must lose to the diverse sample");
    }

    #[test]
    fn mmr_batch_larger_than_pool() {
        let reps = vec![rep(&[(0, 1.0)]); 2];
        let picks = mmr_select(
            &[0.5, 0.4],
            &[0, 1],
            &geom(&reps),
            None,
            10,
            &MmrConfig::default(),
            &mut SimScratch::default(),
        );
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn mmr_empty_pool() {
        let picks = mmr_select(
            &[],
            &[],
            &geom(&[]),
            None,
            5,
            &MmrConfig::default(),
            &mut SimScratch::default(),
        );
        assert!(picks.is_empty());
    }

    #[test]
    fn density_beta_zero_is_noop() {
        let reps = vec![rep(&[(0, 1.0)]), rep(&[(9, 1.0)])];
        let unlabeled = [0, 1];
        let mut scores = vec![0.8, 0.3];
        apply_density(
            &mut scores,
            &unlabeled,
            &geom(&reps),
            None,
            &DensityConfig {
                sample_size: 0,
                beta: 0.0,
            },
            &mut rng(),
            &mut SimScratch::default(),
        );
        assert_eq!(scores, vec![0.8, 0.3]);
    }

    #[test]
    fn kcenter_starts_at_top_score_then_covers() {
        // Two identical high scorers and one distant point: k-center must
        // take the top scorer, then jump to the distant point.
        let reps = vec![rep(&[(0, 1.0)]), rep(&[(0, 1.0)]), rep(&[(7, 1.0)])];
        let picks = kcenter_select(
            &[0.9, 0.8, 0.1],
            &[0, 1, 2],
            &geom(&reps),
            None,
            2,
            &mut SimScratch::default(),
        );
        assert_eq!(picks, vec![0, 2]);
    }

    #[test]
    fn kcenter_handles_small_pools() {
        let reps = vec![rep(&[(0, 1.0)])];
        let mut scratch = SimScratch::default();
        assert_eq!(
            kcenter_select(&[0.5], &[0], &geom(&reps), None, 5, &mut scratch),
            vec![0]
        );
        assert!(kcenter_select(&[], &[], &geom(&[]), None, 3, &mut scratch).is_empty());
    }
}
